//! Property tests for the `rdi-policy` selection engine:
//!
//! 1. [`RankByScore::choose`] is **permutation-invariant**: shuffling
//!    the candidate slice never changes the winning key, the ranked key
//!    sequence, or the tie accounting — candidate identity, not arrival
//!    position, decides (first-seen index only separates *exact*
//!    duplicates, which are interchangeable);
//! 2. the `discovery.union_rank` decision — the ranked answer *and* the
//!    emitted `PolicyDecision` audit event — is bitwise identical
//!    across scoring thread counts 1/2/8 (`Threads::fixed`, so this
//!    file mutates no process state);
//! 3. [`PolicyParams::hash`] is the canonical fingerprint: insertion
//!    order never changes it, and two generated parameter sets hash
//!    equal iff their canonical entries are equal.

use proptest::prelude::*;
use rdi_par::Threads;
use responsible_data_integration::discovery::{TableSignature, UnionSearchIndex};
use responsible_data_integration::policy::{
    Candidate, PolicyId, PolicyParams, RankByScore, Score, SelectionPolicy,
};
use responsible_data_integration::table::{DataType, Field, Schema, Table, Value};

/// Small pools so generated candidates collide — ties are the
/// interesting case for ordering invariance.
const KEYS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "alpha"];
const SCORES: [f64; 4] = [0.0, 0.25, 0.25, 1.0];

fn candidate(key_idx: usize, score_idx: usize) -> Candidate {
    Candidate::new(
        KEYS[key_idx % KEYS.len()],
        Score::F64(SCORES[score_idx % SCORES.len()]),
    )
}

fn params(dir: usize, tie: usize) -> PolicyParams {
    let mut p = PolicyParams::new();
    match dir % 3 {
        0 => {}
        1 => p.set("dir", "max"),
        _ => p.set("dir", "min"),
    }
    match tie % 3 {
        0 => {}
        1 => p.set("tie", "key_asc"),
        _ => p.set("tie", "key_desc"),
    }
    p
}

/// Deterministic Fisher–Yates over an index vector, driven by a tiny
/// multiplicative generator — no RNG dependency, fully replayable.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        idx.swap(i, (state % (i as u64 + 1)) as usize);
    }
    idx
}

/// The observable outcome of a choice, keyed by candidate *content*.
fn outcome(cands: &[Candidate], p: &PolicyParams) -> (Option<String>, Vec<String>, usize, u64) {
    let decision = RankByScore::new(PolicyId::UNION_RANK).choose(cands, p);
    let ranked_keys = decision
        .ranking
        .iter()
        .map(|&i| cands[i].key.clone())
        .collect();
    (
        decision.winner_key(cands).map(str::to_string),
        ranked_keys,
        decision.ties,
        decision.params_hash,
    )
}

fn skewed_table(tag: u64) -> Table {
    let schema = Schema::new(vec![
        Field::new("name", DataType::Str),
        Field::new("x", DataType::Str),
    ]);
    let mut t = Table::new(schema);
    for i in 0..20 {
        t.push_row(vec![
            Value::str(format!("n{}", (i + tag) % 7)),
            Value::str(format!("x{}", (i * tag) % 11)),
        ])
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn choose_is_permutation_invariant(
        spec in proptest::collection::vec((0usize..5, 0usize..4), 1..12),
        seed in 0u64..1_000_000,
        dir in 0usize..3,
        tie in 0usize..3,
    ) {
        let cands: Vec<Candidate> =
            spec.iter().map(|&(k, s)| candidate(k, s)).collect();
        let p = params(dir, tie);
        let reference = outcome(&cands, &p);

        let shuffled: Vec<Candidate> = permutation(cands.len(), seed)
            .into_iter()
            .map(|i| cands[i].clone())
            .collect();
        prop_assert_eq!(
            outcome(&shuffled, &p),
            reference,
            "candidate order changed the decision"
        );
    }

    #[test]
    fn union_rank_decision_is_thread_count_invariant(
        tags in proptest::collection::vec(1u64..50, 2..8),
        query_tag in 1u64..50,
        dir in 0usize..3,
        tie in 0usize..3,
    ) {
        let mut idx = UnionSearchIndex::new();
        for (i, tag) in tags.iter().enumerate() {
            let sig = TableSignature::build(format!("t{i}"), &skewed_table(*tag), 16).unwrap();
            idx.insert(sig);
        }
        let query = TableSignature::build("q", &skewed_table(query_tag), 16).unwrap();
        let p = params(dir, tie);
        let reference = idx.top_k_explained(&query, 3, Threads::fixed(1), &p);
        for n in [2usize, 8] {
            let replay = idx.top_k_explained(&query, 3, Threads::fixed(n), &p);
            prop_assert_eq!(
                &replay, &reference,
                "ranking or rationale changed with {} scoring threads", n
            );
        }
    }

    #[test]
    fn params_hash_changes_iff_canonical_params_change(
        a in proptest::collection::vec((0usize..4, 0usize..4), 0..6),
        b in proptest::collection::vec((0usize..4, 0usize..4), 0..6),
        seed in 0u64..1_000_000,
    ) {
        let keys = ["dir", "tie", "weight", "mode"];
        let vals = ["max", "min", "key_asc", "7"];
        let build = |entries: &[(usize, usize)]| {
            let mut p = PolicyParams::new();
            for &(k, v) in entries {
                p.set(keys[k], vals[v]);
            }
            p
        };
        let pa = build(&a);

        // same entries inserted in any order → same canonical form →
        // same hash
        let order = permutation(a.len(), seed);
        let reordered: Vec<(usize, usize)> =
            order.into_iter().map(|i| a[i]).collect();
        // last write wins: reinsertion may differ, so compare via the
        // canonical entries, the contract under test
        let pr = build(&reordered);
        if pa.entries() == pr.entries() {
            prop_assert_eq!(pa.hash(), pr.hash(), "insertion order leaked into the hash");
        } else {
            prop_assert!(pa.hash() != pr.hash(), "distinct canonical params collided");
        }

        let pb = build(&b);
        if pa.entries() == pb.entries() {
            prop_assert_eq!(pa.hash(), pb.hash());
        } else {
            prop_assert!(
                pa.hash() != pb.hash(),
                "distinct canonical params collided: {:?} vs {:?}",
                pa.entries(), pb.entries()
            );
        }
    }
}
