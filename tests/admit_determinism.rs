//! Property tests for the multi-tenant admission contract
//! (`rdi-serve::admit`):
//!
//! 1. admission decisions — verdict per request, per-tenant token
//!    levels, aging credits, and breaker arcs — are a pure function of
//!    the tagged request stream: replays with execute-phase thread
//!    counts 1/2/8 are **bitwise identical**, batch report for batch
//!    report;
//! 2. the edge cases hold under random contention: a zero-quota tenant
//!    sheds every request as `QuotaExceeded` without its breaker ever
//!    learning about them, and a tenant whose quota dwarfs the queue is
//!    still bounded by the queue capacity every window;
//! 3. aging never exceeds its cap, and idle windows (randomly generated
//!    zero-demand windows) never reset banked credit — only being
//!    served does.
//!
//! Uses `SessionConfig::threads` (`Threads::fixed`) rather than the
//! `RDI_THREADS` env var, so this file mutates no process state.

use proptest::prelude::*;
use rdi_par::Threads;
use responsible_data_integration::serve::{
    AdmitConfig, LakeIndex, LakeIndexConfig, ServeError, ServeRequest, ServeSession, SessionConfig,
    TaggedRequest, TenantId, TenantPolicy,
};
use responsible_data_integration::table::{DataType, Field, Role, Schema, Table, Value};

const HONEST: [&str; 3] = ["h0", "h1", "h2"];
const AGING_CAP: u64 = 8;

fn lake() -> LakeIndex {
    let schema = Schema::new(vec![
        Field::new("group", DataType::Str).with_role(Role::Sensitive),
        Field::new("x", DataType::Float),
    ]);
    let mut t = Table::new(schema);
    for i in 0..30 {
        t.push_row(vec![
            Value::str(if i % 3 == 0 { "min" } else { "maj" }),
            Value::Float(i as f64),
        ])
        .unwrap();
    }
    let mut idx = LakeIndex::new(LakeIndexConfig::default());
    idx.register("pop", t, 1.0).unwrap();
    idx
}

fn probe(table: &str) -> ServeRequest {
    ServeRequest::CoverageProbe {
        table: table.to_string(),
        attributes: vec!["group".to_string()],
        threshold: 2,
    }
}

/// One window's tagged batch: honest tenants by generated demand,
/// round-robin interleaved, then the zero-quota tenant (poison ghost
/// requests that must never execute) and the over-quota flooder.
fn window_batch(capacity: usize, demand: &[usize]) -> Vec<TaggedRequest> {
    let mut batch = Vec::new();
    let widest = demand.iter().copied().max().unwrap_or(0);
    for pos in 0..widest {
        for (name, d) in HONEST.iter().zip(demand) {
            if pos < *d {
                batch.push(probe("pop").tagged(TenantId::new(*name)));
            }
        }
    }
    batch.push(probe("ghost").tagged(TenantId::new("zed")));
    for _ in 0..capacity + 2 {
        batch.push(probe("pop").tagged(TenantId::new("big")));
    }
    batch
}

/// Run every window and render one deterministic transcript: each
/// batch report plus every tenant's post-window admission state.
/// Equal transcripts ⇔ bitwise-identical admission decisions.
fn run(seed: u64, capacity: usize, windows: &[Vec<usize>], threads: Threads) -> String {
    let config = SessionConfig {
        seed,
        threads,
        ..SessionConfig::default()
    };
    let mut admit = AdmitConfig::from_session(&config);
    admit.queue_capacity = capacity;
    admit.breaker_threshold = 2;
    admit.breaker_cooldown_ticks = 2;
    let admit = admit.with_tenants(vec![
        (TenantId::new("zed"), TenantPolicy::limited(1, 0, 0)),
        (TenantId::new("big"), TenantPolicy::limited(1, 100, 100)),
    ]);
    let mut session = ServeSession::with_admission(lake(), config, admit);
    let every: Vec<TenantId> = HONEST
        .iter()
        .chain(&["zed", "big"])
        .map(|n| TenantId::new(*n))
        .collect();

    let mut log = String::new();
    for demand in windows {
        let batch = window_batch(capacity, demand);
        let report = session.submit_batch_tagged(&batch);

        // Edge case: the zero-quota tenant sheds everything by quota
        // and its breaker never hears about it — even though its
        // requests would deterministically fail if executed.
        let zed = TenantId::new("zed");
        for (req, resp) in batch.iter().zip(&report.responses) {
            if req.tenant == zed {
                assert!(matches!(resp, Err(ServeError::QuotaExceeded { .. })));
            }
        }
        assert_eq!(session.admitter().breaker_failures(&zed), 0);

        // Edge case: a quota far above the queue is bounded by the
        // queue — the whole batch never over-admits.
        assert!(report.admitted <= capacity, "queue capacity violated");

        for t in &every {
            let a = session.admitter();
            assert!(a.aging(t) <= AGING_CAP, "aging cap violated for {t}");
            log.push_str(&format!(
                "{t}: tokens={:?} aging={} breaker={:?} arrivals={}\n",
                a.tokens(t),
                a.aging(t),
                a.breaker_state(t),
                a.tenant_arrivals(t)
            ));
        }
        log.push_str(&format!("{report:?}\n"));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn admission_is_thread_count_invariant_under_contention(
        seed in 0u64..1_000_000,
        capacity in 1usize..6,
        // per window, per honest tenant demand; zeros make idle
        // windows, so aging credit must survive them identically
        windows in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 3),
            2..6,
        ),
    ) {
        let reference = run(seed, capacity, &windows, Threads::fixed(1));
        for n in [2usize, 8] {
            let replay = run(seed, capacity, &windows, Threads::fixed(n));
            prop_assert_eq!(
                &replay, &reference,
                "admission decisions changed with {} execute threads", n
            );
        }
    }
}
