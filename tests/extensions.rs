//! Integration tests for the §5 extension features working together:
//! marginal tailoring, dedup-aware collection, FairPrep grids,
//! interventional repair, lake navigation, and sample debiasing.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use responsible_data_integration::acquisition::{run_grid, ModelKind};
use responsible_data_integration::cleaning::{repair_conditional_independence, ImputeStrategy};
use responsible_data_integration::discovery::{Navigator, TableSignature};
use responsible_data_integration::fairness::{cramers_v, DebiasedView};
use responsible_data_integration::table::{
    DataType, Field, GroupKey, GroupSpec, Predicate, Role, Schema, Table, Value,
};
use responsible_data_integration::tailor::{
    run_marginal_tailoring, MarginalProblem, MarginalSource, RandomPolicy,
};

fn hiring_table(n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("gender", DataType::Str).with_role(Role::Sensitive),
        Field::new("dept", DataType::Str),
        Field::new("score", DataType::Float),
        Field::new("hired", DataType::Bool).with_role(Role::Target),
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let gender = if i % 3 == 0 { "F" } else { "M" };
        let dept = if (i / 3) % 2 == 0 { "eng" } else { "sales" };
        let score = (i % 100) as f64 / 10.0;
        // biased: men hired at +30% within every (dept, score band)
        let threshold = if dept == "eng" { 6.0 } else { 4.0 };
        let bump = if gender == "M" { 2.0 } else { -1.0 };
        let hired = score + bump > threshold;
        t.push_row(vec![
            Value::str(gender),
            Value::str(dept),
            Value::Float(score),
            Value::Bool(hired),
        ])
        .unwrap();
    }
    t
}

#[test]
fn marginal_tailoring_then_interventional_repair() {
    let t = hiring_table(6_000);
    // collect 300 per gender AND 300 per dept (marginal requirements)
    let problem = MarginalProblem::default()
        .require("gender", Value::str("F"), 300)
        .require("gender", Value::str("M"), 300)
        .require("dept", Value::str("eng"), 300)
        .require("dept", Value::str("sales"), 300);
    let mut sources = vec![MarginalSource::new("hr", t, 1.0, &problem).unwrap()];
    let mut policy = RandomPolicy::new(1);
    let mut rng = StdRng::seed_from_u64(77);
    let out =
        run_marginal_tailoring(&mut sources, &problem, &mut policy, &mut rng, 1_000_000).unwrap();
    assert!(out.satisfied);

    // the collected data still carries the hiring bias — repair it
    let collected = out.collected;
    let assoc = |t: &Table| {
        let g: Vec<String> = (0..t.num_rows())
            .map(|i| t.value(i, "gender").unwrap().to_string())
            .collect();
        let y: Vec<String> = (0..t.num_rows())
            .map(|i| t.value(i, "hired").unwrap().to_string())
            .collect();
        cramers_v(&g, &y)
    };
    let before = assoc(&collected);
    let rep = repair_conditional_independence(&collected, &["dept"], "hired", &mut rng).unwrap();
    let after = assoc(&rep.table);
    assert!(
        after < before,
        "repair must reduce association: {before} → {after}"
    );
    assert!(after < 0.12, "after={after}");
}

#[test]
fn fairprep_grid_over_hiring_data() {
    let mut t = hiring_table(4_000);
    // knock out some scores to give the interventions work
    for i in (0..t.num_rows()).step_by(7) {
        t.set_value(i, "score", Value::Null).unwrap();
    }
    let spec = GroupSpec::new(vec!["gender"]);
    let mut rng = StdRng::seed_from_u64(78);
    let results = run_grid(
        &t,
        "score",
        &["score"],
        "hired",
        &spec,
        &[
            ("drop".to_string(), ImputeStrategy::DropRows),
            ("mean".to_string(), ImputeStrategy::Mean),
        ],
        &[ModelKind::Logistic, ModelKind::NaiveBayes],
        &mut rng,
    )
    .unwrap();
    assert_eq!(results.len(), 4);
    for r in &results {
        assert!(
            r.eval.accuracy > 0.6,
            "{}/{} acc={}",
            r.intervention,
            r.model,
            r.eval.accuracy
        );
        // a score-only model is gender-blind, so its *predictions* show
        // little parity gap — but the biased labels make its errors
        // gender-dependent: the equalized-odds gap must be visible.
        assert!(r.eval.equalized_odds > 0.1, "eo={}", r.eval.equalized_odds);
    }
}

#[test]
fn navigation_guides_to_unionable_sources_then_debias_answers_population_queries() {
    // lake with two domains; navigate a query to its domain
    let mk = |prefix: &str, t: usize| {
        let vals: Vec<String> = (t * 3..t * 3 + 20)
            .map(|i| format!("{prefix}{i}"))
            .collect();
        let schema = Schema::new(vec![Field::new("name", DataType::Str)]);
        let mut tab = Table::new(schema);
        for v in &vals {
            tab.push_row(vec![Value::str(v.clone())]).unwrap();
        }
        TableSignature::build(format!("{prefix}_{t}"), &tab, 64).unwrap()
    };
    let mut sigs = Vec::new();
    for t in 0..3 {
        sigs.push(mk("person", t));
    }
    for t in 0..3 {
        sigs.push(mk("chem", t));
    }
    let nav = Navigator::build(sigs);
    let qvals: Vec<String> = (2..22).map(|i| format!("person{i}")).collect();
    let qschema = Schema::new(vec![Field::new("name", DataType::Str)]);
    let mut qtab = Table::new(qschema);
    for v in &qvals {
        qtab.push_row(vec![Value::str(v.clone())]).unwrap();
    }
    let q = TableSignature::build("q", &qtab, 64).unwrap();
    let (reached, _) = nav.navigate(&q);
    assert!(nav.signature(reached).name.starts_with("person"));

    // debias a biased sample of the hiring population
    let t = hiring_table(3_000);
    let skewed_idx: Vec<usize> = (0..t.num_rows())
        .filter(|&i| {
            // keep all men, every third woman (women are the i % 3 == 0
            // rows, so i % 9 == 0 keeps a third of them)
            t.value(i, "gender").unwrap() == Value::str("M") || i % 9 == 0
        })
        .collect();
    let sample = t.take(&skewed_idx);
    let spec = GroupSpec::new(vec!["gender"]);
    let population: BTreeMap<GroupKey, f64> = [("F", 1.0 / 3.0), ("M", 2.0 / 3.0)]
        .iter()
        .map(|(g, f)| (GroupKey(vec![Value::str(*g)]), *f))
        .collect();
    let view = DebiasedView::new(&sample, &spec, &population).unwrap();
    let debiased_f = view.fraction(&Predicate::eq("gender", Value::str("F")));
    assert!((debiased_f - 1.0 / 3.0).abs() < 1e-9);
    // debiased hire rate must be below the raw sample's (women hired less)
    let raw_rate =
        Predicate::eq("hired", Value::Bool(true)).count(&sample) as f64 / sample.num_rows() as f64;
    let fair_rate = view.fraction(&Predicate::eq("hired", Value::Bool(true)));
    assert!(fair_rate < raw_rate, "fair {fair_rate} raw {raw_rate}");
}
