//! Property tests for the sharded lake index under churn:
//!
//! replaying one seeded churn workload (registers, appends, deletes,
//! drops — `rdi_datagen::churn`) over a fresh [`LakeIndex`] with a
//! deliberately tiny cache budget must produce, for any `RDI_THREADS`:
//!
//! 1. **bitwise identical responses** for every interleaved query
//!    batch (scores compared via `to_bits`);
//! 2. **identical shard assignment** — `shard_of` is a pure function
//!    of the id bytes, so per-shard table counts match too; and
//! 3. **identical cache-eviction order** — the exact per-run deltas of
//!    `serve.cache.{hits,misses,evictions,evicted_bytes,invalidated}`
//!    and the final `(cached sketches, cached bytes)` agree, which
//!    they only can if every run evicted the same entries in the same
//!    order under the same byte budget.
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so the `RDI_THREADS` mutation cannot
//! leak into concurrently running tests and exact global-counter
//! deltas are race-free.

use proptest::prelude::*;
use rdi_par::THREADS_ENV;
use responsible_data_integration::datagen::churn::{churn_workload, ChurnConfig, ChurnEvent};
use responsible_data_integration::obs;
use responsible_data_integration::prelude::*;
use responsible_data_integration::serve::ServeRequest as Req;

/// Small sketches + a tiny byte budget so the workload *must* evict,
/// and a low debt threshold so the rebuild policy is exercised.
fn index_config() -> LakeIndexConfig {
    LakeIndexConfig {
        minhash_k: 32,
        cache_capacity_bytes: 4096,
        shard_count: 4,
        deletion_debt_threshold: 16,
    }
}

fn query_table(seed: u64) -> Table {
    let schema = Schema::new(vec![Field::new("key", DataType::Str)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..60 {
        t.push_row(vec![Value::str(format!("k{:05}", rng.gen_range(0..500)))])
            .unwrap();
    }
    t
}

/// Bit-exact encoding of one response (only union/join answers appear
/// in this stream; anything else would be a bug worth seeing verbatim).
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    match r {
        Ok(ServeResponse::UnionTopK(v)) | Ok(ServeResponse::JoinableTopK(v)) => v
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(","),
        other => format!("{other:?}"),
    }
}

/// Everything one replay observed; two replays are interchangeable iff
/// their traces are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Trace {
    responses: Vec<String>,
    shard_assignment: Vec<(String, usize)>,
    shard_tables: Vec<usize>,
    cached_sketches: usize,
    cache_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    evicted_bytes: u64,
    invalidated: u64,
    rows_applied: u64,
    incremental_updates: u64,
    rebuilds: u64,
}

fn counter_snapshot() -> [u64; 8] {
    [
        obs::counter("serve.cache.hits").get(),
        obs::counter("serve.cache.misses").get(),
        obs::counter("serve.cache.evictions").get(),
        obs::counter("serve.cache.evicted_bytes").get(),
        obs::counter("serve.cache.invalidated").get(),
        obs::counter("serve.delta.rows_applied").get(),
        obs::counter("sketch.incremental_updates").get(),
        obs::counter("sketch.rebuilds").get(),
    ]
}

fn run_trial(seed: u64) -> Trace {
    let workload = churn_workload(
        &ChurnConfig {
            num_tables: 6,
            events: 40,
            initial_rows: 80,
            ..ChurnConfig::default()
        },
        seed,
    );
    let before = counter_snapshot();

    let mut index = LakeIndex::new(index_config());
    for (id, t) in &workload.tables {
        index.register(id.clone(), t.clone(), 1.0).unwrap();
    }
    let mut session = ServeSession::new(
        index,
        SessionConfig {
            seed,
            ..SessionConfig::default()
        },
    );

    let mut responses = Vec::new();
    for (i, ev) in workload.events.iter().enumerate() {
        match ev {
            ChurnEvent::Register { id, table, cost } => {
                session
                    .index_mut()
                    .register(id.clone(), table.clone(), *cost)
                    .unwrap();
            }
            ChurnEvent::Delta { id, delta } => {
                session.index_mut().apply_delta(id, delta).unwrap();
            }
        }
        // Interleave query batches so sketches are (re)materialized,
        // cached, and evicted while the lake churns.
        if i % 4 == 0 {
            let q = query_table(seed.wrapping_add(i as u64));
            let report = session.submit_batch(&[
                Req::UnionTopK {
                    query: q.clone(),
                    k: 3,
                },
                Req::JoinableTopK {
                    query: q,
                    column: "key".into(),
                    k: 3,
                },
            ]);
            responses.extend(report.responses.iter().map(fingerprint));
        }
    }

    let after = counter_snapshot();
    let index = session.into_index();
    let shard_assignment = index
        .table_ids()
        .into_iter()
        .map(|id| (id.to_string(), index.shard_of(id)))
        .collect();
    Trace {
        responses,
        shard_assignment,
        shard_tables: index.shard_table_counts(),
        cached_sketches: index.cached_sketches(),
        cache_bytes: index.cache_bytes(),
        hits: after[0] - before[0],
        misses: after[1] - before[1],
        evictions: after[2] - before[2],
        evicted_bytes: after[3] - before[3],
        invalidated: after[4] - before[4],
        rows_applied: after[5] - before[5],
        incremental_updates: after[6] - before[6],
        rebuilds: after[7] - before[7],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn churn_replay_is_bitwise_deterministic_across_thread_counts(
        seed in 0u64..1_000_000,
    ) {
        std::env::set_var(THREADS_ENV, "1");
        let reference = run_trial(seed);

        // The workload must actually exercise what we claim is
        // deterministic — otherwise the equalities below are vacuous.
        prop_assert!(reference.evictions > 0, "budget never filled: {reference:?}");
        prop_assert!(reference.evicted_bytes > 0);
        prop_assert!(reference.rows_applied > 0);
        prop_assert!(reference.incremental_updates > 0);
        prop_assert!(
            reference.shard_tables.iter().filter(|&&c| c > 0).count() > 1,
            "all tables hashed into one shard: {:?}",
            reference.shard_tables
        );

        for threads in ["2", "8"] {
            std::env::set_var(THREADS_ENV, threads);
            let trace = run_trial(seed);
            prop_assert_eq!(
                &trace, &reference,
                "churn replay diverged under RDI_THREADS={}", threads
            );
        }
        std::env::remove_var(THREADS_ENV);
    }
}
