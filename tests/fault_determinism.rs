//! Property tests for the rdi-fault determinism contract:
//!
//! 1. a `FaultySource` at rate 0.0 is *bitwise* identical to the bare
//!    source it wraps — same rows, same draw count, same cost — for any
//!    run seed, so fault-injection plumbing can stay wired in
//!    production code at zero behavioral risk; and
//! 2. a faulty run is a pure function of its seeds: identical seeds
//!    give identical fault schedules, health accounting, provenance,
//!    and collected data regardless of `RDI_THREADS`.
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so the `RDI_THREADS` mutation cannot
//! leak into concurrently running tests.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_par::THREADS_ENV;
use responsible_data_integration::core::prelude::*;
use responsible_data_integration::fault::{FaultSpec, FaultySource};
use responsible_data_integration::profile::LabelConfig;
use responsible_data_integration::table::{
    DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value,
};
use responsible_data_integration::tailor::prelude::*;
use responsible_data_integration::tailor::run_tailoring;

fn group_table(seed: u64, rows: usize, frac_min: f64) -> Table {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        use rand::Rng;
        let g = if rng.gen::<f64>() < frac_min {
            "min"
        } else {
            "maj"
        };
        t.push_row(vec![Value::str(g)]).unwrap();
    }
    t
}

fn problem() -> DtProblem {
    DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 40),
            (GroupKey(vec![Value::str("min")]), 40),
        ],
    )
}

fn bare_sources(seed: u64, p: &DtProblem) -> Vec<TableSource> {
    [0.3, 0.1]
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let t = group_table(seed.wrapping_add(i as u64), 900, f);
            TableSource::new(format!("s{i}"), t, 1.0, p).unwrap()
        })
        .collect()
}

fn faulty_sources(
    seed: u64,
    fault_seed: u64,
    rate: f64,
    p: &DtProblem,
) -> Vec<FaultySource<TableSource>> {
    let spec = if rate == 0.0 {
        FaultSpec::none()
    } else {
        FaultSpec::uniform(rate)
    };
    bare_sources(seed, p)
        .into_iter()
        .enumerate()
        .map(|(i, s)| FaultySource::new(s, spec, fault_seed.wrapping_add(i as u64)))
        .collect()
}

/// One full pipeline run over a faulty federation, as a comparable
/// tuple of everything that must be a pure function of the seeds.
fn pipeline_fingerprint(
    seed: u64,
    fault_seed: u64,
    rate: f64,
) -> (
    Table,
    Vec<SourceHealth>,
    Vec<String>,
    bool,
    Vec<String>,
    String,
) {
    let p = problem();
    let mut sources = faulty_sources(seed, fault_seed, rate, &p);
    let mut policy = RandomPolicy::new(sources.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = Pipeline {
        problem: p,
        imputations: vec![],
        label_config: LabelConfig::default(),
        spec: RequirementSpec::default(),
        max_draws: 20_000,
    };
    let r = pipeline.run(&mut sources, &mut policy, &mut rng).unwrap();
    let lines = r.provenance_lines();
    let audit_md = r.audit.to_markdown();
    (r.data, r.health, r.quarantined, r.degraded, lines, audit_md)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn fault_runs_are_pure_functions_of_their_seeds(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
    ) {
        // Property 1: rate 0.0 is bitwise identical to no wrapper at all.
        let p = problem();
        let mut bare = bare_sources(seed, &p);
        let mut pol = RandomPolicy::new(bare.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let legacy = run_tailoring(&mut bare, &p, &mut pol, &mut rng, 20_000).unwrap();

        let mut quiet = faulty_sources(seed, fault_seed, 0.0, &p);
        let mut pol = RandomPolicy::new(quiet.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let res = run_resilient(
            &mut quiet, &p, &mut pol, &mut rng, 20_000, &ResilienceConfig::default(),
        ).unwrap();
        prop_assert_eq!(&res.tailor.collected, &legacy.collected);
        prop_assert_eq!(res.tailor.draws, legacy.draws);
        prop_assert_eq!(res.tailor.total_cost, legacy.total_cost);
        prop_assert_eq!(&res.tailor.per_source_draws, &legacy.per_source_draws);
        prop_assert!(res.health.iter().all(|h| h.failures_total() == 0));

        // Property 2: under faults, identical seeds give identical runs
        // whatever RDI_THREADS says — the fault schedule, retries, and
        // quarantines are functions of the seeds, never of the schedule.
        let mut prints = Vec::new();
        for t in ["1", "2", "8"] {
            std::env::set_var(THREADS_ENV, t);
            prints.push(pipeline_fingerprint(seed, fault_seed, 0.3));
        }
        std::env::remove_var(THREADS_ENV);
        let some_faults = prints[0].1.iter().any(|h| h.failures_total() > 0);
        prop_assert!(some_faults, "a 30% rate over thousands of draws must inject");
        for p in &prints[1..] {
            prop_assert_eq!(p, &prints[0]);
        }
        // and re-running under the same thread count reproduces it too
        std::env::set_var(THREADS_ENV, "2");
        let again = pipeline_fingerprint(seed, fault_seed, 0.3);
        std::env::remove_var(THREADS_ENV);
        prop_assert_eq!(&again, &prints[0]);
    }
}
