//! Property tests for the rdi-serve determinism contract:
//!
//! 1. a batch is **bitwise identical** (scores compared via `to_bits`)
//!    to submitting the same requests one at a time, for any
//!    `RDI_THREADS` — per-request RNG streams are keyed by arrival
//!    index, not by schedule;
//! 2. replaying the stream over the warm index (fresh session, same
//!    arrival indices) reproduces every response bit for bit while
//!    building **zero** new sketches; and
//! 3. degenerate requests (`k = 0`) come back as the same typed error
//!    in every schedule, spliced into their slot without disturbing
//!    their neighbours.
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so the `RDI_THREADS` mutation cannot
//! leak into concurrently running tests.

use proptest::prelude::*;
use rdi_par::THREADS_ENV;
use responsible_data_integration::obs;
use responsible_data_integration::prelude::*;
use responsible_data_integration::serve::ServeRequest as Req;

fn keyed_table(seed: u64, rows: usize) -> Table {
    let schema = Schema::new(vec![Field::new("key", DataType::Str)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        t.push_row(vec![Value::str(format!("k{}", rng.gen_range(0..200)))])
            .unwrap();
    }
    t
}

fn grouped_table(seed: u64, rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("group", DataType::Str).with_role(Role::Sensitive),
        Field::new("x", DataType::Float),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        let g = if rng.gen::<f64>() < 0.3 { "min" } else { "maj" };
        t.push_row(vec![Value::str(g), Value::Float(rng.gen::<f64>())])
            .unwrap();
    }
    t
}

fn scenario_index(seed: u64) -> LakeIndex {
    let mut idx = LakeIndex::default();
    for i in 0..4u64 {
        idx.register(
            format!("cand_{i}"),
            keyed_table(seed.wrapping_add(i), 120),
            1.0,
        )
        .unwrap();
    }
    idx.register("pop", grouped_table(seed.wrapping_add(99), 400), 1.5)
        .unwrap();
    idx
}

fn batch(seed: u64) -> Vec<Req> {
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["group"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 20),
            (GroupKey(vec![Value::str("min")]), 20),
        ],
    );
    vec![
        Req::UnionTopK {
            query: keyed_table(seed.wrapping_add(7), 80),
            k: 3,
        },
        Req::JoinableTopK {
            query: keyed_table(seed.wrapping_add(8), 80),
            column: "key".into(),
            k: 3,
        },
        // degenerate on purpose: must come back as the same typed error
        // in every schedule without disturbing its neighbours
        Req::UnionTopK {
            query: keyed_table(seed.wrapping_add(7), 80),
            k: 0,
        },
        Req::CoverageProbe {
            table: "pop".into(),
            attributes: vec!["group".into()],
            threshold: 50,
        },
        Req::TailorRun {
            problem,
            sources: vec!["pop".into()],
            max_draws: 10_000,
        },
    ]
}

/// Bit-exact encoding of one response: float scores go through
/// `to_bits`, so two fingerprints compare equal iff the responses are
/// bitwise identical.
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    fn bits(pairs: &[(String, f64)]) -> String {
        pairs
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(",")
    }
    match r {
        Ok(ServeResponse::UnionTopK(v)) => format!("U[{}]", bits(v)),
        Ok(ServeResponse::JoinableTopK(v)) => format!("J[{}]", bits(v)),
        Ok(ServeResponse::Coverage(c)) => format!(
            "C[{} mups={:?} frac={:016x}]",
            c.table,
            c.mups,
            c.uncovered_fraction.to_bits()
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "T[rows={} cost={:016x} degraded={} quarantined={:?} audit={}]",
            t.rows,
            t.total_cost.to_bits(),
            t.degraded,
            t.quarantined,
            t.audit_passed
        ),
        Err(e) => format!("E[{e:?}]"),
    }
}

fn config(seed: u64) -> SessionConfig {
    SessionConfig {
        seed,
        ..SessionConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn batched_serving_is_bitwise_deterministic(
        seed in 0u64..1_000_000,
        session_seed in 0u64..1_000,
    ) {
        let reqs = batch(seed);

        // Reference: strictly serial, one request per batch.
        std::env::set_var(THREADS_ENV, "1");
        let mut one = ServeSession::new(scenario_index(seed), config(session_seed));
        let mut reference = Vec::new();
        for r in &reqs {
            let mut rep = one.submit_batch(std::slice::from_ref(r));
            reference.push(fingerprint(&rep.responses.remove(0)));
        }

        for threads in ["1", "2", "8"] {
            std::env::set_var(THREADS_ENV, threads);

            // Cold: whole batch at once over a fresh index.
            let mut session = ServeSession::new(scenario_index(seed), config(session_seed));
            let cold = session.submit_batch(&reqs);
            let cold_fp: Vec<String> = cold.responses.iter().map(fingerprint).collect();
            prop_assert_eq!(
                &cold_fp, &reference,
                "batched != one-at-a-time under RDI_THREADS={}", threads
            );

            // Warm: replay the stream over the warm index. A fresh
            // session restarts the arrival counter, so even the
            // randomized tailor run re-executes on the same RNG stream.
            let built = obs::counter("discovery.sketches_built").get();
            let mut warm_session = ServeSession::new(session.into_index(), config(session_seed));
            let warm = warm_session.submit_batch(&reqs);
            prop_assert_eq!(
                obs::counter("discovery.sketches_built").get(),
                built,
                "warm replay must build zero sketches"
            );
            let warm_fp: Vec<String> = warm.responses.iter().map(fingerprint).collect();
            prop_assert_eq!(
                &warm_fp, &reference,
                "cache-warm != cache-cold under RDI_THREADS={}", threads
            );
        }
        std::env::remove_var(THREADS_ENV);
    }
}
