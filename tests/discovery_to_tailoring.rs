//! Integration: dataset discovery feeding distribution tailoring and
//! join sampling — the "DT on data lakes" pipeline sketched in §5.

use rand::rngs::StdRng;
use rand::SeedableRng;
use responsible_data_integration::discovery::{
    align_table, match_schemas, table_unionability, MinHash, OverlapIndex, TableSignature,
};
use responsible_data_integration::joinsample::{chaudhuri_sample, JoinIndex};
use responsible_data_integration::table::{
    hash_join, DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value,
};
use responsible_data_integration::tailor::prelude::*;

fn hospital_table(name_prefix: &str, races: &[&str], n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("patient_id", DataType::Str),
        Field::new("race", DataType::Str).with_role(Role::Sensitive),
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        t.push_row(vec![
            Value::str(format!("{name_prefix}{i}")),
            Value::str(races[i % races.len()]),
        ])
        .unwrap();
    }
    t
}

#[test]
fn union_search_finds_integrable_sources_then_tailoring_balances() {
    // a small lake: two hospital tables share the schema/domains, one
    // unrelated table does not
    let h1 = hospital_table("a", &["white", "white", "white", "black"], 2_000);
    let h2 = hospital_table("b", &["black", "black", "hispanic", "white"], 2_000);
    let unrelated = {
        let schema = Schema::new(vec![
            Field::new("gene", DataType::Str),
            Field::new("chrom", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for i in 0..500 {
            t.push_row(vec![Value::str(format!("g{i}")), Value::str("17")])
                .unwrap();
        }
        t
    };

    // discovery: which lake tables are unionable with h1?
    let q = TableSignature::build("h1", &h1, 64).unwrap();
    let s2 = TableSignature::build("h2", &h2, 64).unwrap();
    let s3 = TableSignature::build("unrelated", &unrelated, 64).unwrap();
    let u2 = table_unionability(&q, &s2);
    let u3 = table_unionability(&q, &s3);
    assert!(u2 > 0.25, "same-domain hospital should be unionable: {u2}");
    assert!(u3 < 0.05, "gene table should not be unionable: {u3}");

    // tailoring over the discovered sources
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["race"]),
        vec![
            (GroupKey(vec![Value::str("white")]), 100),
            (GroupKey(vec![Value::str("black")]), 100),
            (GroupKey(vec![Value::str("hispanic")]), 100),
        ],
    );
    let mut sources = vec![
        TableSource::new("h1", h1, 1.0, &problem).unwrap(),
        TableSource::new("h2", h2, 1.0, &problem).unwrap(),
    ];
    let mut policy = RatioColl::from_sources(&sources);
    let mut rng = StdRng::seed_from_u64(200);
    let out = run_tailoring(&mut sources, &problem, &mut policy, &mut rng, 1_000_000).unwrap();
    assert!(out.satisfied);
    for (g, &c) in problem.groups.iter().zip(&out.per_group) {
        assert!(c >= 100, "group {g} has {c}");
    }
}

#[test]
fn joinability_search_then_uniform_join_sample() {
    // query: patients; lake candidates: visit tables with varying key overlap
    let patients = hospital_table("p", &["white", "black"], 1_000);
    let vschema = Schema::new(vec![
        Field::new("patient_id", DataType::Str),
        Field::new("cost", DataType::Float),
    ]);
    let mut visits_good = Table::new(vschema.clone());
    for i in 0..800 {
        for v in 0..(i % 3) + 1 {
            visits_good
                .push_row(vec![
                    Value::str(format!("p{i}")),
                    Value::Float((v * 10) as f64),
                ])
                .unwrap();
        }
    }
    let mut visits_bad = Table::new(vschema);
    for i in 0..800 {
        visits_bad
            .push_row(vec![Value::str(format!("z{i}")), Value::Float(1.0)])
            .unwrap();
    }

    // exact overlap ranks the joinable candidate first
    let mut idx = OverlapIndex::new();
    idx.insert("good", &visits_good, "patient_id").unwrap();
    idx.insert("bad", &visits_bad, "patient_id").unwrap();
    let top = idx.top_k_containment(&patients, "patient_id", 2).unwrap();
    assert_eq!(idx.name(top[0].0), "good");
    assert!(top[0].1 > 0.7);

    // minhash agrees
    let mq = MinHash::from_column(&patients, "patient_id", 128).unwrap();
    let mg = MinHash::from_column(&visits_good, "patient_id", 128).unwrap();
    let mb = MinHash::from_column(&visits_bad, "patient_id", 128).unwrap();
    assert!(mq.jaccard(&mg) > mq.jaccard(&mb));

    // then sample the join uniformly and validate sample tuples
    let jidx = JoinIndex::build(&visits_good, "patient_id").unwrap();
    let mut rng = StdRng::seed_from_u64(201);
    let samples = chaudhuri_sample(&patients, "patient_id", &jidx, 500, &mut rng).unwrap();
    assert_eq!(samples.len(), 500);
    let truth = hash_join(&patients, &visits_good, "patient_id", "patient_id").unwrap();
    assert!(truth.num_rows() > 0);
    for s in samples.iter().take(50) {
        assert_eq!(
            patients.value(s.left, "patient_id").unwrap(),
            visits_good.value(s.right, "patient_id").unwrap()
        );
    }
}

#[test]
fn heterogeneous_sources_are_matched_aligned_and_tailored() {
    // Two hospitals exporting the same information under different names.
    let schema_a = Schema::new(vec![
        Field::new("race", DataType::Str).with_role(Role::Sensitive),
        Field::new("score", DataType::Float),
    ]);
    let mut a = Table::new(schema_a);
    for i in 0..2_000 {
        let r = if i % 10 == 0 { "black" } else { "white" };
        a.push_row(vec![Value::str(r), Value::Float(i as f64)])
            .unwrap();
    }
    let schema_b = Schema::new(vec![
        Field::new("risk_score", DataType::Float),
        Field::new("patient_race", DataType::Str),
    ]);
    let mut b = Table::new(schema_b);
    for i in 0..2_000 {
        let r = if i % 10 == 0 { "white" } else { "black" };
        b.push_row(vec![Value::Float(i as f64), Value::str(r)])
            .unwrap();
    }

    // match + align b onto a's schema
    let matching = match_schemas(&a, &b, 0.5, 64, 0.1).unwrap();
    assert_eq!(matching.len(), 2);
    let b_aligned = align_table(&b, a.schema(), &matching).unwrap();
    assert_eq!(b_aligned.schema(), a.schema());
    // aligned source carries the sensitive role annotation over
    assert_eq!(b_aligned.schema().sensitive(), vec!["race"]);

    // now both sources feed one tailoring run
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["race"]),
        vec![
            (GroupKey(vec![Value::str("white")]), 400),
            (GroupKey(vec![Value::str("black")]), 400),
        ],
    );
    let mut sources = vec![
        TableSource::new("a", a, 1.0, &problem).unwrap(),
        TableSource::new("b", b_aligned, 1.0, &problem).unwrap(),
    ];
    let mut policy = RatioColl::from_sources(&sources);
    let mut rng = StdRng::seed_from_u64(202);
    let out = run_tailoring(&mut sources, &problem, &mut policy, &mut rng, 1_000_000).unwrap();
    assert!(out.satisfied);
    // RatioColl should pull the rare group from its rich source: source a
    // is white-rich, source b is black-rich, so both get used
    assert!(out.per_source_draws[0] > 0 && out.per_source_draws[1] > 0);
}
