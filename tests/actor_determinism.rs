//! Property tests for the actor-hosted serving determinism contract
//! (`rdi-actor` × `rdi-serve`):
//!
//! 1. hosting N concurrent sessions over one shared sharded
//!    [`LakeActorGroup`] is **bitwise replayable**: for a fixed
//!    scheduler seed, every response, the rendered event log, and the
//!    `actor.*` / `serve.cache.*` counter deltas are identical for any
//!    `RDI_THREADS` — cohort delivery parallelism is invisible;
//! 2. the scheduler seed only permutes message interleavings: a
//!    different seed over the same per-session request streams yields
//!    **bitwise identical responses** (cache warmth and log order may
//!    legitimately differ — races change who warms a shared sketch
//!    first, never what a sketch says).
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so the `RDI_THREADS` mutation cannot
//! leak into concurrently running tests.

use proptest::prelude::*;
use rdi_par::THREADS_ENV;
use responsible_data_integration::actor::{Runtime, RuntimeConfig};
use responsible_data_integration::datagen::sessions::{
    session_workload, SessionOp, SessionWorkload, SessionWorkloadConfig,
};
use responsible_data_integration::obs;
use responsible_data_integration::serve::{
    LakeActorGroup, LakeIndex, LakeIndexConfig, ServeError, ServeRequest, ServeResponse,
    SessionActor, SessionConfig, SessionMsg,
};

fn workload(seed: u64) -> SessionWorkload {
    let config = SessionWorkloadConfig {
        num_tables: 4,
        rows_per_table: 40,
        key_pool: 120,
        num_sessions: 4,
        batches_per_session: 2,
        requests_per_batch_max: 3,
        ..SessionWorkloadConfig::default()
    };
    session_workload(&config, seed)
}

fn fresh_index(w: &SessionWorkload) -> LakeIndex {
    let mut index = LakeIndex::new(LakeIndexConfig::default());
    for (i, (id, t)) in w.tables.iter().enumerate() {
        index
            .register(id.clone(), t.clone(), 1.0 + i as f64 * 0.25)
            .unwrap();
    }
    index
}

fn to_request(op: &SessionOp) -> ServeRequest {
    match op {
        SessionOp::Union { query, k } => ServeRequest::UnionTopK {
            query: query.clone(),
            k: *k,
        },
        SessionOp::Joinable { query, column, k } => ServeRequest::JoinableTopK {
            query: query.clone(),
            column: column.clone(),
            k: *k,
        },
        SessionOp::Coverage {
            table,
            attributes,
            threshold,
        } => ServeRequest::CoverageProbe {
            table: table.clone(),
            attributes: attributes.clone(),
            threshold: *threshold,
        },
        SessionOp::Tailor {
            problem,
            sources,
            max_draws,
        } => ServeRequest::TailorRun {
            problem: problem.clone(),
            sources: sources.clone(),
            max_draws: *max_draws,
        },
    }
}

/// Bit-exact encoding of one response: float scores go through
/// `to_bits`, so equal strings ⇔ bitwise-identical responses.
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    fn bits(pairs: &[(String, f64)]) -> String {
        pairs
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(",")
    }
    match r {
        Ok(ServeResponse::UnionTopK(v)) => format!("U[{}]", bits(v)),
        Ok(ServeResponse::JoinableTopK(v)) => format!("J[{}]", bits(v)),
        Ok(ServeResponse::Coverage(c)) => format!(
            "C[{} mups={:?} frac={:016x}]",
            c.table,
            c.mups,
            c.uncovered_fraction.to_bits()
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "T[rows={} cost={:016x} degraded={} quarantined={:?} audit={}]",
            t.rows,
            t.total_cost.to_bits(),
            t.degraded,
            t.quarantined,
            t.audit_passed
        ),
        Err(e) => format!("E[{e:?}]"),
    }
}

const DELTA_COUNTERS: [&str; 4] = [
    "actor.messages_delivered",
    "actor.scheduler_steps",
    "serve.cache.hits",
    "serve.cache.misses",
];

/// Host the workload, run every batch interleaved round-robin, and
/// return (per-session response fingerprints, rendered event log,
/// `actor.*`/`serve.cache.*` counter deltas).
fn run_hosted(w: &SessionWorkload, scheduler_seed: u64) -> (Vec<Vec<String>>, String, [u64; 4]) {
    let before: Vec<u64> = DELTA_COUNTERS
        .iter()
        .map(|n| obs::counter(n).get())
        .collect();
    let mut rt = Runtime::new(RuntimeConfig {
        seed: scheduler_seed,
        ..RuntimeConfig::default()
    });
    let group = LakeActorGroup::host(&mut rt, fresh_index(w));
    let addrs: Vec<_> = w
        .sessions
        .iter()
        .enumerate()
        .map(|(s, script)| {
            let config = SessionConfig {
                seed: 100 + s as u64,
                ..SessionConfig::default()
            };
            group.spawn_session(&mut rt, &script.name, config)
        })
        .collect();
    let rounds = w
        .sessions
        .iter()
        .map(|s| s.batches.len())
        .max()
        .unwrap_or(0);
    for round in 0..rounds {
        for (s, script) in w.sessions.iter().enumerate() {
            if let Some(batch) = script.batches.get(round) {
                addrs[s]
                    .send(SessionMsg::Submit(batch.iter().map(to_request).collect()))
                    .unwrap();
            }
        }
    }
    rt.run_until_idle();
    assert_eq!(rt.delivery_errors(), 0);

    let fps = addrs
        .iter()
        .map(|addr| {
            let actor = rt.actor::<SessionActor>(addr.id()).unwrap();
            assert_eq!(actor.completed().len(), rounds);
            actor
                .completed()
                .iter()
                .flat_map(|r| r.responses.iter().map(fingerprint))
                .collect()
        })
        .collect();
    let mut deltas = [0u64; 4];
    for (i, name) in DELTA_COUNTERS.iter().enumerate() {
        deltas[i] = obs::counter(name).get() - before[i];
    }
    (fps, rt.event_log().render(), deltas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn actor_hosting_is_bitwise_deterministic(
        workload_seed in 0u64..1_000_000,
        scheduler_seed in 0u64..1_000,
    ) {
        let w = workload(workload_seed);

        std::env::set_var(THREADS_ENV, "1");
        let (reference, ref_log, ref_deltas) = run_hosted(&w, scheduler_seed);

        for threads in ["1", "2", "8"] {
            std::env::set_var(THREADS_ENV, threads);
            let (fps, log, deltas) = run_hosted(&w, scheduler_seed);
            prop_assert_eq!(
                &fps, &reference,
                "responses changed under RDI_THREADS={}", threads
            );
            prop_assert_eq!(
                &log, &ref_log,
                "event log changed under RDI_THREADS={}", threads
            );
            prop_assert_eq!(
                deltas, ref_deltas,
                "counter deltas changed under RDI_THREADS={}", threads
            );
        }

        // A different scheduler seed reorders the interleaving but
        // must never change any session's responses.
        std::env::set_var(THREADS_ENV, "1");
        let (reseeded, _, _) = run_hosted(&w, scheduler_seed ^ 0x9e37_79b9);
        prop_assert_eq!(&reseeded, &reference, "scheduler seed leaked into responses");

        std::env::remove_var(THREADS_ENV);
    }
}
