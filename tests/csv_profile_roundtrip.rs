//! Integration: CSV ingestion → role annotation → profiling → coverage →
//! remediation, mimicking a user loading external data.

use responsible_data_integration::coverage::{remedy_greedy, CoverageAnalyzer};
use responsible_data_integration::profile::{LabelConfig, NutritionalLabel};
use responsible_data_integration::table::{read_csv_str, write_csv_string, Table, Value};

const CSV: &str = "\
gender,race,age,outcome
M,white,34,true
M,white,40,true
M,black,29,false
F,white,51,true
M,white,33,false
F,white,45,true
M,black,38,true
M,white,52,false
";

#[test]
fn csv_to_label_to_remediation() {
    let t = read_csv_str(CSV).unwrap();
    assert_eq!(t.num_rows(), 8);
    assert_eq!(t.schema().field("age").unwrap().dtype.name(), "int");

    // label without role annotations still profiles columns
    let label = NutritionalLabel::generate(&t, &LabelConfig::default()).unwrap();
    assert_eq!(label.columns.len(), 4);
    let age = label.columns.iter().find(|c| c.name == "age").unwrap();
    assert_eq!(age.distinct, 8);

    // coverage over (gender, race): (F, black) is missing
    let an = CoverageAnalyzer::new(&t, &["gender", "race"], 1).unwrap();
    let mups = an.maximal_uncovered_patterns();
    assert_eq!(mups.len(), 1);
    assert_eq!(an.describe(&mups[0]), "gender=F, race=black");

    // remediation proposes exactly that tuple
    let plan = remedy_greedy(&an, 2).unwrap();
    assert_eq!(plan.len(), 1);
    assert_eq!(plan[0], vec![Value::str("F"), Value::str("black")]);

    // apply and verify coverage is fixed
    let mut fixed_rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..t.num_rows() {
        fixed_rows.push(t.row(i).unwrap());
    }
    let mut fixed: Table = Table::new(t.schema().clone());
    for r in fixed_rows {
        fixed.push_row(r).unwrap();
    }
    fixed
        .push_row(vec![
            Value::str("F"),
            Value::str("black"),
            Value::Int(30),
            Value::Bool(true),
        ])
        .unwrap();
    let an2 = CoverageAnalyzer::new(&fixed, &["gender", "race"], 1).unwrap();
    assert!(an2.maximal_uncovered_patterns().is_empty());

    // and the whole thing round-trips through CSV
    let back = read_csv_str(&write_csv_string(&fixed)).unwrap();
    assert_eq!(back.num_rows(), 9);
    assert_eq!(back, fixed);
}
