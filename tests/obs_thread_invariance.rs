//! Property test for the rdi-obs determinism contract: the *work*
//! counters published by discovery, coverage, joinsample, and tailor
//! are bitwise identical whether the kernels run on `RDI_THREADS` =
//! 1, 2, or 8 — increments are functions of the work, never of the
//! schedule.
//!
//! (`par.*` dispatch counters are deliberately absent from the list:
//! they describe the schedule itself and differ across thread counts
//! by design.)
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so no other test's global-registry
//! traffic can race the delta measurements, and the `RDI_THREADS`
//! mutation cannot leak into concurrently running tests.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_par::{Threads, THREADS_ENV};
use responsible_data_integration::coverage::CoverageAnalyzer;
use responsible_data_integration::discovery::{TableSignature, UnionSearchIndex};
use responsible_data_integration::joinsample::{olken_sample_par, JoinIndex, WanderJoin};
use responsible_data_integration::obs;
use responsible_data_integration::table::{
    DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value,
};
use responsible_data_integration::tailor::prelude::*;

/// The cross-layer work counters covered by the invariance contract.
const WORK_COUNTERS: &[&str] = &[
    "discovery.sketches_built",
    "discovery.candidates_scored",
    "coverage.searches",
    "coverage.nodes_evaluated",
    "coverage.mups_found",
    "joinsample.olken_attempts",
    "joinsample.olken_accepted",
    "joinsample.walks_attempted",
    "joinsample.walks_dead_ended",
    "tailor.runs",
    "tailor.draws",
    "tailor.kept",
];

fn counter_values() -> Vec<u64> {
    WORK_COUNTERS
        .iter()
        .map(|n| obs::counter(n).get())
        .collect()
}

fn cat_table(seed: u64, rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("a", DataType::Str),
        Field::new("b", DataType::Str),
        Field::new("c", DataType::Str),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        t.push_row(vec![
            Value::str(if rng.gen::<bool>() { "x" } else { "y" }),
            Value::str(format!("b{}", rng.gen_range(0..3))),
            Value::str(format!("c{}", rng.gen_range(0..3))),
        ])
        .unwrap();
    }
    t
}

fn keyed_table(seed: u64, rows: usize, key_range: i64) -> Table {
    let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        t.push_row(vec![Value::Int(rng.gen_range(0..key_range))])
            .unwrap();
    }
    t
}

/// Run one representative workload through every instrumented layer.
/// All parallel entry points resolve their thread count from
/// `RDI_THREADS` (via [`Threads::auto`]), which the caller has set.
fn run_workload(seed: u64, rows: usize) {
    // discovery: sketch three tables, rank them against a query
    let mut idx = UnionSearchIndex::new();
    for i in 0..3u64 {
        let t = cat_table(seed.wrapping_add(i), rows);
        idx.insert(TableSignature::build(format!("t{i}"), &t, 32).unwrap());
    }
    let q = TableSignature::build("q", &cat_table(seed, rows), 32).unwrap();
    let _ = idx.top_k(&q, 2);

    // coverage: both MUP searches over the same table
    let t = cat_table(seed, rows);
    let an = CoverageAnalyzer::new(&t, &["a", "b", "c"], rows / 10 + 1).unwrap();
    let _ = an.mups_pattern_breaker();
    let _ = an.mups_deep_diver();

    // joinsample: block-parallel olken sampling + wander-join walks
    let left = keyed_table(seed, rows, 10);
    let right = keyed_table(seed.wrapping_add(7), rows, 10);
    let ridx = JoinIndex::build(&right, "k").unwrap();
    let _ = olken_sample_par(&left, "k", &ridx, 600, seed, Threads::auto()).unwrap();
    let wj = WanderJoin::new(vec![&left, &right], &[("k", "k")]).unwrap();
    let _ = wj.count_estimate_par(2_100, seed, Threads::auto());

    // tailor: seeded serial collection loop
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut src = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rows.max(40) {
        src.push_row(vec![Value::str(if rng.gen::<f64>() < 0.2 {
            "min"
        } else {
            "maj"
        })])
        .unwrap();
    }
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 10),
            (GroupKey(vec![Value::str("min")]), 10),
        ],
    );
    let mut sources = vec![TableSource::new("s", src, 1.0, &problem).unwrap()];
    let mut policy = RandomPolicy::new(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = run_tailoring(&mut sources, &problem, &mut policy, &mut rng, 100_000).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn work_counters_bitwise_identical_across_rdi_threads(
        seed in 0u64..1_000_000,
        rows in 60usize..160,
    ) {
        let mut deltas: Vec<Vec<u64>> = Vec::new();
        for t in ["1", "2", "8"] {
            std::env::set_var(THREADS_ENV, t);
            let before = counter_values();
            run_workload(seed, rows);
            let after = counter_values();
            deltas.push(
                after.iter().zip(&before).map(|(a, b)| a - b).collect(),
            );
        }
        std::env::remove_var(THREADS_ENV);
        // some work must actually have been counted
        prop_assert!(deltas[0].iter().sum::<u64>() > 0);
        for (i, d) in deltas.iter().enumerate().skip(1) {
            for (name, (got, want)) in WORK_COUNTERS.iter().zip(d.iter().zip(&deltas[0])) {
                prop_assert_eq!(
                    got, want,
                    "counter `{}` differs between RDI_THREADS=1 and RDI_THREADS={}",
                    name, ["1", "2", "8"][i]
                );
            }
        }
    }
}
