//! Cross-crate integration tests: the full responsible-integration
//! pipeline from synthetic sources to a passing audit, exercised through
//! the umbrella crate's public API exactly as a downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use responsible_data_integration::cleaning::ImputeStrategy;
use responsible_data_integration::core::prelude::*;
use responsible_data_integration::core::requirement::Requirement;
use responsible_data_integration::datagen::sources as rdi_source;
use responsible_data_integration::datagen::{
    healthcare_sources, inject_missing, HealthcareConfig, Mechanism, MissingSpec, PopulationSpec,
};
use responsible_data_integration::fairness::Categorical;
use responsible_data_integration::profile::LabelConfig;
use responsible_data_integration::table::{GroupKey, GroupSpec, Value};
use responsible_data_integration::tailor::prelude::*;

#[test]
fn skewed_sources_fail_audit_tailored_result_passes() {
    let pop = PopulationSpec::two_group(0.08);
    let mut rng = StdRng::seed_from_u64(100);
    // four sources with fixed, clearly skewed minority shares
    let generated: Vec<rdi_source::GeneratedSource> = [0.05, 0.10, 0.15, 0.02]
        .iter()
        .map(|&m| {
            let marginal = Categorical::from_weights(&[1.0 - m, m]);
            let table = pop.generate_with_marginals(8_000, &mut rng, Some(&marginal));
            rdi_source::GeneratedSource {
                table,
                marginal,
                cost: 1.0,
            }
        })
        .collect();

    // Every raw source fails the distribution requirement (TV to the
    // uniform reference is ≥ 0.35 for all of them).
    for g in &generated {
        let spec = RequirementSpec::default_for(&g.table).unwrap();
        let report = audit(&g.table, &spec).unwrap();
        let dist_finding = report
            .findings
            .iter()
            .find(|f| f.requirement == "underlying_distribution_representation")
            .unwrap();
        assert!(!dist_finding.passed, "raw skewed source should fail");
    }

    // Tailor exact parity and re-audit.
    let problem = DtProblem::ranged(
        GroupSpec::new(vec!["group"]),
        vec![
            (
                GroupKey(vec![Value::str("maj")]),
                CountRequirement::range(300, 300),
            ),
            (
                GroupKey(vec![Value::str("min")]),
                CountRequirement::range(300, 300),
            ),
        ],
    );
    let mut sources: Vec<TableSource> = generated
        .into_iter()
        .enumerate()
        .map(|(i, g)| TableSource::new(format!("s{i}"), g.table, g.cost, &problem).unwrap())
        .collect();
    let mut policy = RatioColl::from_sources(&sources);
    let out = run_tailoring(&mut sources, &problem, &mut policy, &mut rng, 5_000_000).unwrap();
    assert!(out.satisfied);
    assert_eq!(out.collected.num_rows(), 600);
    let spec = RequirementSpec::default_for(&out.collected).unwrap();
    assert!(audit(&out.collected, &spec).unwrap().passed());
}

#[test]
fn full_pipeline_with_imputation_and_provenance() {
    let mut rng = StdRng::seed_from_u64(101);
    let cfg = HealthcareConfig {
        population_size: 100,
        rows_per_hospital: 10_000,
    };
    let hospitals = healthcare_sources(&cfg, &mut rng);
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["race"]),
        ["white", "black", "hispanic", "asian"]
            .iter()
            .map(|r| (GroupKey(vec![Value::str(*r)]), 200))
            .collect(),
    );
    // Dirty one hospital's screening scores before wrapping it.
    let mut sources = Vec::new();
    for (i, (name, g)) in hospitals.into_iter().enumerate() {
        let table = if i == 0 {
            inject_missing(
                &g.table,
                &MissingSpec {
                    column: "screening_score".into(),
                    rate: 0.2,
                    mechanism: Mechanism::Mcar,
                },
                &mut rng,
            )
            .unwrap()
            .0
        } else {
            g.table
        };
        sources.push(TableSource::new(name, table, g.cost, &problem).unwrap());
    }
    let mut policy = RatioColl::from_sources(&sources);
    let pipeline = Pipeline {
        problem,
        imputations: vec![(
            "screening_score".into(),
            ImputeStrategy::GroupMean(GroupSpec::new(vec!["race"])),
        )],
        label_config: LabelConfig::default(),
        spec: RequirementSpec::default()
            .with(Requirement::GroupRepresentation {
                threshold: 150,
                max_uncovered_patterns: 0,
            })
            .with(Requirement::CompletenessCorrectness {
                max_missing_fraction: 0.0,
            })
            .with(Requirement::ScopeOfUse { min_scope_notes: 1 })
            .with_note("integration test data"),
        max_draws: 5_000_000,
    };
    let result = pipeline.run(&mut sources, &mut policy, &mut rng).unwrap();
    assert!(result.audit.passed(), "{:?}", result.audit.failures());
    assert_eq!(
        result.data.column("screening_score").unwrap().null_count(),
        0
    );
    // provenance records tailoring + imputation + audit, as typed events
    assert!(result.provenance.iter().any(|p| matches!(
        p,
        ProvenanceEvent::TailoringFinished {
            satisfied: true,
            ..
        }
    )));
    assert!(result.provenance.iter().any(|p| matches!(
        p,
        ProvenanceEvent::Imputed { column, nulls_after: 0, .. } if column == "screening_score"
    )));
    assert!(result
        .provenance
        .iter()
        .any(|p| matches!(p, ProvenanceEvent::Audited { .. })));
    // the rendered lines keep the legacy human-readable form
    assert!(result
        .provenance_lines()
        .iter()
        .any(|l| l.starts_with("tailoring: ")));
    // and the shipped label carries the complete log, audit included
    assert!(result
        .label
        .scope_notes
        .iter()
        .any(|n| n.starts_with("audit: ")));
    // label carries group fractions for all four races
    assert_eq!(result.label.group_fractions.len(), 4);
}

#[test]
fn pipeline_reports_failure_when_requirements_unmeetable() {
    let pop = PopulationSpec::two_group(0.5);
    let mut rng = StdRng::seed_from_u64(102);
    let table = pop.generate(500, &mut rng);
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["group"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 10),
            (GroupKey(vec![Value::str("min")]), 10),
        ],
    );
    let mut sources = vec![TableSource::new("s", table, 1.0, &problem).unwrap()];
    let mut policy = RandomPolicy::new(1);
    let pipeline = Pipeline {
        problem,
        imputations: vec![],
        label_config: LabelConfig::default(),
        // impossible: zero scope notes provided but one required
        spec: RequirementSpec::default().with(Requirement::ScopeOfUse { min_scope_notes: 3 }),
        max_draws: 100_000,
    };
    let result = pipeline.run(&mut sources, &mut policy, &mut rng).unwrap();
    assert!(!result.audit.passed());
    assert_eq!(result.audit.failures().len(), 1);
}
