//! Quickstart: profile a skewed dataset, audit it against the
//! responsibility requirements, tailor a balanced dataset from skewed
//! sources, and audit again.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use responsible_data_integration::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);

    // 1. A population where 12% belong to the minority group, split into
    //    four sources whose skews differ (tutorial Example 1 in miniature).
    let population = PopulationSpec::two_group(0.12);
    let sources_cfg = SourceConfig {
        num_sources: 4,
        rows_per_source: 20_000,
        concentration: 0.8,
        costs: vec![1.0, 1.0, 1.5, 2.0],
    };
    let generated = skewed_sources(&population, &sources_cfg, &mut rng);

    // 2. Look at one source the way a data scientist would: profile it.
    let label = NutritionalLabel::generate(&generated[0].table, &LabelConfig::default()).unwrap();
    println!("=== Nutritional label of source 0 (excerpt) ===");
    for (g, f) in &label.group_fractions {
        println!("  {g}: {:.1}%", f * 100.0);
    }
    println!(
        "  representation disparity: {:.3}",
        label.representation_disparity
    );

    // 3. Audit source 0 against the default responsibility requirements.
    let spec = RequirementSpec::default_for(&generated[0].table).unwrap();
    let report = audit(&generated[0].table, &spec).unwrap();
    println!("\n=== Audit of source 0 ===\n{}", report.to_markdown());

    // 4. Tailor a balanced dataset: 1 000 of each group, cheapest way.
    // Range requirements (lo = hi) keep *exactly* 1 000 of each group —
    // surplus majority tuples are discarded rather than collected.
    let problem = DtProblem::ranged(
        GroupSpec::new(vec!["group"]),
        vec![
            (
                GroupKey(vec![Value::str("maj")]),
                CountRequirement::range(1_000, 1_000),
            ),
            (
                GroupKey(vec![Value::str("min")]),
                CountRequirement::range(1_000, 1_000),
            ),
        ],
    );
    let mut sources: Vec<TableSource> = generated
        .into_iter()
        .enumerate()
        .map(|(i, g)| TableSource::new(format!("source_{i}"), g.table, g.cost, &problem).unwrap())
        .collect();
    let mut policy = RatioColl::from_sources(&sources);
    let outcome = run_tailoring(&mut sources, &problem, &mut policy, &mut rng, 2_000_000).unwrap();
    println!(
        "=== Tailoring ===\ncollected {} rows in {} draws, total cost {:.0}",
        outcome.collected.num_rows(),
        outcome.draws,
        outcome.total_cost
    );

    // 5. Audit the tailored dataset — group representation now passes.
    let spec = RequirementSpec::default_for(&outcome.collected)
        .unwrap()
        .with_note("tailored to 1000/1000 parity from 4 skewed sources");
    let report = audit(&outcome.collected, &spec).unwrap();
    println!(
        "\n=== Audit of the tailored dataset ===\n{}",
        report.to_markdown()
    );
    assert!(report.passed(), "tailored dataset should pass the audit");
}
