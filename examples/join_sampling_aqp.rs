//! Approximate query answering over joins (tutorial §3.4): why
//! sample-then-join is biased, how accept-reject fixes it, and how ripple
//! and wander joins answer aggregates online — including the
//! responsibility angle: per-group AVG error is worst for minority
//! groups under naive sampling.
//!
//! ```bash
//! cargo run --release --example join_sampling_aqp
//! ```

use responsible_data_integration::joinsample::olken::materialize_samples;
use responsible_data_integration::joinsample::ripple::Side;
use responsible_data_integration::joinsample::{
    chaudhuri_sample, sample_then_join, JoinIndex, RippleJoin, WanderJoin,
};
use responsible_data_integration::prelude::*;
use responsible_data_integration::table::hash_join;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    // patients(pid, group)  ⋈  visits(pid, cost): minority patients have
    // fewer visits each (lower key multiplicity), the classic skew that
    // biases naive join sampling.
    let pschema = Schema::new(vec![
        Field::new("pid", DataType::Int),
        Field::new("group", DataType::Str).with_role(Role::Sensitive),
    ]);
    let vschema = Schema::new(vec![
        Field::new("pid", DataType::Int),
        Field::new("cost", DataType::Float),
    ]);
    let mut patients = Table::new(pschema);
    let mut visits = Table::new(vschema);
    for pid in 0..2_000i64 {
        let minority = pid % 10 == 0;
        let group = if minority { "min" } else { "maj" };
        patients
            .push_row(vec![Value::Int(pid), Value::str(group)])
            .unwrap();
        let n_visits = if minority { 1 } else { 5 };
        let base = if minority { 300.0 } else { 100.0 };
        for _ in 0..n_visits {
            visits
                .push_row(vec![
                    Value::Int(pid),
                    Value::Float(base + rng.gen::<f64>() * 20.0),
                ])
                .unwrap();
        }
    }

    let truth = hash_join(&patients, &visits, "pid", "pid").unwrap();
    let spec = GroupSpec::new(vec!["group"]);
    let true_avg = |t: &Table, g: &str| -> f64 {
        let stats = spec.stats(t, "cost").unwrap();
        stats
            .iter()
            .find(|(k, _)| k.0[0] == Value::str(g))
            .map(|(_, s)| s.mean)
            .unwrap_or(f64::NAN)
    };
    println!("true join size: {}", truth.num_rows());
    println!(
        "true AVG(cost): maj={:.1}  min={:.1}",
        true_avg(&truth, "maj"),
        true_avg(&truth, "min")
    );

    // --- naive sample-then-join ---
    let naive = sample_then_join(&patients, &visits, "pid", "pid", 0.1, &mut rng).unwrap();
    println!(
        "\nsample-then-join at 10%: {} rows (expected ~1% of join) — min AVG estimate {:.1}",
        naive.num_rows(),
        true_avg(&naive, "min")
    );

    // --- uniform accept-reject sample ---
    let idx = JoinIndex::build(&visits, "pid").unwrap();
    let samples = chaudhuri_sample(&patients, "pid", &idx, 2_000, &mut rng).unwrap();
    let uniform = materialize_samples(&patients, &visits, "pid", &samples).unwrap();
    println!(
        "uniform join sample (2000): maj AVG {:.1}  min AVG {:.1}",
        true_avg(&uniform, "maj"),
        true_avg(&uniform, "min")
    );

    // --- ripple join: anytime COUNT with confidence interval ---
    let mut ripple = RippleJoin::new(
        &patients,
        &visits,
        "pid",
        "pid",
        Some(("cost", Side::Right)),
        &mut rng,
    )
    .unwrap();
    println!("\nripple join online COUNT estimates:");
    for step in [200, 500, 1_000, 2_000] {
        ripple.run(step);
        let est = ripple.count_estimate();
        let (lo, hi) = est.ci95();
        println!(
            "  after {:>4}/{:>4} tuples read: {:>8.0}  [{:.0}, {:.0}]",
            ripple.progress().0,
            ripple.progress().1,
            est.value,
            lo,
            hi
        );
    }

    // --- wander join: independent HT-weighted walks ---
    let wj = WanderJoin::new(vec![&patients, &visits], &[("pid", "pid")]).unwrap();
    let est = wj.count_estimate(5_000, &mut rng);
    println!(
        "\nwander join COUNT from 5000 walks: {:.0} ± {:.0} (truth {})",
        est.value,
        1.96 * est.std_err,
        truth.num_rows()
    );
    let sum = wj.aggregate_estimate(5_000, &mut rng, |p| {
        wj.path_value(p, 1, "cost").unwrap().as_f64().unwrap()
    });
    println!(
        "wander join SUM(cost): {:.0} (truth {:.0})",
        sum.value,
        truth.sum("cost").unwrap()
    );
}
