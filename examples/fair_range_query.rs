//! Fairness-aware range queries (tutorial §5): a recruiter filters
//! candidates by an age range; the raw result is badly gender-imbalanced.
//! The engine proposes the most similar range whose disparity is bounded,
//! and the coverage-based relaxer widens the range until every group is
//! represented.
//!
//! ```bash
//! cargo run --example fair_range_query
//! ```

use responsible_data_integration::fairquery::{relax_for_coverage, RangeQuery2d, RangeQueryEngine};
use responsible_data_integration::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Synthetic candidate pool: women skew younger in this pool, so an
    // age filter of 35–55 returns mostly men.
    let schema = Schema::new(vec![
        Field::new("gender", DataType::Str).with_role(Role::Sensitive),
        Field::new("age", DataType::Float),
    ]);
    let mut pool = Table::new(schema);
    for _ in 0..3_000 {
        let (g, age) = if rng.gen::<f64>() < 0.5 {
            ("F", 22.0 + rng.gen::<f64>() * 20.0) // 22–42
        } else {
            ("M", 30.0 + rng.gen::<f64>() * 30.0) // 30–60
        };
        pool.push_row(vec![Value::str(g), Value::Float(age)])
            .unwrap();
    }

    let spec = GroupSpec::new(vec!["gender"]);
    let engine = RangeQueryEngine::build(&pool, "age", &spec).unwrap();

    let (lo, hi) = (35.0, 55.0);
    println!("original query: 35 ≤ age ≤ 55");
    println!(
        "  output disparity |#F − #M| = {}",
        engine.disparity(lo, hi)
    );

    for eps in [200, 50, 10, 0] {
        let fr = engine.fair_range_exact(lo, hi, eps);
        println!(
            "  ε={eps:<4} → propose {:.1} ≤ age ≤ {:.1}  (disparity {}, similarity {:.3}, {} rows)",
            fr.lo, fr.hi, fr.disparity, fr.similarity, fr.selected
        );
    }

    // The greedy heuristic gets close at a fraction of the cost:
    let exact = engine.fair_range_exact(lo, hi, 10);
    let greedy = engine.fair_range_greedy(lo, hi, 10);
    println!(
        "\nexact vs greedy at ε=10: similarity {:.3} vs {:.3}",
        exact.similarity, greedy.similarity
    );

    // Top-k alternatives: genuinely different fair trade-offs for the
    // user to explore (the paper's interactive loop).
    println!("\ntop-3 distinct fair alternatives at ε=10:");
    for alt in engine.fair_range_top_k(lo, hi, 10, 3) {
        println!(
            "  {:.1} ≤ age ≤ {:.1}  (similarity {:.3}, {} rows)",
            alt.lo, alt.hi, alt.similarity, alt.selected
        );
    }

    // 2-D: age × years-of-experience box queries.
    let pts: Vec<(f64, f64, bool)> = (0..pool.num_rows())
        .map(|i| {
            let age = pool.value(i, "age").unwrap().as_f64().unwrap();
            let is_f = pool.value(i, "gender").unwrap() == Value::str("F");
            let exp = (age - 22.0).max(0.0) * 0.6; // experience tracks age
            (age, exp, is_f)
        })
        .collect();
    let e2 = RangeQuery2d::from_points(&pts, 12);
    let orig2 = e2.disparity(35.0, 55.0, 5.0, 20.0);
    let fb = e2.fair_box(35.0, 55.0, 5.0, 20.0, 20);
    println!(
        "\n2-D query 35≤age≤55 ∧ 5≤exp≤20: disparity {orig2} → proposed \
         [{:.1},{:.1}]×[{:.1},{:.1}] disparity {} similarity {:.3}",
        fb.x_lo, fb.x_hi, fb.y_lo, fb.y_hi, fb.disparity, fb.similarity
    );

    // Coverage-based relaxation: both genders must have ≥ 400 rows.
    let relaxed = relax_for_coverage(&pool, "age", &spec, lo, hi, 400).unwrap();
    println!(
        "\ncoverage relaxation (≥400 per gender): {:.1} ≤ age ≤ {:.1}, +{} rows, satisfied={}",
        relaxed.lo, relaxed.hi, relaxed.added_rows, relaxed.satisfied
    );
    for (g, c) in &relaxed.group_counts {
        println!("  {g}: {c}");
    }
}
