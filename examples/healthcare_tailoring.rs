//! Tutorial Example 1, end to end: integrate Chicago-style hospital data
//! with the responsible pipeline — tailor equal racial representation
//! from four skewed hospitals, impute, label, and audit — then show the
//! downstream payoff: a screening model trained on the tailored data has
//! a far smaller accuracy gap for minority patients than one trained on
//! a single hospital's records.
//!
//! ```bash
//! cargo run --release --example healthcare_tailoring
//! ```

use responsible_data_integration::acquisition::ml::{design_matrix, evaluate, LogisticRegression};
use responsible_data_integration::datagen::{
    healthcare_population, healthcare_sources, HealthcareConfig,
};
use responsible_data_integration::prelude::*;

const RACES: [&str; 4] = ["white", "black", "hispanic", "asian"];
const FEATURES: [&str; 2] = ["tumor_marker", "screening_score"];

fn train_and_eval(train: &Table, test: &Table, rng: &mut StdRng) -> (f64, Vec<(String, f64)>) {
    let (xs, ys, _) = design_matrix(train, &FEATURES, "diagnosis").unwrap();
    let model = LogisticRegression::train(&xs, &ys, 8, 0.05, 1e-4, rng);
    let spec = GroupSpec::new(vec!["race"]);
    let eval = evaluate(test, &FEATURES, "diagnosis", &spec, |x| model.predict(x)).unwrap();
    (eval.accuracy, eval.group_accuracy)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = HealthcareConfig {
        population_size: 30_000,
        rows_per_hospital: 25_000,
    };

    // The reference population (what production traffic looks like).
    let test_population = healthcare_population(&cfg, &mut rng);
    let hospitals = healthcare_sources(&cfg, &mut rng);

    println!("=== Hospital skews ===");
    for (name, src) in &hospitals {
        let fr = GroupSpec::new(vec!["race"]).fractions(&src.table).unwrap();
        let rendered: Vec<String> = fr
            .iter()
            .map(|(k, f)| format!("{}={:.0}%", k.0[0], f * 100.0))
            .collect();
        println!("  {name:<12} cost {:.1}  {}", src.cost, rendered.join("  "));
    }

    // Baseline: train only on the north-side hospital (white-dominant).
    let north = &hospitals[0].1.table;
    let (acc, groups) = train_and_eval(north, &test_population, &mut rng);
    println!("\n=== Model trained on north_side only ===");
    println!("  overall accuracy {acc:.3}");
    for (g, a) in &groups {
        println!("  accuracy {g}: {a:.3}");
    }

    // Responsible pipeline: tailor 2 000 per race across hospitals.
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["race"]),
        RACES
            .iter()
            .map(|r| (GroupKey(vec![Value::str(*r)]), 2_000))
            .collect(),
    );
    let mut sources: Vec<TableSource> = hospitals
        .into_iter()
        .map(|(name, g)| TableSource::new(name, g.table, g.cost, &problem).unwrap())
        .collect();
    let mut policy = RatioColl::from_sources(&sources);
    let pipeline = PipelineBuilder::new(problem)
        .require(Requirement::GroupRepresentation {
            threshold: 1_500,
            max_uncovered_patterns: 0,
        })
        .require(Requirement::ScopeOfUse { min_scope_notes: 1 })
        .scope_note(
            "Integrated from 4 simulated Chicago hospitals with differing racial skews; \
             tailored to equal representation for breast-cancer screening research.",
        )
        .max_draws(5_000_000)
        .build();
    let result = pipeline.run(&mut sources, &mut policy, &mut rng).unwrap();
    println!("\n=== Responsible pipeline ===");
    for p in &result.provenance {
        println!("  {p}");
    }
    println!("\n{}", result.audit.to_markdown());
    assert!(result.audit.passed());

    let (acc, groups) = train_and_eval(&result.data, &test_population, &mut rng);
    println!("=== Model trained on tailored data ===");
    println!("  overall accuracy {acc:.3}");
    for (g, a) in &groups {
        println!("  accuracy {g}: {a:.3}");
    }
    println!("\nTailoring cost paid: {:.0} units", result.total_cost);
}
