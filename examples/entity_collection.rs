//! Distribution-aware crowdsourced entity collection (§4.1) plus
//! Themis-style sample debiasing (§5): collect points of interest from
//! heterogeneous workers toward an even district distribution, then show
//! how post-stratification answers population queries from whatever
//! biased sample you end up with anyway.
//!
//! ```bash
//! cargo run --example entity_collection
//! ```

use std::collections::BTreeMap;

use responsible_data_integration::entitycollect::{
    run_collection, SimulatedWorker, WorkerSelection,
};
use responsible_data_integration::fairness::{Categorical, DebiasedView};
use responsible_data_integration::prelude::*;
use responsible_data_integration::table::Predicate;

const DISTRICTS: [&str; 4] = ["north", "south", "west", "loop"];

fn main() {
    let mut rng = StdRng::seed_from_u64(21);

    // Crowd: each worker knows one part of town much better.
    let workers: Vec<SimulatedWorker> = (0..8)
        .map(|i| {
            let mut w = vec![0.08; 4];
            w[i % 4] = 1.0;
            SimulatedWorker {
                name: format!("worker_{i}"),
                latent: Categorical::from_weights(&w),
                batch: 12,
            }
        })
        .collect();
    let target = Categorical::uniform(4);

    println!("=== Collecting POIs toward an even district distribution ===");
    for (label, sel) in [
        ("adaptive", WorkerSelection::Adaptive),
        ("random  ", WorkerSelection::Random),
    ] {
        let trace = run_collection(&workers, &target, 50, sel, &mut rng);
        let shares: Vec<String> = trace
            .counts
            .iter()
            .zip(DISTRICTS)
            .map(|(c, d)| {
                format!(
                    "{d}={:.0}%",
                    100.0 * *c as f64 / trace.total_entities as f64
                )
            })
            .collect();
        println!(
            "  {label}  final KL={:.4}   {}",
            trace.divergence.last().unwrap(),
            shares.join("  ")
        );
    }

    // Suppose we're stuck with a biased collection anyway (random
    // selection stopped early). Build a table and debias queries on it.
    let trace = run_collection(&workers, &target, 12, WorkerSelection::Random, &mut rng);
    let schema = Schema::new(vec![
        Field::new("district", DataType::Str).with_role(Role::Sensitive),
        Field::new("rating", DataType::Float),
    ]);
    let mut pois = Table::new(schema);
    // Loop POIs rate higher in this toy city.
    for (d, &count) in trace.counts.iter().enumerate() {
        for j in 0..count {
            let rating = if DISTRICTS[d] == "loop" { 4.5 } else { 3.0 } + (j % 5) as f64 * 0.1;
            pois.push_row(vec![Value::str(DISTRICTS[d]), Value::Float(rating)])
                .unwrap();
        }
    }
    println!(
        "\n=== Debiasing a biased sample of {} POIs ===",
        pois.num_rows()
    );
    let spec = GroupSpec::new(vec!["district"]);
    let raw_avg = pois.mean("rating").unwrap().unwrap();
    // the city truly has equal POIs per district
    let population: BTreeMap<GroupKey, f64> = DISTRICTS
        .iter()
        .map(|d| (GroupKey(vec![Value::str(*d)]), 0.25))
        .collect();
    let view = DebiasedView::new(&pois, &spec, &population).unwrap();
    let fair_avg = view.avg("rating", &Predicate::True).unwrap().unwrap();
    println!("  sample AVG(rating)          = {raw_avg:.3}");
    println!("  post-stratified AVG(rating) = {fair_avg:.3}");
    for d in DISTRICTS {
        let f = view.fraction(&Predicate::eq("district", Value::str(d)));
        println!("  debiased share of {d:<5} = {:.0}%", f * 100.0);
    }
}
