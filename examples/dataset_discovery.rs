//! Dataset & unbiased feature discovery over a synthetic lake (tutorial
//! §3.1 and §5): containment search with LSH Ensemble, exact overlap
//! ranking, and sketch-based discovery of features that are informative
//! for the target yet minimally correlated with the sensitive attribute.
//!
//! ```bash
//! cargo run --release --example dataset_discovery
//! ```

use responsible_data_integration::discovery::{
    discover_features, FeatureQuery, LshEnsemble, MinHash, OverlapIndex,
};
use responsible_data_integration::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let lake = SyntheticLake::generate(
        &LakeConfig {
            num_candidates: 60,
            query_keys: 2_000,
            candidate_rows: 3_000,
            joinable_fraction: 0.3,
        },
        &mut rng,
    );
    println!(
        "lake: {} candidate tables, query with {} keys",
        lake.candidates.len(),
        lake.query.num_rows()
    );

    // --- 1. containment search: LSH Ensemble vs exact overlap index ---
    let k = 128;
    let mut ensemble = LshEnsemble::new(k, 0.5, 8, 100_000);
    let mut exact = OverlapIndex::new();
    for (i, c) in lake.candidates.iter().enumerate() {
        let sig = MinHash::from_column(&c.table, "key", k).unwrap();
        let size = c.table.distinct("key").unwrap().len();
        ensemble.insert(i, sig, size);
        exact.insert(c.name.clone(), &c.table, "key").unwrap();
    }
    ensemble.build(lake.query.num_rows());

    let qsig = MinHash::from_column(&lake.query, "key", k).unwrap();
    let hits = ensemble.query(&qsig, lake.query.num_rows());
    let truth: Vec<usize> = lake
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.containment >= 0.5)
        .map(|(i, _)| i)
        .collect();
    let tp = hits.iter().filter(|h| truth.contains(h)).count();
    println!(
        "\nLSH-Ensemble containment ≥ 0.5: {} hits, {} true ≥0.5 candidates, recall {:.2}, precision {:.2}",
        hits.len(),
        truth.len(),
        tp as f64 / truth.len().max(1) as f64,
        tp as f64 / hits.len().max(1) as f64
    );
    let top = exact.top_k_containment(&lake.query, "key", 3).unwrap();
    println!("exact top-3 by containment:");
    for (id, c) in top {
        println!("  {} containment {:.2}", exact.name(id), c);
    }

    // --- 2. unbiased feature discovery ---
    // Attach a sensitive column to the query table: correlated with the
    // target for half the keys (so some candidate features will inherit
    // the bias).
    let schema = Schema::new(vec![
        Field::new("key", DataType::Str),
        Field::new("y", DataType::Float),
        Field::new("s", DataType::Float),
    ]);
    let mut query = Table::new(schema);
    for (i, (key, t)) in lake.target_by_key.iter().enumerate() {
        let s = if i % 2 == 0 { *t } else { -*t }; // half-aligned proxy
        query
            .push_row(vec![
                Value::str(key.clone()),
                Value::Float(*t),
                Value::Float(s),
            ])
            .unwrap();
    }
    let fq = FeatureQuery {
        table: &query,
        key: "key",
        target: "y",
        sensitive: "s",
    };
    let cands: Vec<(&str, &Table, &str, &str)> = lake
        .candidates
        .iter()
        .map(|c| (c.name.as_str(), &c.table, "key", "feat"))
        .collect();
    let ranked = discover_features(&fq, &cands, 256, 50.0, 1.0).unwrap();
    println!("\ntop-5 discovered features (score = informativeness − bias):");
    for c in ranked.iter().take(5) {
        println!(
            "  {:<9} {:<5} target-corr {:.2}  sensitive-corr {:.2}  ~{:.0} join keys",
            c.table, c.column, c.informativeness, c.bias, c.join_keys
        );
    }
    // Cross-check the best feature against planted truth.
    if let Some(best) = ranked.first() {
        let planted = lake
            .candidates
            .iter()
            .find(|c| c.name == best.table)
            .map(|c| c.correlation.abs())
            .unwrap_or(0.0);
        println!(
            "\nbest feature's planted |join-correlation| = {planted:.2} (sketch said {:.2})",
            best.informativeness
        );
    }
}
