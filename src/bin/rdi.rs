//! `rdi` — the command-line face of the toolkit.
//!
//! ```text
//! rdi label    <data.csv> [--sensitive a,b] [--target y] [--tau N] [--json]
//! rdi audit    <data.csv> [--sensitive a,b] [--target y]
//! rdi coverage <data.csv> --attrs a,b [--tau N] [--goal-level L]
//! rdi fair-range <data.csv> --attr x --group g --lo L --hi H [--epsilon E]
//! rdi datasheet <name>
//! ```
//!
//! Arguments are parsed by hand (the workspace's dependency budget does
//! not include a CLI framework); see [`cli::Args`].

use std::process::ExitCode;

use responsible_data_integration::cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
