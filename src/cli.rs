//! Implementation of the `rdi` command-line tool.
//!
//! Kept in the library so the argument parsing and command dispatch are
//! unit-testable without spawning processes.

use std::collections::HashMap;

use crate::prelude::*;
use rdi_coverage::{remedy_greedy, CoverageAnalyzer};
use rdi_fairquery::RangeQueryEngine;
use rdi_profile::Datasheet;
use rdi_table::read_csv_str;

/// The usage string printed on errors.
pub const USAGE: &str = "\
usage:
  rdi label      <data.csv> [--sensitive a,b] [--target y] [--tau N] [--json]
  rdi audit      <data.csv> [--sensitive a,b] [--target y]
  rdi coverage   <data.csv> --attrs a,b [--tau N] [--goal-level L]
  rdi fair-range <data.csv> --attr x --group g --lo L --hi H [--epsilon E]
  rdi datasheet  <name>";

/// Parsed command-line arguments: positional values plus `--key value`
/// flags (`--json`-style boolean flags get the value `"true"`).
#[derive(Debug, Default, PartialEq)]
pub struct Args {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` flags.
    pub flags: HashMap<String, String>,
}

/// Parse raw arguments.
pub fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(key) = a.strip_prefix("--") {
            let is_bool = matches!(key, "json");
            if is_bool {
                out.flags.insert(key.to_string(), "true".to_string());
            } else {
                let v = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                out.flags.insert(key.to_string(), v.clone());
                i += 1;
            }
        } else {
            out.positional.push(a.clone());
        }
        i += 1;
    }
    Ok(out)
}

fn load_table(path: &str, args: &Args) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let t = read_csv_str(&text).map_err(|e| e.to_string())?;
    // re-annotate roles per flags
    let sensitive: Vec<&str> = args
        .flags
        .get("sensitive")
        .map(|s| s.split(',').collect())
        .unwrap_or_default();
    let target = args.flags.get("target").map(String::as_str);
    let fields: Vec<Field> = t
        .schema()
        .fields()
        .iter()
        .map(|f| {
            let role = if sensitive.contains(&f.name.as_str()) {
                Role::Sensitive
            } else if Some(f.name.as_str()) == target {
                Role::Target
            } else {
                Role::Feature
            };
            Field::new(f.name.clone(), f.dtype).with_role(role)
        })
        .collect();
    // rebuild with annotated schema
    let schema = Schema::new(fields);
    let mut out = Table::with_capacity(schema, t.num_rows());
    for i in 0..t.num_rows() {
        out.push_row(t.row(i).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    }
    Ok(out)
}

fn parse_flag<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String> {
    match args.flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key}: {v}")),
    }
}

fn require_flag<'a>(args: &'a Args, key: &str) -> Result<&'a str, String> {
    args.flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// Run a CLI invocation; returns the text to print.
pub fn run(raw: &[String]) -> Result<String, String> {
    let args = parse_args(raw)?;
    let cmd = args
        .positional
        .first()
        .ok_or_else(|| "missing command".to_string())?
        .clone();
    match cmd.as_str() {
        "label" => cmd_label(&args),
        "audit" => cmd_audit(&args),
        "coverage" => cmd_coverage(&args),
        "fair-range" => cmd_fair_range(&args),
        "datasheet" => cmd_datasheet(&args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn data_path(args: &Args) -> Result<&str, String> {
    args.positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| "missing <data.csv> argument".to_string())
}

fn cmd_label(args: &Args) -> Result<String, String> {
    let t = load_table(data_path(args)?, args)?;
    let config = LabelConfig {
        coverage_threshold: parse_flag(args, "tau", 10usize)?,
        ..LabelConfig::default()
    };
    let label = NutritionalLabel::generate(&t, &config).map_err(|e| e.to_string())?;
    if args.flags.contains_key("json") {
        Ok(label.to_json())
    } else {
        Ok(label.to_markdown())
    }
}

fn cmd_audit(args: &Args) -> Result<String, String> {
    let t = load_table(data_path(args)?, args)?;
    let spec = RequirementSpec::default_for(&t).map_err(|e| e.to_string())?;
    let report = audit(&t, &spec).map_err(|e| e.to_string())?;
    let mut out = report.to_markdown();
    out.push_str(if report.passed() {
        "\nresult: PASS\n"
    } else {
        "\nresult: FAIL\n"
    });
    Ok(out)
}

fn cmd_coverage(args: &Args) -> Result<String, String> {
    let t = load_table(data_path(args)?, args)?;
    let attrs_raw = require_flag(args, "attrs")?;
    let attrs: Vec<&str> = attrs_raw.split(',').collect();
    let tau = parse_flag(args, "tau", 1usize)?;
    let analyzer = CoverageAnalyzer::new(&t, &attrs, tau).map_err(|e| e.to_string())?;
    let mups = analyzer.maximal_uncovered_patterns();
    let mut out = format!("maximal uncovered patterns at τ={tau}: {}\n", mups.len());
    for m in &mups {
        out.push_str(&format!("  {}\n", analyzer.describe(m)));
    }
    let goal = parse_flag(args, "goal-level", attrs.len())?;
    let plan = remedy_greedy(&analyzer, goal).map_err(|e| e.to_string())?;
    if !plan.is_empty() {
        out.push_str(&format!(
            "remediation plan (goal level {goal}): add {} tuple(s)\n",
            plan.len()
        ));
        for row in plan.iter().take(10) {
            let rendered: Vec<String> = attrs
                .iter()
                .zip(row)
                .map(|(a, v)| format!("{a}={v}"))
                .collect();
            out.push_str(&format!("  + {}\n", rendered.join(", ")));
        }
    }
    Ok(out)
}

fn cmd_fair_range(args: &Args) -> Result<String, String> {
    let t = load_table(data_path(args)?, args)?;
    let attr = require_flag(args, "attr")?;
    let group = require_flag(args, "group")?;
    let lo: f64 = require_flag(args, "lo")?
        .parse()
        .map_err(|_| "invalid --lo".to_string())?;
    let hi: f64 = require_flag(args, "hi")?
        .parse()
        .map_err(|_| "invalid --hi".to_string())?;
    let epsilon = parse_flag(args, "epsilon", 0i64)?;
    let spec = GroupSpec::new(vec![group]);
    let engine = RangeQueryEngine::build(&t, attr, &spec).map_err(|e| e.to_string())?;
    let original = engine.disparity(lo, hi);
    let fair = engine.fair_range_exact(lo, hi, epsilon);
    Ok(format!(
        "original range [{lo}, {hi}]: disparity {original}\n\
         fairest similar range (ε={epsilon}): [{:.4}, {:.4}]\n\
         disparity {}, similarity {:.3}, {} rows selected",
        fair.lo, fair.hi, fair.disparity, fair.similarity, fair.selected
    ))
}

fn cmd_datasheet(args: &Args) -> Result<String, String> {
    let name = args
        .positional
        .get(1)
        .ok_or_else(|| "missing dataset name".to_string())?;
    Ok(Datasheet::template(name).to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write;

    fn write_csv(content: &str) -> tempfile_path::TempCsv {
        tempfile_path::TempCsv::new(content)
    }

    /// Minimal self-cleaning temp file helper (std-only).
    mod tempfile_path {
        use std::path::PathBuf;

        pub struct TempCsv(pub PathBuf);

        impl TempCsv {
            pub fn new(content: &str) -> Self {
                let mut p = std::env::temp_dir();
                let unique = format!(
                    "rdi_cli_test_{}_{:p}.csv",
                    std::process::id(),
                    content.as_ptr()
                );
                p.push(unique);
                std::fs::write(&p, content).unwrap();
                TempCsv(p)
            }
            pub fn path(&self) -> &str {
                self.0.to_str().unwrap()
            }
        }

        impl Drop for TempCsv {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
    }

    const CSV: &str = "\
race,age,y
w,30,true
w,40,true
b,29,false
w,51,true
b,33,false
w,45,true
b,38,true
w,52,false
";

    #[test]
    fn parse_args_flags_and_positionals() {
        let raw: Vec<String> = ["label", "f.csv", "--sensitive", "race,sex", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = parse_args(&raw).unwrap();
        assert_eq!(a.positional, vec!["label", "f.csv"]);
        assert_eq!(a.flags["sensitive"], "race,sex");
        assert_eq!(a.flags["json"], "true");
        // missing value for a non-boolean flag
        let raw: Vec<String> = ["label", "--tau"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&raw).is_err());
    }

    #[test]
    fn label_command_markdown_and_json() {
        let f = write_csv(CSV);
        let raw: Vec<String> = ["label", f.path(), "--sensitive", "race", "--target", "y"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("Group representation"));
        let raw: Vec<String> = [
            "label",
            f.path(),
            "--sensitive",
            "race",
            "--target",
            "y",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run(&raw).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["num_rows"], 8);
    }

    #[test]
    fn audit_command_reports_pass_fail() {
        let f = write_csv(CSV);
        let raw: Vec<String> = ["audit", f.path(), "--sensitive", "race", "--target", "y"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("Responsibility Audit"));
        assert!(out.contains("result: "));
    }

    #[test]
    fn coverage_command_lists_mups() {
        let csv = "g,r\nM,w\nM,b\nF,w\n";
        let f = write_csv(csv);
        let raw: Vec<String> = ["coverage", f.path(), "--attrs", "g,r"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("g=F, r=b"), "{out}");
        assert!(out.contains("remediation plan"));
    }

    #[test]
    fn fair_range_command() {
        let mut csv = String::from("g,x\n");
        for i in 0..50 {
            let g = if i < 25 { "a" } else { "b" };
            writeln!(csv, "{g},{i}").unwrap();
        }
        let f = write_csv(&csv);
        let raw: Vec<String> = [
            "fair-range",
            f.path(),
            "--attr",
            "x",
            "--group",
            "g",
            "--lo",
            "0",
            "--hi",
            "30",
            "--epsilon",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("disparity"));
        assert!(out.contains("similarity"));
    }

    #[test]
    fn datasheet_and_errors() {
        let raw: Vec<String> = ["datasheet", "mydata"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&raw).unwrap();
        assert!(out.contains("Datasheet: mydata"));
        assert!(run(&["bogus".to_string()]).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&["label".to_string()]).is_err());
        assert!(run(&["label".to_string(), "/nonexistent.csv".to_string()]).is_err());
    }
}
