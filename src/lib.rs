//! # responsible-data-integration
//!
//! Umbrella crate for the Responsible Data Integration (RDI) toolkit — a
//! from-scratch Rust implementation of the techniques surveyed in
//! *"Responsible Data Integration: Next-generation Challenges"*
//! (Nargesian, Asudeh, Jagadish; SIGMOD 2022).
//!
//! Each sub-crate is re-exported under a short module name:
//!
//! | module | crate | what it does |
//! |---|---|---|
//! | [`table`] | `rdi-table` | typed columnar tables, predicates, joins, CSV |
//! | [`datagen`] | `rdi-datagen` | synthetic populations, sources, missingness, data lakes |
//! | [`fairness`] | `rdi-fairness` | divergences, association & fairness metrics |
//! | [`coverage`] | `rdi-coverage` | MUP discovery & coverage remediation (§2.2) |
//! | [`tailor`] | `rdi-tailor` | data distribution tailoring (§4.2) |
//! | [`fault`] | `rdi-fault` | deterministic fault injection & resilience primitives |
//! | [`joinsample`] | `rdi-joinsample` | uniform/independent sampling over joins (§3.4) |
//! | [`discovery`] | `rdi-discovery` | dataset & feature discovery sketches (§3.1) |
//! | [`profile`] | `rdi-profile` | nutritional labels & datasheets (§3.2) |
//! | [`cleaning`] | `rdi-cleaning` | imputation, error repair, ER, fairness audits (§3.3) |
//! | [`acquisition`] | `rdi-acquisition` | slice-aware & market data acquisition |
//! | [`entitycollect`] | `rdi-entitycollect` | distribution-aware crowd entity collection (§4.1) |
//! | [`fairquery`] | `rdi-fairquery` | fairness-aware range queries (§5) |
//! | [`core`] | `rdi-core` | the §2 requirements framework, audits, pipeline |
//! | [`serve`] | `rdi-serve` | batched, cache-backed query serving over a lake index |
//! | [`actor`] | `rdi-actor` | deterministic actor runtime (typed mailboxes, seeded virtual-time scheduler, replayable event log) |
//! | [`obs`] | `rdi-obs` | metrics registry, span timers, typed provenance |
//!
//! For everyday use, `use responsible_data_integration::prelude::*;`
//! pulls in the common vocabulary: tables and schemas, the tailoring
//! problem/policies/sources, the [`core::PipelineBuilder`] entry point,
//! synthetic data generators, and the serving layer.

#![warn(missing_docs)]

pub mod cli;

/// One-stop imports for examples, experiments, and downstream binaries.
///
/// Brings in the common vocabulary across the toolkit: typed tables
/// ([`table::Table`], [`table::Schema`], …), the distribution-tailoring
/// problem and policies (`DtProblem`, `TableSource`, `RatioColl`, …),
/// the consolidated [`core::PipelineBuilder`] pipeline entry point with
/// its audit/requirement types, synthetic data generators, nutritional
/// labels, the `rdi-serve` serving layer, and the compat `rand`
/// RNG types.
pub mod prelude {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
    pub use rdi_core::prelude::*;
    pub use rdi_datagen::{
        skewed_sources, LakeConfig, PopulationSpec, SourceConfig, SyntheticLake,
    };
    pub use rdi_policy::{
        Candidate, PolicyId, PolicyParams, PolicySet, RankByScore, Rationale, Score,
        SelectionDecision, SelectionPolicy,
    };
    pub use rdi_profile::{LabelConfig, NutritionalLabel};
    pub use rdi_serve::{
        BatchReport, LakeIndex, LakeIndexConfig, ServeError, ServeRequest, ServeResponse,
        ServeSession, SessionConfig,
    };
    pub use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
    pub use rdi_tailor::prelude::*;
}

pub use rdi_acquisition as acquisition;
pub use rdi_actor as actor;
pub use rdi_cleaning as cleaning;
pub use rdi_core as core;
pub use rdi_coverage as coverage;
pub use rdi_datagen as datagen;
pub use rdi_discovery as discovery;
pub use rdi_entitycollect as entitycollect;
pub use rdi_fairness as fairness;
pub use rdi_fairquery as fairquery;
pub use rdi_fault as fault;
pub use rdi_joinsample as joinsample;
pub use rdi_obs as obs;
pub use rdi_policy as policy;
pub use rdi_profile as profile;
pub use rdi_serve as serve;
pub use rdi_table as table;
pub use rdi_tailor as tailor;
