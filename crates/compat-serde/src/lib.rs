//! Offline drop-in subset of `serde`, wired in under the dependency name
//! `serde` (see CONTRIBUTING.md, "Offline builds").
//!
//! Upstream serde abstracts over arbitrary data formats; this workspace
//! only ever serializes to and from JSON, so the compat crate collapses
//! the model: [`Serialize`] renders a value into the [`Json`] tree and
//! [`Deserialize`] rebuilds a value from it. The derive macros
//! (re-exported from the companion proc-macro crate) generate impls with
//! upstream-serde-compatible shapes — named structs become objects,
//! newtypes are transparent, enums are externally tagged.
//!
//! Integer fidelity: `u64`/`i64` round-trip losslessly ([`Json::U64`] /
//! [`Json::I64`] are distinct from [`Json::F64`]); this matters for the
//! 64-bit hash values in sketch signatures.

#![warn(missing_docs)]

pub use rdi_compat_serde_derive::{Deserialize, Serialize};

/// A JSON value: the single data model of the compat serde stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered so output is deterministic.
    Obj(Vec<(String, Json)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Create an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

static NULL: Json = Json::Null;

impl Json {
    /// Object member by name; [`Json::Null`] when absent or not an object
    /// (missing members deserialize as `None` for `Option` fields and
    /// error for mandatory ones).
    pub fn member(&self, name: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// View as an array of exactly `n` elements (tuple decoding).
    pub fn arr_of_len(&self, n: usize, ty: &str) -> Result<&[Json], Error> {
        match self {
            Json::Arr(items) if items.len() == n => Ok(items),
            other => Err(Error::custom(format!(
                "expected array of {n} elements for {ty}, got {other:?}"
            ))),
        }
    }

    /// String content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as `f64`, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::I64(i) => Some(*i as f64),
            Json::U64(u) => Some(*u as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed integer content, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(i) => Some(*i),
            Json::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned integer content, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::I64(i) => u64::try_from(*i).ok(),
            Json::U64(u) => Some(*u),
            _ => None,
        }
    }

    /// Boolean content, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup that distinguishes absence from `null`.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, name: &str) -> &Json {
        self.member(name)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_json_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Json {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}

impl_json_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Json::F64(f) if f == other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Json {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Render a value into the JSON data model.
pub trait Serialize {
    /// Convert `self` to a [`Json`] tree.
    fn serialize(&self) -> Json;
}

/// Rebuild a value from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Json`] tree.
    fn deserialize(v: &Json) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

impl Serialize for Json {
    fn serialize(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Json { Json::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Json) -> Result<Self, Error> {
                let i = v.as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Json {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => Json::I64(i),
                    Err(_) => Json::U64(u),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Json) -> Result<Self, Error> {
                let u = v.as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "integer {u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the parsed string. Intended for
    /// low-volume `&'static str` fields (e.g. model-kind labels), where
    /// upstream serde would require borrowed input we don't have.
    fn deserialize(v: &Json) -> Result<Self, Error> {
        let s: String = Deserialize::deserialize(v)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected single-char string, got {v:?}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::deserialize(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Json {
                Json::Arr(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Json) -> Result<Self, Error> {
                let items = v.arr_of_len($n, "tuple")?;
                Ok(($($t::deserialize(&items[$i])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::deserialize(x)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self) -> Json {
        // Sort keys so serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::deserialize(x)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_integers_round_trip_exactly() {
        let big: u64 = u64::MAX - 3;
        let j = big.serialize();
        assert_eq!(u64::deserialize(&j).unwrap(), big);
        let small: u64 = 17;
        assert_eq!(small.serialize(), Json::I64(17));
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.serialize(), Json::Null);
        assert_eq!(Option::<f64>::deserialize(&Json::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::deserialize(&Json::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn member_of_missing_field_is_null() {
        let obj = Json::Obj(vec![("a".into(), Json::Bool(true))]);
        assert_eq!(obj.member("b"), &Json::Null);
        assert_eq!(obj["a"], true);
    }

    #[test]
    fn tuples_and_vecs_nest() {
        let v: Vec<(f64, String, f64)> = vec![(1.0, "x".into(), 2.0)];
        let j = v.serialize();
        let back = Vec::<(f64, String, f64)>::deserialize(&j).unwrap();
        assert_eq!(back, v);
    }
}
