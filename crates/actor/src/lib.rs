//! # rdi-actor
//!
//! A **deterministic actor runtime** for concurrent serving: typed
//! mailboxes on std `mpsc`, a seeded virtual-time scheduler that
//! delivers message cohorts over `rdi-par` threads, and an append-only
//! replayable event log.
//!
//! The paper's serving-time responsibility argument (and the RAIDS
//! "responsible intelligent infrastructure" agenda, PAPERS.md) requires
//! integration constraints to hold under concurrent, long-lived
//! traffic — *and* requires the system to account for what it did and
//! in what order. An ordinary actor framework gives concurrency but
//! surrenders replayability: delivery order depends on thread timing.
//! This crate keeps both:
//!
//! * **Typed mailboxes** — [`Runtime::spawn`] returns an [`Addr<M>`]
//!   (a cloneable `mpsc` sender) for external injection; actor-to-actor
//!   sends go through [`Ctx::send`] and are buffered per handler.
//! * **Seeded virtual time** — every message gets a global sequence
//!   number and a delivery time `now + 1 + stream_seed(seed, seq) %
//!   latency_spread`; the pending set is ordered by `(vtime, seq)`.
//!   Identical seeds and injection streams replay **bitwise for any
//!   `RDI_THREADS` value** — the same per-index stream-seeding trick
//!   `rdi-par` uses for RNG streams.
//! * **Replayable event log** — the runtime (never the handlers)
//!   appends one [`EventRecord`] per delivery; [`EventLog::render`] is
//!   byte-comparable across replays.
//!
//! Observability: the runtime feeds `actor.messages_delivered` and
//! `actor.scheduler_steps` counters and an `actor.mailbox_depth` peak
//! gauge in `rdi-obs`.
//!
//! ## Example
//!
//! ```
//! use rdi_actor::{Actor, Addr, Ctx, Runtime, RuntimeConfig};
//!
//! struct Adder { total: u64 }
//! impl Actor for Adder {
//!     type Msg = u64;
//!     fn handle(&mut self, msg: u64, _ctx: &mut Ctx<'_>) { self.total += msg; }
//! }
//!
//! let mut rt = Runtime::new(RuntimeConfig::default());
//! let adder = rt.spawn("adder", Adder { total: 0 });
//! for i in 1..=10 { adder.send(i).unwrap(); }
//! rt.run_until_idle();
//! assert_eq!(rt.actor::<Adder>(adder.id()).unwrap().total, 55);
//! assert_eq!(rt.event_log().len(), 10);
//! ```

#![warn(missing_docs)]

pub mod log;
pub mod runtime;

pub use crate::log::{EventLog, EventRecord};
pub use crate::runtime::{Actor, ActorError, ActorId, Addr, Ctx, Message, Runtime, RuntimeConfig};
