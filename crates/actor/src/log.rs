//! Append-only, replayable event log.
//!
//! The runtime records one [`EventRecord`] per *delivered* message, in
//! delivery order: cohorts by ascending virtual time, target actors in
//! id order within a cohort, messages in sequence order within a
//! target. Because the scheduler is a pure function of `(seed,
//! injection stream)`, re-running the same program produces a
//! byte-identical [`EventLog::render`] — the log *is* the account of
//! "what the system did and in what order" that the RAIDS agenda asks
//! responsible infrastructure to keep.

use std::fmt;

use crate::runtime::ActorId;

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Scheduler step (1-based) that delivered the message.
    pub step: u64,
    /// Virtual time of the delivery cohort.
    pub vtime: u64,
    /// Global message sequence number, assigned at enqueue.
    pub seq: u64,
    /// Sending actor; `None` for messages injected from outside the
    /// runtime through an [`Addr`](crate::Addr) mailbox.
    pub from: Option<ActorId>,
    /// Receiving actor.
    pub to: ActorId,
    /// Receiver's spawn name.
    pub actor: String,
    /// Truncated `Debug` rendering of the message; delivery failures
    /// (type mismatches) append an ` !error: ...` suffix.
    pub summary: String,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step={} t={} seq={} ", self.step, self.vtime, self.seq)?;
        match self.from {
            Some(from) => write!(f, "{from}")?,
            None => f.write_str("ext")?,
        }
        write!(f, " -> {}{} {}", self.actor, self.to, self.summary)
    }
}

/// The append-only delivery log of one [`Runtime`](crate::Runtime).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventLog {
    records: Vec<EventRecord>,
}

impl EventLog {
    /// All records, in delivery order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been delivered yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One line per record, in delivery order, each terminated by
    /// `\n` — the byte-comparable replay artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    pub(crate) fn push(&mut self, record: EventRecord) {
        self.records.push(record);
    }
}
