//! The deterministic scheduler: typed mailboxes, virtual-time message
//! ordering, and cohort delivery over `rdi-par`.
//!
//! ## How determinism is achieved
//!
//! Every message — whether injected from outside through an [`Addr`]
//! or sent between actors via [`Ctx::send`] — is stamped with a global
//! **sequence number** at enqueue time and a **delivery virtual time**
//! `now + 1 + jitter`, where `jitter = stream_seed(seed, seq) %
//! latency_spread` (the same per-index stream-seeding trick `rdi-par`
//! uses for RNG streams). The pending queue is a `BTreeMap` keyed by
//! `(vtime, seq)`, so the delivery order is a pure function of the
//! scheduler seed and the injection stream — never of thread timing.
//! A per-target floor clamps each delivery time to be no earlier than
//! previously enqueued messages for the same actor, so per-actor
//! delivery is FIFO in enqueue order and jitter only reorders *across*
//! actors.
//!
//! One [`Runtime::step`] delivers the *cohort*: every envelope at the
//! minimal pending virtual time. The cohort is grouped by target actor
//! (targets in actor-id order, messages in sequence order within a
//! target) and the groups run in parallel via `rdi_par::par_map`, which
//! splices results back in input order. Handlers never touch shared
//! state: sends go to a per-group outbox and the event log is assembled
//! by the runtime from the returned fragments, so any `RDI_THREADS`
//! value replays bitwise.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{mpsc, Mutex, PoisonError};

use rdi_par::{par_map, stream_seed, Threads};

use crate::log::{EventLog, EventRecord};

/// Maximum characters of a message's `Debug` rendering kept in the
/// event log.
const SUMMARY_MAX: usize = 96;

/// Anything an actor can receive: `Debug` (for the event log), `Send`
/// (cohorts deliver on `rdi-par` threads), `'static` (type-erased in
/// flight). Blanket-implemented — never implement it by hand.
pub trait Message: fmt::Debug + Send + 'static {}

impl<T: fmt::Debug + Send + 'static> Message for T {}

/// A deterministic actor: single-threaded mutable state plus a typed
/// message handler. The runtime guarantees `handle` is never invoked
/// concurrently for the same actor, and that the sequence of messages
/// it sees is a pure function of the scheduler seed and the injection
/// stream.
pub trait Actor: Send + 'static {
    /// The message type this actor consumes.
    type Msg: Message;

    /// Consume one message. Sends issued through `ctx` are buffered and
    /// enqueued by the runtime after the whole cohort completes, in
    /// deterministic order.
    fn handle(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_>);
}

/// Identity of a spawned actor: its spawn index, totally ordered so
/// cohort groups have a canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// The spawn index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors surfaced by mailbox operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorError {
    /// The runtime owning the receiving mailbox was dropped.
    MailboxClosed,
}

impl fmt::Display for ActorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorError::MailboxClosed => f.write_str("mailbox closed: runtime dropped"),
        }
    }
}

impl std::error::Error for ActorError {}

/// A typed external handle to one actor's mailbox (std `mpsc` sender).
///
/// Cloneable and `Send`: any thread may inject messages. Injected
/// messages are drained into the virtual-time queue at the start of the
/// next [`Runtime::step`], in actor-id order then send order — so a
/// deterministic injection order yields a deterministic schedule.
#[derive(Debug)]
pub struct Addr<M: Message> {
    id: ActorId,
    tx: mpsc::Sender<M>,
}

impl<M: Message> Addr<M> {
    /// The target actor.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Inject one message from outside the runtime.
    pub fn send(&self, msg: M) -> Result<(), ActorError> {
        self.tx.send(msg).map_err(|_| ActorError::MailboxClosed)
    }
}

impl<M: Message> Clone for Addr<M> {
    fn clone(&self) -> Self {
        Addr {
            id: self.id,
            tx: self.tx.clone(),
        }
    }
}

/// Handler-side context: who am I, what time is it, and a buffered
/// outbox for deterministic sends.
pub struct Ctx<'a> {
    self_id: ActorId,
    now: u64,
    outbox: &'a mut Vec<(ActorId, Box<dyn AnyMessage>)>,
}

impl Ctx<'_> {
    /// The actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Current virtual time (the delivery time of the message being
    /// handled).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Send `msg` to `to`. The send is buffered and enqueued by the
    /// runtime after the cohort completes; delivery lands at a seeded
    /// future virtual time. Sending to an id whose actor expects a
    /// different message type is not a panic: the delivery is dropped
    /// and recorded as an error in the event log.
    pub fn send<M: Message>(&mut self, to: ActorId, msg: M) {
        self.outbox.push((to, Box::new(msg)));
    }
}

/// Object-safe view of a message: downcastable payload plus a `Debug`
/// summary for the event log.
trait AnyMessage: Send {
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    fn summary(&self) -> String;
}

impl<M: Message> AnyMessage for M {
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn summary(&self) -> String {
        let full = format!("{self:?}");
        if full.len() <= SUMMARY_MAX {
            return full;
        }
        let mut cut = SUMMARY_MAX;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &full[..cut])
    }
}

/// Object-safe view of an actor cell.
trait DynActor: Send {
    /// Deliver a type-erased message; `Err` is a human-readable
    /// description of a payload type mismatch.
    fn deliver(&mut self, msg: Box<dyn Any>, ctx: &mut Ctx<'_>) -> Result<(), String>;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The typed cell a spawned actor lives in.
struct Cell<A: Actor>(A);

impl<A: Actor> DynActor for Cell<A> {
    fn deliver(&mut self, msg: Box<dyn Any>, ctx: &mut Ctx<'_>) -> Result<(), String> {
        match msg.downcast::<A::Msg>() {
            Ok(m) => {
                self.0.handle(*m, ctx);
                Ok(())
            }
            Err(_) => Err(format!(
                "payload is not the {} this actor consumes",
                std::any::type_name::<A::Msg>()
            )),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Runtime-side view of one typed mailbox.
trait Mailbox: Send {
    fn drain(&mut self) -> Vec<Box<dyn AnyMessage>>;
}

struct TypedMailbox<M: Message>(mpsc::Receiver<M>);

impl<M: Message> Mailbox for TypedMailbox<M> {
    fn drain(&mut self) -> Vec<Box<dyn AnyMessage>> {
        let mut out: Vec<Box<dyn AnyMessage>> = Vec::new();
        while let Ok(m) = self.0.try_recv() {
            out.push(Box::new(m));
        }
        out
    }
}

/// An in-flight message.
struct Envelope {
    seq: u64,
    from: Option<ActorId>,
    to: ActorId,
    msg: Box<dyn AnyMessage>,
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Master scheduler seed: message `seq` gets latency jitter
    /// `stream_seed(seed, seq) % latency_spread`.
    pub seed: u64,
    /// Width of the jitter window in virtual ticks (clamped to ≥ 1; a
    /// spread of 1 means no jitter — strict FIFO by sequence number).
    pub latency_spread: u64,
    /// Thread configuration for cohort delivery.
    pub threads: Threads,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            latency_spread: 4,
            threads: Threads::auto(),
        }
    }
}

/// What one job (all of a cohort's messages for one target) produced.
struct JobOut {
    id: ActorId,
    actor: Option<Box<dyn DynActor>>,
    delivered: Vec<Delivery>,
    outbox: Vec<(ActorId, Box<dyn AnyMessage>)>,
}

/// Log fragment for one delivered message.
struct Delivery {
    seq: u64,
    from: Option<ActorId>,
    summary: String,
}

/// The deterministic actor runtime: a registry of actors, their
/// mailboxes, the pending virtual-time queue, and the event log.
///
/// See the [module docs](self) for the scheduling contract. Typical
/// use: [`spawn`](Runtime::spawn) actors, inject work through the
/// returned [`Addr`]s, [`run_until_idle`](Runtime::run_until_idle),
/// then inspect state via [`actor`](Runtime::actor) or reclaim it via
/// [`take`](Runtime::take).
pub struct Runtime {
    config: RuntimeConfig,
    actors: Vec<Option<Box<dyn DynActor>>>,
    names: Vec<String>,
    mailboxes: Vec<Box<dyn Mailbox>>,
    queue: BTreeMap<(u64, u64), Envelope>,
    /// Per-target floor on delivery time: a message to `t` never lands
    /// before one enqueued to `t` earlier, so per-actor delivery is
    /// FIFO in enqueue order and jitter only reorders *across* actors.
    target_floor: BTreeMap<ActorId, u64>,
    next_seq: u64,
    now: u64,
    steps: u64,
    delivery_errors: u64,
    log: EventLog,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("config", &self.config)
            .field("actors", &self.names)
            .field("queued", &self.queue.len())
            .field("now", &self.now)
            .field("steps", &self.steps)
            .finish()
    }
}

impl Runtime {
    /// An empty runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            config,
            actors: Vec::new(),
            names: Vec::new(),
            mailboxes: Vec::new(),
            queue: BTreeMap::new(),
            target_floor: BTreeMap::new(),
            next_seq: 0,
            now: 0,
            steps: 0,
            delivery_errors: 0,
            log: EventLog::default(),
        }
    }

    /// Register an actor under `name` (names are for the event log;
    /// they need not be unique). Returns the typed external handle.
    pub fn spawn<A: Actor>(&mut self, name: &str, actor: A) -> Addr<A::Msg> {
        let id = ActorId(self.actors.len());
        let (tx, rx) = mpsc::channel();
        self.actors.push(Some(Box::new(Cell(actor))));
        self.names.push(name.to_string());
        self.mailboxes.push(Box::new(TypedMailbox(rx)));
        Addr { id, tx }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of spawned actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Spawn name of `id`.
    pub fn name(&self, id: ActorId) -> Option<&str> {
        self.names.get(id.0).map(String::as_str)
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduler steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Envelopes waiting in the virtual-time queue (external mailboxes
    /// not yet drained are not counted).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Deliveries dropped because the payload type did not match the
    /// target actor (each is also recorded in the event log).
    pub fn delivery_errors(&self) -> u64 {
        self.delivery_errors
    }

    /// The append-only delivery log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Borrow a spawned actor's state (None: unknown id or wrong type).
    pub fn actor<A: Actor>(&self, id: ActorId) -> Option<&A> {
        self.actors
            .get(id.0)?
            .as_ref()?
            .as_any()
            .downcast_ref::<Cell<A>>()
            .map(|c| &c.0)
    }

    /// Remove a spawned actor and reclaim its state (None: unknown id
    /// or wrong type; a wrong-type request leaves the actor in place).
    /// Messages later delivered to the vacated id are recorded as
    /// delivery errors, not panics.
    pub fn take<A: Actor>(&mut self, id: ActorId) -> Option<A> {
        let slot = self.actors.get_mut(id.0)?;
        if !slot.as_ref()?.as_any().is::<Cell<A>>() {
            return None;
        }
        let boxed = slot.take()?;
        boxed.into_any().downcast::<Cell<A>>().ok().map(|c| c.0)
    }

    /// Enqueue one envelope at a seeded future virtual time.
    fn enqueue(&mut self, from: Option<ActorId>, to: ActorId, msg: Box<dyn AnyMessage>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let spread = self.config.latency_spread.max(1);
        let jitter = stream_seed(self.config.seed, seq) % spread;
        let floor = self.target_floor.get(&to).copied().unwrap_or(0);
        let vtime = (self.now + 1 + jitter).max(floor);
        self.target_floor.insert(to, vtime);
        self.queue
            .insert((vtime, seq), Envelope { seq, from, to, msg });
    }

    /// Move externally injected messages into the virtual-time queue,
    /// in actor-id order then per-mailbox send order.
    fn drain_mailboxes(&mut self) {
        for i in 0..self.mailboxes.len() {
            for msg in self.mailboxes[i].drain() {
                // External sends target the mailbox owner; the sender is
                // outside the runtime.
                let to = ActorId(self.queue_owner(i));
                self.enqueue(None, to, msg);
            }
        }
    }

    /// Mailbox `i` belongs to actor `i` (parallel vectors).
    fn queue_owner(&self, i: usize) -> usize {
        i
    }

    /// Deliver the cohort at the minimal pending virtual time. Returns
    /// the number of messages delivered (0 = idle: nothing pending in
    /// mailboxes or queue).
    pub fn step(&mut self) -> usize {
        self.drain_mailboxes();
        let vtime = match self.queue.keys().next() {
            Some(&(t, _)) => t,
            None => return 0,
        };
        self.now = vtime;
        self.steps += 1;
        rdi_obs::counter("actor.scheduler_steps").inc();
        rdi_obs::gauge("actor.mailbox_depth").set_max(self.queue.len() as f64);

        // Pop the cohort: every envelope at `vtime`, in sequence order.
        let mut cohort: Vec<Envelope> = Vec::new();
        loop {
            match self.queue.first_key_value() {
                Some((&(t, _), _)) if t == vtime => {
                    if let Some((_, env)) = self.queue.pop_first() {
                        cohort.push(env);
                    }
                }
                _ => break,
            }
        }

        // Group by target actor; BTreeMap gives actor-id order, pops
        // above give sequence order within each group.
        let mut groups: BTreeMap<ActorId, Vec<Envelope>> = BTreeMap::new();
        for env in cohort {
            groups.entry(env.to).or_default().push(env);
        }

        // One job per target: the actor is taken out of its slot so the
        // handler has exclusive mutable access on whatever thread the
        // job lands on.
        struct Job {
            id: ActorId,
            actor: Option<Box<dyn DynActor>>,
            msgs: Vec<Envelope>,
        }
        let jobs: Vec<Mutex<Option<Job>>> = groups
            .into_iter()
            .map(|(id, msgs)| {
                let actor = self.actors.get_mut(id.0).and_then(Option::take);
                Mutex::new(Some(Job { id, actor, msgs }))
            })
            .collect();

        let outs: Vec<Option<JobOut>> = par_map(self.config.threads.min_len(2), &jobs, |cell| {
            let Job {
                id,
                mut actor,
                msgs,
            } = lock_cell(cell).take()?;
            let mut outbox: Vec<(ActorId, Box<dyn AnyMessage>)> = Vec::new();
            let mut delivered: Vec<Delivery> = Vec::with_capacity(msgs.len());
            for env in msgs {
                let mut summary = env.msg.summary();
                let outcome = match actor.as_mut() {
                    Some(a) => {
                        let mut ctx = Ctx {
                            self_id: id,
                            now: vtime,
                            outbox: &mut outbox,
                        };
                        a.deliver(env.msg.into_any(), &mut ctx)
                    }
                    None => Err(String::from("target actor was taken")),
                };
                if let Err(e) = outcome {
                    summary.push_str(" !error: ");
                    summary.push_str(&e);
                }
                delivered.push(Delivery {
                    seq: env.seq,
                    from: env.from,
                    summary,
                });
            }
            Some(JobOut {
                id,
                actor,
                delivered,
                outbox,
            })
        });

        // Splice: par_map returns jobs in input (actor-id) order, so
        // log appends and outbox enqueues below are deterministic.
        let mut delivered_total = 0usize;
        for out in outs.into_iter().flatten() {
            let JobOut {
                id,
                actor,
                delivered,
                outbox,
            } = out;
            if let Some(slot) = self.actors.get_mut(id.0) {
                *slot = actor;
            }
            let name = self.names.get(id.0).cloned().unwrap_or_default();
            for d in delivered {
                delivered_total += 1;
                if d.summary.contains(" !error: ") {
                    self.delivery_errors += 1;
                    rdi_obs::counter("actor.delivery_errors").inc();
                }
                self.log.push(EventRecord {
                    step: self.steps,
                    vtime,
                    seq: d.seq,
                    from: d.from,
                    to: id,
                    actor: name.clone(),
                    summary: d.summary,
                });
            }
            for (to, msg) in outbox {
                self.enqueue(Some(id), to, msg);
            }
        }
        rdi_obs::counter("actor.messages_delivered").add(delivered_total as u64);
        delivered_total
    }

    /// Step until both the queue and every mailbox are empty. Returns
    /// the total number of messages delivered.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut total = 0u64;
        loop {
            let n = self.step();
            if n == 0 {
                return total;
            }
            total += n as u64;
        }
    }
}

/// Poison-recovering lock: a panicking handler on another job must not
/// cascade into a second panic here.
fn lock_cell<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts greetings; replies `Pong(count)` to the given id.
    struct Ping {
        count: u64,
    }

    #[derive(Debug)]
    struct Greet {
        reply_to: ActorId,
    }

    impl Actor for Ping {
        type Msg = Greet;
        fn handle(&mut self, msg: Greet, ctx: &mut Ctx<'_>) {
            self.count += 1;
            ctx.send(msg.reply_to, Pong(self.count));
        }
    }

    /// Collects pong payloads.
    struct Sink {
        seen: Vec<u64>,
    }

    #[derive(Debug)]
    struct Pong(u64);

    impl Actor for Sink {
        type Msg = Pong;
        fn handle(&mut self, msg: Pong, _ctx: &mut Ctx<'_>) {
            self.seen.push(msg.0);
        }
    }

    fn ping_pong(seed: u64, threads: Threads, n: u64) -> (String, Vec<u64>) {
        let mut rt = Runtime::new(RuntimeConfig {
            seed,
            latency_spread: 4,
            threads,
        });
        let sink = rt.spawn("sink", Sink { seen: Vec::new() });
        let ping = rt.spawn("ping", Ping { count: 0 });
        for _ in 0..n {
            ping.send(Greet {
                reply_to: sink.id(),
            })
            .unwrap();
        }
        rt.run_until_idle();
        let seen = rt.take::<Sink>(sink.id()).unwrap().seen;
        (rt.event_log().render(), seen)
    }

    #[test]
    fn delivers_and_replies() {
        let (log, seen) = ping_pong(7, Threads::fixed(2), 5);
        assert_eq!(seen.len(), 5);
        // Pings are handled in sequence order, so counts arrive sorted.
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(log.lines().count(), 10, "5 greets + 5 pongs:\n{log}");
        assert!(log.contains("ext -> ping"), "{log}");
        assert!(log.contains("-> sink"), "{log}");
    }

    #[test]
    fn same_seed_replays_bitwise_for_any_thread_count() {
        let baseline = ping_pong(42, Threads::fixed(1), 8);
        assert_eq!(baseline, ping_pong(42, Threads::fixed(2), 8));
        assert_eq!(baseline, ping_pong(42, Threads::fixed(8), 8));
    }

    #[test]
    fn different_seeds_still_preserve_per_actor_order() {
        // Jitter reorders deliveries *between* actors, never within
        // one: per-target messages stay in sequence order.
        for seed in [0, 1, 99] {
            let (_, seen) = ping_pong(seed, Threads::fixed(4), 6);
            assert_eq!(seen, vec![1, 2, 3, 4, 5, 6], "seed {seed}");
        }
    }

    #[test]
    fn type_mismatch_is_logged_not_panicked() {
        struct Confused;
        impl Actor for Confused {
            type Msg = Pong;
            fn handle(&mut self, _msg: Pong, ctx: &mut Ctx<'_>) {
                // sends a Greet to itself — but it only consumes Pong
                let me = ctx.self_id();
                ctx.send(me, Greet { reply_to: me });
            }
        }
        let mut rt = Runtime::new(RuntimeConfig::default());
        let a = rt.spawn("confused", Confused);
        a.send(Pong(1)).unwrap();
        rt.run_until_idle();
        assert_eq!(rt.delivery_errors(), 1);
        assert!(rt.event_log().render().contains("!error:"));
    }

    #[test]
    fn take_is_type_checked_and_send_fails_after_drop() {
        let mut rt = Runtime::new(RuntimeConfig::default());
        let sink = rt.spawn("sink", Sink { seen: Vec::new() });
        assert!(rt.take::<Ping>(sink.id()).is_none(), "wrong type");
        assert!(rt.actor::<Sink>(sink.id()).is_some(), "still in place");
        assert!(rt.take::<Sink>(sink.id()).is_some());
        assert!(rt.actor::<Sink>(sink.id()).is_none());
        drop(rt);
        assert_eq!(sink.send(Pong(1)), Err(ActorError::MailboxClosed));
    }

    #[test]
    fn virtual_time_is_monotone_and_steps_counted() {
        let mut rt = Runtime::new(RuntimeConfig {
            seed: 3,
            latency_spread: 8,
            threads: Threads::serial(),
        });
        let sink = rt.spawn("sink", Sink { seen: Vec::new() });
        for i in 0..10 {
            sink.send(Pong(i)).unwrap();
        }
        rt.run_until_idle();
        let mut last = 0;
        for r in rt.event_log().records() {
            assert!(r.vtime >= last);
            last = r.vtime;
        }
        assert!(rt.steps() >= 1);
        assert_eq!(rt.event_log().len(), 10);
    }
}
