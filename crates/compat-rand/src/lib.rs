//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace wires
//! this crate in under the dependency name `rand` (see the workspace
//! `Cargo.toml` and CONTRIBUTING.md, "Offline builds"). It implements the
//! slice of the `rand` 0.8 surface the toolkit actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//!   splitmix64.
//!
//! The generated streams differ from upstream `rand`'s `StdRng` (which is
//! ChaCha12); all in-repo consumers treat the RNG as an opaque seeded
//! source and assert statistical rather than stream-exact properties, so
//! the substitution is observationally equivalent for this workspace.

#![warn(missing_docs)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly "at standard" via [`Rng::gen`] — the subset
/// of `rand`'s `Standard` distribution the workspace uses.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                // widening multiply: bias ≤ 2^-64, far below anything the
                // statistical tests in this workspace can resolve
                let hi = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let width = (e as i128 - s as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <f64 as StandardSample>::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let u = <f64 as StandardSample>::sample(rng) as $t;
                s + u * (e - s)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0,1)`, `bool` fair coin, ints uniform).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Trait for seedable generators; the workspace only uses
/// [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++
    /// (Blackman & Vigna), state expanded from the seed via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_balanced() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_int_uniform() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 / 10.0;
            assert!((c as f64 - expect).abs() < 0.06 * expect, "bucket {i}: {c}");
        }
        // bounds respected, inclusive form hits both ends
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(3..=4u64);
            saw_lo |= v == 3;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn works_through_mut_and_unsized_receivers() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_generic(&mut rng);
        let _: f64 = rng.gen();
    }
}
