//! Property-based tests of the table substrate's core laws.

use proptest::prelude::*;
use rdi_table::{
    hash_join, read_csv_str, write_csv_string, DataType, Field, Predicate, Schema, Table, Value,
};

/// Arbitrary cell for a given column type.
fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => prop_oneof![
            3 => (-1000i64..1000).prop_map(Value::Int),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Float => prop_oneof![
            3 => (-1000.0f64..1000.0).prop_map(Value::Float),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Str => prop_oneof![
            3 => "[a-z]{0,8}".prop_map(Value::Str),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null)
        ]
        .boxed(),
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Str),
        Field::new("b", DataType::Bool),
    ])
}

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    let row = (
        arb_value(DataType::Int),
        arb_value(DataType::Float),
        arb_value(DataType::Str),
        arb_value(DataType::Bool),
    );
    prop::collection::vec(row, 0..max_rows).prop_map(|rows| {
        let mut t = Table::new(schema());
        for (i, f, s, b) in rows {
            t.push_row(vec![i, f, s, b]).unwrap();
        }
        t
    })
}

proptest! {
    /// CSV write→read is the identity (strings here avoid leading/trailing
    /// whitespace, which plain CSV cannot represent distinctly).
    #[test]
    fn csv_roundtrip(t in arb_table(40)) {
        let text = write_csv_string(&t);
        let back = read_csv_str(&text).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        // compare cell-by-cell: types may be re-inferred (e.g. an all-null
        // float column reads back as Str), but values must agree.
        for i in 0..t.num_rows() {
            for j in 0..t.num_columns() {
                let a = t.column_at(j).value(i);
                let b = back.column_at(j).value(i);
                match (&a, &b) {
                    (Value::Null, Value::Null) => {}
                    _ => prop_assert_eq!(a.to_string(), b.to_string()),
                }
            }
        }
    }

    /// filter(p) ∪ filter(¬p) partitions the rows.
    #[test]
    fn filter_partitions(t in arb_table(60), threshold in -1000i64..1000) {
        let p = Predicate::ge("i", Value::Int(threshold));
        let not_p = Predicate::Not(Box::new(p.clone()));
        let yes = t.filter(&p);
        let no = t.filter(&not_p);
        // Not is plain boolean negation (two-valued logic), so null cells
        // — which never satisfy a comparison — fall into the ¬p branch.
        prop_assert_eq!(yes.num_rows() + no.num_rows(), t.num_rows());
        let nulls = Predicate::IsNull("i".into()).count(&t);
        prop_assert!(no.num_rows() >= nulls);
    }

    /// take() preserves row content.
    #[test]
    fn take_preserves_rows(t in arb_table(30), seed in any::<u64>()) {
        if t.is_empty() { return Ok(()); }
        let idx: Vec<usize> = (0..10).map(|k| ((seed as usize).wrapping_add(k * 7)) % t.num_rows()).collect();
        let s = t.take(&idx);
        prop_assert_eq!(s.num_rows(), idx.len());
        for (out_i, &src_i) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(out_i).unwrap(), t.row(src_i).unwrap());
        }
    }

    /// |A ⋈ B| = Σ_k freq_A(k)·freq_B(k), and join is size-symmetric.
    #[test]
    fn join_size_law(keys_a in prop::collection::vec(0i64..10, 0..30),
                     keys_b in prop::collection::vec(0i64..10, 0..30)) {
        let mk = |keys: &[i64]| {
            let mut t = Table::new(Schema::new(vec![Field::new("k", DataType::Int)]));
            for &k in keys {
                t.push_row(vec![Value::Int(k)]).unwrap();
            }
            t
        };
        let a = mk(&keys_a);
        let b = mk(&keys_b);
        let ab = hash_join(&a, &b, "k", "k").unwrap();
        let ba = hash_join(&b, &a, "k", "k").unwrap();
        prop_assert_eq!(ab.num_rows(), ba.num_rows());
        let expected: usize = (0..10)
            .map(|k| {
                keys_a.iter().filter(|&&x| x == k).count()
                    * keys_b.iter().filter(|&&x| x == k).count()
            })
            .sum();
        prop_assert_eq!(ab.num_rows(), expected);
    }

    /// concat length and append associativity.
    #[test]
    fn concat_lengths(a in arb_table(20), b in arb_table(20), c in arb_table(20)) {
        let abc = Table::concat(&[&a, &b, &c]).unwrap();
        prop_assert_eq!(abc.num_rows(), a.num_rows() + b.num_rows() + c.num_rows());
        let mut ab = a.clone();
        ab.append(&b).unwrap();
        let mut ab_c = ab.clone();
        ab_c.append(&c).unwrap();
        prop_assert_eq!(abc, ab_c);
    }

    /// select then select commutes with direct selection.
    #[test]
    fn select_composes(t in arb_table(20)) {
        let wide = t.select(&["i", "s", "b"]).unwrap();
        let narrow = wide.select(&["b", "i"]).unwrap();
        let direct = t.select(&["b", "i"]).unwrap();
        prop_assert_eq!(narrow, direct);
    }
}
