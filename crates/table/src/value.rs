//! Dynamically-typed cell values.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single cell value in a [`crate::Table`].
///
/// `Value` is the dynamically-typed interchange type used at the API
/// boundary (row construction, predicates, group keys). Storage inside a
/// table is typed per column (see [`crate::Column`]), so `Value` never
/// appears in hot inner loops unless an algorithm explicitly asks for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value (SQL `NULL`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalized to [`Value::Null`] on insertion.
    Float(f64),
    /// UTF-8 string (also used for categorical codes).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for building a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one (`Int`, `Float`, `Bool`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total order over values used for sorting and range predicates.
    ///
    /// `Null` sorts first; numeric types compare by numeric value
    /// (`Int(2) == Float(2.0)`); distinct type families order as
    /// `Null < numeric/bool < Str`. Float `NaN` (only reachable if a caller
    /// constructs one directly) sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) | Bool(_) => 1,
                Str(_) => 2,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => match (a.as_f64(), b.as_f64()) {
                (Some(fa), Some(fb)) => fa.total_cmp(&fb),
                // rank 1 ⇒ both numeric, so this arm is unreachable;
                // fall back to rank order rather than panic.
                _ => rank(a).cmp(&rank(b)),
            },
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash numerics through their f64 bit pattern so that
            // Int(2), Float(2.0) and Bool(..) hash consistently with `eq`.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Bool(b) => (if *b { 1.0f64 } else { 0.0f64 }).to_bits().hash(state),
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(h(&Value::Bool(false)), h(&Value::Int(0)));
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::str("a"), Value::Int(1), Value::Null];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[2], Value::str("a"));
    }

    #[test]
    fn nan_becomes_null() {
        let v: Value = f64::NAN.into();
        assert!(v.is_null());
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
    }

    #[test]
    fn display_roundtrip_simple() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "");
    }
}
