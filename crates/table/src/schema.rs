//! Schemas: typed, role-annotated field descriptions.
//!
//! Responsible data integration needs to know not just the *type* of each
//! attribute but its *role* in downstream analysis (tutorial §2.3): which
//! attributes are **sensitive** (demographic group identifiers), which are
//! **targets** (labels), and which are plain observation **features**.

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::Result;

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string / categorical code.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Short lowercase name (`"int"`, `"float"`, `"str"`, `"bool"`).
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        }
    }
}

/// Analytic role of a field (tutorial §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Role {
    /// Ordinary observation attribute (the default).
    #[default]
    Feature,
    /// Sensitive / protected attribute identifying demographic groups.
    Sensitive,
    /// Target (label) attribute for prediction tasks.
    Target,
    /// Row identifier; excluded from statistics.
    Id,
}

/// A named, typed, role-annotated column description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a [`Schema`].
    pub name: String,
    /// Physical type.
    pub dtype: DataType,
    /// Analytic role.
    pub role: Role,
}

impl Field {
    /// Create a feature field with the given name and type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            role: Role::Feature,
        }
    }

    /// Builder: set the role.
    pub fn with_role(mut self, role: Role) -> Self {
        self.role = role;
        self
    }
}

/// An ordered collection of [`Field`]s with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name — schemas are almost always
    /// constructed from literals, so this is a programming error, not a
    /// runtime condition.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate field name `{}`", f.name);
            }
        }
        Schema { fields }
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with this name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// The field with this name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Names of all fields with the given role.
    pub fn names_with_role(&self, role: Role) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.role == role)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of sensitive attributes.
    pub fn sensitive(&self) -> Vec<&str> {
        self.names_with_role(Role::Sensitive)
    }

    /// Names of target attributes.
    pub fn targets(&self) -> Vec<&str> {
        self.names_with_role(Role::Target)
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.field(n)?.clone());
        }
        Ok(Schema::new(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int).with_role(Role::Id),
            Field::new("age", DataType::Int),
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("sex", DataType::Str).with_role(Role::Sensitive),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = demo();
        assert_eq!(s.index_of("race").unwrap(), 2);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn role_queries() {
        let s = demo();
        assert_eq!(s.sensitive(), vec!["race", "sex"]);
        assert_eq!(s.targets(), vec!["y"]);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
    }

    #[test]
    fn project_keeps_order() {
        let s = demo().project(&["y", "age"]).unwrap();
        assert_eq!(s.fields()[0].name, "y");
        assert_eq!(s.fields()[1].name, "age");
    }
}
