//! Error type for the table substrate.

use std::fmt;

/// Errors produced by table operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A value's type did not match the column type.
    TypeMismatch {
        /// Column the value was destined for.
        column: String,
        /// Expected type name.
        expected: &'static str,
        /// What was actually provided (debug rendering).
        got: String,
    },
    /// A row had the wrong number of values.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values provided.
        got: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of rows.
        len: usize,
    },
    /// Two tables had incompatible schemas for the requested operation.
    SchemaMismatch(String),
    /// CSV parsing failed.
    Csv(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TableError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, got {got}"
            ),
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            TableError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds (table has {len} rows)")
            }
            TableError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            TableError::Csv(msg) => write!(f, "csv error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TableError::UnknownColumn("x".into()).to_string(),
            "unknown column `x`"
        );
        assert!(TableError::ArityMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3"));
    }
}
