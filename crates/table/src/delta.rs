//! Row-level table deltas for churning lakes.
//!
//! A live lake is not a set of frozen tables: sources are appended to,
//! corrected, and dropped continuously. [`TableDelta`] is the typed
//! vocabulary for those mutations — the unit of work that incremental
//! sketch maintenance (`rdi-serve`) is charged against, so "warm-path
//! work is O(delta)" has a concrete denominator: [`TableDelta::rows`].

use crate::error::TableError;
use crate::table::Table;
use crate::Result;

/// One mutation of a registered table.
///
/// Deltas are *data*, not closures: a delta stream can be generated,
/// logged, replayed, and applied to two independent copies of a lake
/// with bitwise-identical results (the property the E20 harness and
/// the churn determinism proptest check).
#[derive(Debug, Clone, PartialEq)]
pub enum TableDelta {
    /// Append every row of the payload table (schemas must match).
    Append(Table),
    /// Delete the rows at these indices (positions in the table as it
    /// is *before* this delta; duplicates are ignored).
    Delete(Vec<usize>),
    /// Drop the table entirely.
    Drop,
}

impl TableDelta {
    /// Stable label for metrics and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TableDelta::Append(_) => "append",
            TableDelta::Delete(_) => "delete",
            TableDelta::Drop => "drop",
        }
    }

    /// Number of rows this delta touches — the denominator of every
    /// "work is O(delta)" claim. `Drop` reports 0 (its cost is index
    /// bookkeeping, not per-row sketch work).
    pub fn rows(&self) -> usize {
        match self {
            TableDelta::Append(t) => t.num_rows(),
            TableDelta::Delete(idx) => idx.len(),
            TableDelta::Drop => 0,
        }
    }
}

impl Table {
    /// Remove the rows at `indices` (deduplicated), returning the
    /// removed rows as a table in ascending index order. Out-of-bounds
    /// indices are a [`TableError::RowOutOfBounds`] and leave the
    /// table unchanged.
    pub fn delete_rows(&mut self, indices: &[usize]) -> Result<Table> {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&bad) = sorted.iter().find(|&&i| i >= self.num_rows()) {
            return Err(TableError::RowOutOfBounds {
                index: bad,
                len: self.num_rows(),
            });
        }
        let removed = self.take(&sorted);
        let mut doomed = sorted.iter().copied().peekable();
        let kept: Vec<usize> = (0..self.num_rows())
            .filter(|&i| {
                if doomed.peek() == Some(&i) {
                    doomed.next();
                    false
                } else {
                    true
                }
            })
            .collect();
        *self = self.take(&kept);
        Ok(removed)
    }

    /// Apply a delta in place. `Drop` empties the table to zero rows
    /// (the caller owning the lake removes the entry itself; at the
    /// table level a drop is "all rows deleted"). Returns the number
    /// of rows touched.
    pub fn apply_delta(&mut self, delta: &TableDelta) -> Result<usize> {
        match delta {
            TableDelta::Append(rows) => {
                self.append(rows)?;
                Ok(rows.num_rows())
            }
            TableDelta::Delete(indices) => {
                let removed = self.delete_rows(indices)?;
                Ok(removed.num_rows())
            }
            TableDelta::Drop => {
                let n = self.num_rows();
                *self = Table::new(self.schema().clone());
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::value::Value;

    fn table(vals: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut t = Table::new(schema);
        for &v in vals {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn delete_rows_removes_and_returns() {
        let mut t = table(&[10, 20, 30, 40]);
        let removed = t.delete_rows(&[3, 1]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).unwrap(), vec![Value::Int(10)]);
        assert_eq!(t.row(1).unwrap(), vec![Value::Int(30)]);
        // removed rows come back in ascending index order
        assert_eq!(removed.row(0).unwrap(), vec![Value::Int(20)]);
        assert_eq!(removed.row(1).unwrap(), vec![Value::Int(40)]);
    }

    #[test]
    fn delete_rows_dedups_and_bounds_checks() {
        let mut t = table(&[1, 2, 3]);
        let removed = t.delete_rows(&[0, 0]).unwrap();
        assert_eq!(removed.num_rows(), 1);
        assert_eq!(t.num_rows(), 2);
        // out of bounds leaves the table unchanged
        assert!(t.delete_rows(&[5]).is_err());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn apply_delta_covers_all_variants() {
        let mut t = table(&[1, 2]);
        assert_eq!(
            t.apply_delta(&TableDelta::Append(table(&[3, 4, 5])))
                .unwrap(),
            3
        );
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.apply_delta(&TableDelta::Delete(vec![0, 4])).unwrap(), 2);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.apply_delta(&TableDelta::Drop).unwrap(), 3);
        assert!(t.is_empty());
        // schema survives a drop
        assert_eq!(t.schema().fields()[0].name, "x");
    }

    #[test]
    fn delta_rows_and_kind_labels() {
        assert_eq!(TableDelta::Append(table(&[1])).rows(), 1);
        assert_eq!(TableDelta::Delete(vec![0, 1]).rows(), 2);
        assert_eq!(TableDelta::Drop.rows(), 0);
        assert_eq!(TableDelta::Append(table(&[])).kind(), "append");
        assert_eq!(TableDelta::Delete(vec![]).kind(), "delete");
        assert_eq!(TableDelta::Drop.kind(), "drop");
    }
}
