//! The [`Table`]: a schema plus typed columns.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::TableError;
use crate::predicate::Predicate;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use crate::Result;

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Create an empty table with reserved row capacity.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, cap))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Build a table directly from columns (must match the schema's types
    /// and all have equal length).
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        if schema.len() != columns.len() {
            return Err(TableError::ArityMismatch {
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, Column::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.dtype() {
                return Err(TableError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype.name(),
                    got: c.dtype().name().to_string(),
                });
            }
            if c.len() != num_rows {
                return Err(TableError::SchemaMismatch(format!(
                    "column `{}` has {} rows, expected {}",
                    f.name,
                    c.len(),
                    num_rows
                )));
            }
        }
        Ok(Table {
            schema,
            columns,
            num_rows,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The column at the given position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Append one row of values (one per column, in schema order).
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        // Validate all values first so a failed push leaves the table
        // unchanged (columns of equal length).
        for (v, f) in values.iter().zip(self.schema.fields()) {
            let ok = matches!(
                (f.dtype, v),
                (_, Value::Null)
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_) | Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !ok {
                return Err(TableError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype.name(),
                    got: format!("{v:?}"),
                });
            }
        }
        for ((col, v), f) in self
            .columns
            .iter_mut()
            .zip(values)
            .zip(self.schema.fields())
        {
            // rdi-lint: allow(R5): the type-check loop above already rejected mismatched values
            col.push(v, &f.name).expect("validated above");
        }
        self.num_rows += 1;
        Ok(())
    }

    /// The row at index `i` as dynamic values.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.num_rows {
            return Err(TableError::RowOutOfBounds {
                index: i,
                len: self.num_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// The cell at row `i`, column `name`.
    pub fn value(&self, i: usize, name: &str) -> Result<Value> {
        if i >= self.num_rows {
            return Err(TableError::RowOutOfBounds {
                index: i,
                len: self.num_rows,
            });
        }
        Ok(self.column(name)?.value(i))
    }

    /// Overwrite the cell at row `i`, column `name`.
    pub fn set_value(&mut self, i: usize, name: &str, value: Value) -> Result<()> {
        let idx = self.schema.index_of(name)?;
        let fname = self.schema.fields()[idx].name.clone();
        self.columns[idx].set(i, value, &fname)
    }

    /// Row indices for which the predicate holds.
    pub fn matching_indices(&self, pred: &Predicate) -> Vec<usize> {
        (0..self.num_rows).filter(|&i| pred.eval(self, i)).collect()
    }

    /// A new table containing the rows matching the predicate.
    pub fn filter(&self, pred: &Predicate) -> Table {
        self.take(&self.matching_indices(pred))
    }

    /// A new table containing exactly the rows at `indices` (in order,
    /// duplicates allowed — this is a gather, so it doubles as sampling
    /// with replacement).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            num_rows: indices.len(),
        }
    }

    /// A new table with only the named columns.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for n in names {
            columns.push(self.column(n)?.clone());
        }
        Ok(Table {
            schema,
            columns,
            num_rows: self.num_rows,
        })
    }

    /// Append all rows of `other` (schemas must be identical).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(TableError::SchemaMismatch(
                "append requires identical schemas".to_string(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b)?;
        }
        self.num_rows += other.num_rows;
        Ok(())
    }

    /// Vertically concatenate tables with identical schemas.
    pub fn concat(tables: &[&Table]) -> Result<Table> {
        let first = tables
            .first()
            .ok_or_else(|| TableError::SchemaMismatch("concat of zero tables".into()))?;
        let mut out = Table::new(first.schema.clone());
        for t in tables {
            out.append(t)?;
        }
        Ok(out)
    }

    /// Fraction of cells that are null, per column.
    pub fn null_fractions(&self) -> Vec<(String, f64)> {
        self.schema
            .fields()
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| {
                let frac = if self.num_rows == 0 {
                    0.0
                } else {
                    c.null_count() as f64 / self.num_rows as f64
                };
                (f.name.clone(), frac)
            })
            .collect()
    }

    /// Distinct non-null values of a column, sorted.
    pub fn distinct(&self, name: &str) -> Result<Vec<Value>> {
        let col = self.column(name)?;
        let mut vals: Vec<Value> = (0..self.num_rows)
            .map(|i| col.value(i))
            .filter(|v| !v.is_null())
            .collect();
        vals.sort();
        vals.dedup();
        Ok(vals)
    }

    /// Mean of a numeric column over non-null cells (None if no such cells).
    pub fn mean(&self, name: &str) -> Result<Option<f64>> {
        let vals = self.column(name)?.numeric_values();
        if vals.is_empty() {
            return Ok(None);
        }
        Ok(Some(vals.iter().sum::<f64>() / vals.len() as f64))
    }

    /// Sum of a numeric column over non-null cells.
    pub fn sum(&self, name: &str) -> Result<f64> {
        Ok(self.column(name)?.numeric_values().iter().sum())
    }

    /// Exact `q`-quantile (0 ≤ q ≤ 1) of a numeric column over non-null
    /// cells, using the nearest-rank definition (`q = 0.5` is the lower
    /// median). `None` when the column has no numeric cells.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, name: &str, q: f64) -> Result<Option<f64>> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let mut vals = self.column(name)?.numeric_values();
        if vals.is_empty() {
            return Ok(None);
        }
        vals.sort_by(f64::total_cmp);
        let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        Ok(Some(vals[rank - 1]))
    }

    /// Row indices that sort the table ascending by a column (nulls
    /// first, consistent with [`Value`] ordering); stable.
    pub fn sort_indices(&self, name: &str) -> Result<Vec<usize>> {
        let col = self.column(name)?;
        let mut idx: Vec<usize> = (0..self.num_rows).collect();
        idx.sort_by_key(|&a| col.value(a));
        Ok(idx)
    }

    /// A new table sorted ascending by the given column.
    pub fn sort_by(&self, name: &str) -> Result<Table> {
        Ok(self.take(&self.sort_indices(name)?))
    }

    /// Render the first `limit` rows as a compact ASCII table (debugging).
    pub fn preview(&self, limit: usize) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        for i in 0..self.num_rows.min(limit) {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(i).to_string())
                .collect();
            out.push_str(&row.join(" | "));
            out.push('\n');
        }
        if self.num_rows > limit {
            out.push_str(&format!("... ({} rows total)\n", self.num_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Role};

    fn people() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("score", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (a, r, s) in [
            (30, "white", 0.9),
            (40, "black", 0.8),
            (25, "white", 0.7),
            (55, "asian", 0.6),
        ] {
            t.push_row(vec![Value::Int(a), Value::str(r), Value::Float(s)])
                .unwrap();
        }
        t
    }

    #[test]
    fn push_and_row_roundtrip() {
        let t = people();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(
            t.row(1).unwrap(),
            vec![Value::Int(40), Value::str("black"), Value::Float(0.8)]
        );
        assert!(t.row(4).is_err());
    }

    #[test]
    fn failed_push_leaves_table_consistent() {
        let mut t = people();
        let err = t.push_row(vec![Value::str("oops"), Value::Null, Value::Null]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 4);
        // all columns still equal length
        for i in 0..t.num_columns() {
            assert_eq!(t.column_at(i).len(), 4);
        }
    }

    #[test]
    fn filter_by_predicate() {
        let t = people();
        let f = t.filter(&Predicate::ge("age", Value::Int(40)));
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "race").unwrap(), Value::str("black"));
    }

    #[test]
    fn take_allows_duplicates() {
        let t = people();
        let s = t.take(&[0, 0, 3]);
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.value(0, "age").unwrap(), s.value(1, "age").unwrap());
    }

    #[test]
    fn select_projects_columns() {
        let t = people();
        let p = t.select(&["score", "age"]).unwrap();
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.schema().fields()[0].name, "score");
        assert_eq!(p.num_rows(), 4);
    }

    #[test]
    fn append_and_concat() {
        let a = people();
        let b = people();
        let c = Table::concat(&[&a, &b]).unwrap();
        assert_eq!(c.num_rows(), 8);

        let different = Table::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let mut a2 = people();
        assert!(a2.append(&different).is_err());
    }

    #[test]
    fn aggregates() {
        let t = people();
        assert_eq!(t.mean("age").unwrap().unwrap(), 37.5);
        assert!((t.sum("score").unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(t.distinct("race").unwrap().len(), 3);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let t = people();
        // ages sorted: 25, 30, 40, 55
        assert_eq!(t.quantile("age", 0.5).unwrap().unwrap(), 30.0);
        assert_eq!(t.quantile("age", 0.0).unwrap().unwrap(), 25.0);
        assert_eq!(t.quantile("age", 1.0).unwrap().unwrap(), 55.0);
        assert_eq!(t.quantile("age", 0.75).unwrap().unwrap(), 40.0);
        // empty numeric column
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let empty = Table::new(schema);
        assert_eq!(empty.quantile("x", 0.5).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn quantile_range_checked() {
        people().quantile("age", 1.5).unwrap();
    }

    #[test]
    fn sort_by_orders_rows() {
        let t = people();
        let s = t.sort_by("age").unwrap();
        let ages: Vec<i64> = (0..s.num_rows())
            .map(|i| s.value(i, "age").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ages, vec![25, 30, 40, 55]);
        // sorting by string column works too (lexicographic)
        let r = t.sort_by("race").unwrap();
        assert_eq!(r.value(0, "race").unwrap(), Value::str("asian"));
    }

    #[test]
    fn null_fractions_counts_missing() {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let nf = t.null_fractions();
        assert_eq!(nf[0].1, 0.5);
    }

    #[test]
    fn set_value_overwrites() {
        let mut t = people();
        t.set_value(0, "age", Value::Int(99)).unwrap();
        assert_eq!(t.value(0, "age").unwrap(), Value::Int(99));
        assert!(t.set_value(0, "nope", Value::Int(1)).is_err());
    }
}
