//! # rdi-table
//!
//! A small, dependency-light, in-memory **typed columnar table** substrate
//! used by every crate in the Responsible Data Integration (RDI) toolkit.
//!
//! The design goals are, in order:
//!
//! 1. **Correctness & clarity** — the RDI algorithms built on top (coverage
//!    analysis, distribution tailoring, join sampling, …) are the research
//!    contribution; the substrate must be easy to audit.
//! 2. **Determinism** — no hash-order dependence in any user-visible output.
//! 3. **Adequate performance** — columnar storage, hash joins, and
//!    predicate evaluation are efficient enough to run million-row
//!    experiments on a laptop.
//!
//! ## Quick tour
//!
//! ```
//! use rdi_table::{Schema, Field, DataType, Role, Table, Value, Predicate};
//!
//! let schema = Schema::new(vec![
//!     Field::new("age", DataType::Int),
//!     Field::new("race", DataType::Str).with_role(Role::Sensitive),
//!     Field::new("outcome", DataType::Bool).with_role(Role::Target),
//! ]);
//! let mut t = Table::new(schema);
//! t.push_row(vec![Value::Int(34), Value::str("white"), Value::Bool(true)]).unwrap();
//! t.push_row(vec![Value::Int(29), Value::str("black"), Value::Bool(false)]).unwrap();
//!
//! let adults = t.filter(&Predicate::ge("age", Value::Int(30)));
//! assert_eq!(adults.num_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod delta;
pub mod error;
pub mod group;
pub mod join;
pub mod predicate;
pub mod schema;
pub mod table;
pub mod value;

pub use column::Column;
pub use csv::{read_csv_str, write_csv_string};
pub use delta::TableDelta;
pub use error::TableError;
pub use group::{GroupKey, GroupSpec, GroupStats};
pub use join::{hash_join, join_multiplicity, JoinSide};
pub use predicate::Predicate;
pub use schema::{DataType, Field, Role, Schema};
pub use table::Table;
pub use value::Value;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TableError>;
