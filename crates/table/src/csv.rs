//! Minimal CSV reader/writer with schema inference.
//!
//! Handles RFC-4180-style quoting (`"..."` fields, doubled quotes inside).
//! Empty fields parse as null. Types are inferred column-wise as the most
//! specific of `Int ⊂ Float ⊂ Str` / `Bool` over non-empty cells.

use crate::error::TableError;
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Parse one CSV line into raw string fields.
fn split_line(line: &str) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(cur);
    Ok(fields)
}

fn infer_type(cells: &[Option<&str>]) -> DataType {
    let mut seen_any = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for c in cells.iter().flatten() {
        seen_any = true;
        if c.parse::<i64>().is_err() {
            all_int = false;
        }
        if c.parse::<f64>().is_err() {
            all_float = false;
        }
        if !matches!(*c, "true" | "false") {
            all_bool = false;
        }
    }
    if !seen_any {
        return DataType::Str;
    }
    if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

fn parse_cell(raw: Option<&str>, dtype: DataType) -> Value {
    let Some(s) = raw else { return Value::Null };
    match dtype {
        DataType::Int => s.parse::<i64>().map_or(Value::Null, Value::Int),
        DataType::Float => s.parse::<f64>().map_or(Value::Null, |f| f.into()),
        DataType::Bool => match s {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Null,
        },
        DataType::Str => Value::Str(s.to_string()),
    }
}

/// Read a table from CSV text. The first line is the header.
///
/// Column types are inferred; pass `schema` to
/// [`read_csv_str_with_schema`] when the types are known.
pub fn read_csv_str(text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let header = lines
        .next()
        .ok_or_else(|| TableError::Csv("empty input".to_string()))?;
    let names = split_line(header).map_err(TableError::Csv)?;

    let mut raw_rows: Vec<Vec<Option<String>>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields =
            split_line(line).map_err(|e| TableError::Csv(format!("line {}: {e}", lineno + 2)))?;
        if fields.len() != names.len() {
            return Err(TableError::Csv(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                names.len(),
                fields.len()
            )));
        }
        raw_rows.push(
            fields
                .into_iter()
                .map(|f| if f.is_empty() { None } else { Some(f) })
                .collect(),
        );
    }

    let mut fields = Vec::with_capacity(names.len());
    for (j, name) in names.iter().enumerate() {
        let cells: Vec<Option<&str>> = raw_rows.iter().map(|r| r[j].as_deref()).collect();
        fields.push(Field::new(name.clone(), infer_type(&cells)));
    }
    let schema = Schema::new(fields);

    let mut t = Table::with_capacity(schema.clone(), raw_rows.len());
    for r in &raw_rows {
        let row: Vec<Value> = r
            .iter()
            .zip(schema.fields())
            .map(|(cell, f)| parse_cell(cell.as_deref(), f.dtype))
            .collect();
        t.push_row(row)?;
    }
    Ok(t)
}

/// Read CSV text against a known schema (header must match field names).
pub fn read_csv_str_with_schema(text: &str, schema: &Schema) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let header = lines
        .next()
        .ok_or_else(|| TableError::Csv("empty input".to_string()))?;
    let names = split_line(header).map_err(TableError::Csv)?;
    let expected: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    if names != expected {
        return Err(TableError::Csv(format!(
            "header {names:?} does not match schema {expected:?}"
        )));
    }
    let mut t = Table::new(schema.clone());
    for (lineno, line) in lines.enumerate() {
        let fields =
            split_line(line).map_err(|e| TableError::Csv(format!("line {}: {e}", lineno + 2)))?;
        if fields.len() != expected.len() {
            return Err(TableError::Csv(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                expected.len(),
                fields.len()
            )));
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(schema.fields())
            .map(|(cell, f)| {
                let raw = if cell.is_empty() {
                    None
                } else {
                    Some(cell.as_str())
                };
                parse_cell(raw, f.dtype)
            })
            .collect();
        t.push_row(row)?;
    }
    Ok(t)
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a table to CSV text (nulls become empty fields).
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..table.num_rows() {
        let row: Vec<String> = (0..table.num_columns())
            .map(|j| {
                let v = table.column_at(j).value(i);
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_inference() {
        let csv = "age,race,score,ok\n30,white,0.5,true\n40,black,1.5,false\n";
        let t = read_csv_str(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field("age").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema().field("score").unwrap().dtype, DataType::Float);
        assert_eq!(t.schema().field("ok").unwrap().dtype, DataType::Bool);
        let back = write_csv_string(&t);
        let t2 = read_csv_str(&back).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn empty_fields_are_null() {
        let csv = "x,y\n1,\n,b\n";
        let t = read_csv_str(csv).unwrap();
        assert!(t.value(0, "y").unwrap().is_null());
        assert!(t.value(1, "x").unwrap().is_null());
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n";
        let t = read_csv_str(csv).unwrap();
        assert_eq!(t.value(0, "name").unwrap(), Value::str("a,b"));
        assert_eq!(t.value(1, "name").unwrap(), Value::str("say \"hi\""));
        // round-trips
        let t2 = read_csv_str(&write_csv_string(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        assert!(read_csv_str(csv).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("a\n\"oops\n").is_err());
    }

    #[test]
    fn mixed_int_float_column_becomes_float() {
        let t = read_csv_str("x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().dtype, DataType::Float);
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn schema_directed_read_checks_header() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(read_csv_str_with_schema("y\n1\n", &schema).is_err());
        let t = read_csv_str_with_schema("x\n7\n", &schema).unwrap();
        assert_eq!(t.value(0, "x").unwrap(), Value::Int(7));
    }

    #[test]
    fn all_empty_column_is_str() {
        let t = read_csv_str("x,y\n,1\n,2\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().dtype, DataType::Str);
        assert_eq!(t.column("x").unwrap().null_count(), 2);
    }
}
