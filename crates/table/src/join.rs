//! Hash joins and join-multiplicity statistics.
//!
//! Besides the plain inner [`hash_join`], this module exposes
//! [`join_multiplicity`] — the per-key match counts that join-sampling
//! algorithms (Olken / Chaudhuri accept-reject, wander join; tutorial §3.4)
//! need as their "frequency statistics".

use std::collections::HashMap;

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Which side of a join a column came from (used for disambiguation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The left (probe) input.
    Left,
    /// The right (build) input.
    Right,
}

/// Inner equi-join of `left` and `right` on `left_key = right_key`.
///
/// Output schema: all left columns, then all right columns except the join
/// key. Name collisions on non-key columns are resolved by suffixing the
/// right column with `_r`. Null join keys never match (SQL semantics).
pub fn hash_join(left: &Table, right: &Table, left_key: &str, right_key: &str) -> Result<Table> {
    let rk_idx = right.schema().index_of(right_key)?;
    left.schema().index_of(left_key)?; // validate

    // Build phase: key -> right row indices.
    let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
    for i in 0..right.num_rows() {
        let k = right.column_at(rk_idx).value(i);
        if !k.is_null() {
            build.entry(k).or_default().push(i);
        }
    }

    // Output schema.
    let mut fields = left.schema().fields().to_vec();
    let left_names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
    let mut right_cols: Vec<usize> = Vec::new();
    for (j, f) in right.schema().fields().iter().enumerate() {
        if f.name == right_key {
            continue;
        }
        let mut f = f.clone();
        if left_names.contains(&f.name) {
            f.name = format!("{}_r", f.name);
        }
        fields.push(f);
        right_cols.push(j);
    }
    let schema = Schema::new(fields);

    // Probe phase: collect matching (left, right) index pairs.
    let lk_idx = left.schema().index_of(left_key)?;
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    for i in 0..left.num_rows() {
        let k = left.column_at(lk_idx).value(i);
        if k.is_null() {
            continue;
        }
        if let Some(matches) = build.get(&k) {
            for &j in matches {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }

    // Materialize by gathering each side.
    let mut columns: Vec<crate::Column> = (0..left.num_columns())
        .map(|c| left.column_at(c).gather(&lidx))
        .collect();
    for &j in &right_cols {
        columns.push(right.column_at(j).gather(&ridx));
    }
    Table::from_columns(schema, columns)
}

/// For each row of `left`, the number of rows of `right` it joins with.
///
/// Null keys have multiplicity 0.
pub fn join_multiplicity(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
) -> Result<Vec<usize>> {
    let freq = key_frequencies(right, right_key)?;
    let lk_idx = left.schema().index_of(left_key)?;
    Ok((0..left.num_rows())
        .map(|i| {
            let k = left.column_at(lk_idx).value(i);
            if k.is_null() {
                0
            } else {
                freq.get(&k).copied().unwrap_or(0)
            }
        })
        .collect())
}

/// Frequency of each non-null key value in a column.
pub fn key_frequencies(table: &Table, key: &str) -> Result<HashMap<Value, usize>> {
    let idx = table.schema().index_of(key)?;
    let mut m = HashMap::new();
    for i in 0..table.num_rows() {
        let k = table.column_at(idx).value(i);
        if !k.is_null() {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    Ok(m)
}

/// Row indices of `table` whose `key` column equals `value` — a simple
/// join index used by sampling algorithms.
pub fn rows_with_key(table: &Table, key: &str, value: &Value) -> Result<Vec<usize>> {
    let idx = table.schema().index_of(key)?;
    if value.is_null() {
        return Err(TableError::SchemaMismatch(
            "cannot index rows by a null key".to_string(),
        ));
    }
    Ok((0..table.num_rows())
        .filter(|&i| &table.column_at(idx).value(i) == value)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn patients() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("hospital", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for (p, h) in [(1, "north"), (2, "south"), (3, "north"), (4, "west")] {
            t.push_row(vec![Value::Int(p), Value::str(h)]).unwrap();
        }
        t
    }

    fn visits() -> Table {
        let schema = Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("cost", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (p, c) in [(1, 10.0), (1, 20.0), (2, 5.0), (9, 99.0)] {
            t.push_row(vec![Value::Int(p), Value::Float(c)]).unwrap();
        }
        t
    }

    #[test]
    fn inner_join_cardinality() {
        let j = hash_join(&patients(), &visits(), "pid", "pid").unwrap();
        // pid=1 matches twice, pid=2 once, 3/4 none, 9 unmatched on left
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.num_columns(), 3); // pid, hospital, cost
        assert_eq!(j.schema().fields()[2].name, "cost");
    }

    #[test]
    fn join_values_are_correct() {
        let j = hash_join(&patients(), &visits(), "pid", "pid").unwrap();
        let total: f64 = j.sum("cost").unwrap();
        assert!((total - 35.0).abs() < 1e-12);
    }

    #[test]
    fn null_keys_do_not_match() {
        let mut l = patients();
        l.push_row(vec![Value::Null, Value::str("ghost")]).unwrap();
        let mut r = visits();
        r.push_row(vec![Value::Null, Value::Float(1.0)]).unwrap();
        let j = hash_join(&l, &r, "pid", "pid").unwrap();
        assert_eq!(j.num_rows(), 3);
    }

    #[test]
    fn name_collision_suffixes_right() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("x", DataType::Int),
        ]);
        let mut a = Table::new(schema.clone());
        a.push_row(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let mut b = Table::new(schema);
        b.push_row(vec![Value::Int(1), Value::Int(20)]).unwrap();
        let j = hash_join(&a, &b, "k", "k").unwrap();
        assert_eq!(j.schema().fields()[2].name, "x_r");
        assert_eq!(j.value(0, "x_r").unwrap(), Value::Int(20));
    }

    #[test]
    fn multiplicity_counts_matches() {
        let m = join_multiplicity(&patients(), &visits(), "pid", "pid").unwrap();
        assert_eq!(m, vec![2, 1, 0, 0]);
        let total: usize = m.iter().sum();
        let j = hash_join(&patients(), &visits(), "pid", "pid").unwrap();
        assert_eq!(total, j.num_rows());
    }

    #[test]
    fn rows_with_key_finds_indices() {
        let r = rows_with_key(&visits(), "pid", &Value::Int(1)).unwrap();
        assert_eq!(r, vec![0, 1]);
        assert!(rows_with_key(&visits(), "pid", &Value::Null).is_err());
    }

    #[test]
    fn key_frequencies_counts() {
        let f = key_frequencies(&visits(), "pid").unwrap();
        assert_eq!(f[&Value::Int(1)], 2);
        assert_eq!(f[&Value::Int(9)], 1);
    }
}
