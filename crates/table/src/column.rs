//! Typed column storage.

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::schema::DataType;
use crate::value::Value;
use crate::Result;

/// A single column of typed, nullable values.
///
/// Storage is a `Vec<Option<T>>` per type. This keeps the substrate simple
/// and auditable; a null bitmap + dense vector would be faster but is not
/// needed at the scales the RDI experiments run at (≤ tens of millions of
/// cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True iff the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// The value at row `i` as a dynamic [`Value`].
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => v[i].map_or(Value::Null, Value::Int),
            Column::Float(v) => v[i].map_or(Value::Null, Value::Float),
            Column::Str(v) => v[i].clone().map_or(Value::Null, Value::Str),
            Column::Bool(v) => v[i].map_or(Value::Null, Value::Bool),
        }
    }

    /// Push a dynamic value, checking its type against the column type.
    ///
    /// `Int` values are accepted into `Float` columns (widening); float
    /// `NaN` is stored as null.
    pub fn push(&mut self, value: Value, column_name: &str) -> Result<()> {
        let mismatch = |expected: &'static str, got: &Value| TableError::TypeMismatch {
            column: column_name.to_string(),
            expected,
            got: format!("{got:?}"),
        };
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(if x.is_nan() { None } else { Some(x) }),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, v) => return Err(mismatch(col.dtype().name(), &v)),
        }
        Ok(())
    }

    /// Overwrite the cell at row `i` with a (type-checked) value.
    pub fn set(&mut self, i: usize, value: Value, column_name: &str) -> Result<()> {
        if i >= self.len() {
            return Err(TableError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        let mismatch = |expected: &'static str, got: &Value| TableError::TypeMismatch {
            column: column_name.to_string(),
            expected,
            got: format!("{got:?}"),
        };
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v[i] = Some(x),
            (Column::Int(v), Value::Null) => v[i] = None,
            (Column::Float(v), Value::Float(x)) => v[i] = if x.is_nan() { None } else { Some(x) },
            (Column::Float(v), Value::Int(x)) => v[i] = Some(x as f64),
            (Column::Float(v), Value::Null) => v[i] = None,
            (Column::Str(v), Value::Str(x)) => v[i] = Some(x),
            (Column::Str(v), Value::Null) => v[i] = None,
            (Column::Bool(v), Value::Bool(x)) => v[i] = Some(x),
            (Column::Bool(v), Value::Null) => v[i] = None,
            (col, v) => return Err(mismatch(col.dtype().name(), &v)),
        }
        Ok(())
    }

    /// Gather the cells at `indices` into a new column (clone semantics).
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Append all cells from `other` (must have the same dtype).
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend(b.iter().cloned()),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(TableError::SchemaMismatch(format!(
                    "cannot append {} column to {} column",
                    b.dtype().name(),
                    a.dtype().name()
                )))
            }
        }
        Ok(())
    }

    /// Iterator over cells as `f64` (nulls and non-numeric cells are `None`).
    pub fn iter_f64(&self) -> Box<dyn Iterator<Item = Option<f64>> + '_> {
        match self {
            Column::Int(v) => Box::new(v.iter().map(|x| x.map(|i| i as f64))),
            Column::Float(v) => Box::new(v.iter().copied()),
            Column::Bool(v) => Box::new(v.iter().map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))),
            Column::Str(v) => Box::new(v.iter().map(|_| None)),
        }
    }

    /// Non-null numeric values of the column.
    pub fn numeric_values(&self) -> Vec<f64> {
        self.iter_f64().flatten().collect()
    }

    /// Borrowed string cells, if this is a string column.
    pub fn as_str_slice(&self) -> Option<&[Option<String>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed integer cells, if this is an integer column.
    pub fn as_int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed float cells, if this is a float column.
    pub fn as_float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(5), "c").unwrap();
        c.push(Value::Null, "c").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), Value::Int(5));
        assert!(c.value(1).is_null());
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn int_widens_into_float() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(3), "c").unwrap();
        assert_eq!(c.value(0), Value::Float(3.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int);
        let err = c.push(Value::str("x"), "age").unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        assert!(err.to_string().contains("age"));
    }

    #[test]
    fn nan_stored_as_null() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(f64::NAN), "c").unwrap();
        assert!(c.value(0).is_null());
    }

    #[test]
    fn gather_reorders_and_repeats() {
        let mut c = Column::empty(DataType::Str);
        for s in ["a", "b", "c"] {
            c.push(Value::str(s), "c").unwrap();
        }
        let g = c.gather(&[2, 0, 0]);
        assert_eq!(g.value(0), Value::str("c"));
        assert_eq!(g.value(1), Value::str("a"));
        assert_eq!(g.value(2), Value::str("a"));
    }

    #[test]
    fn set_overwrites() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true), "c").unwrap();
        c.set(0, Value::Bool(false), "c").unwrap();
        assert_eq!(c.value(0), Value::Bool(false));
        assert!(c.set(5, Value::Bool(true), "c").is_err());
    }

    #[test]
    fn extend_from_same_type() {
        let mut a = Column::empty(DataType::Int);
        a.push(Value::Int(1), "a").unwrap();
        let mut b = Column::empty(DataType::Int);
        b.push(Value::Int(2), "b").unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        let s = Column::empty(DataType::Str);
        assert!(a.extend_from(&s).is_err());
    }

    #[test]
    fn numeric_values_skip_nulls() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.5), "c").unwrap();
        c.push(Value::Null, "c").unwrap();
        assert_eq!(c.numeric_values(), vec![1.5]);
    }
}
