//! A small predicate AST evaluated against table rows.
//!
//! Predicates are deliberately simple — enough to express the selection
//! queries used across the RDI toolkit (range queries for `rdi-fairquery`,
//! group filters for `rdi-tailor`, slice definitions for `rdi-acquisition`)
//! without pulling in a SQL engine.

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::value::Value;

/// A boolean predicate over a single row.
///
/// Comparisons on a null cell evaluate to `false` (SQL three-valued logic
/// collapsed to two values), except [`Predicate::IsNull`]. Consequently
/// [`Predicate::Not`] is plain boolean negation: `Not(x > 3)` *matches*
/// null cells, unlike SQL's `NOT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// `column == value`.
    Eq(String, Value),
    /// `column != value` (false when the cell is null).
    Ne(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    Le(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    Ge(String, Value),
    /// `low <= column <= high` (inclusive range).
    Between(String, Value, Value),
    /// `column IN (values…)`.
    In(String, Vec<Value>),
    /// `column IS NULL`.
    IsNull(String),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column == value`.
    pub fn eq(column: impl Into<String>, value: Value) -> Self {
        Predicate::Eq(column.into(), value)
    }
    /// `column >= value`.
    pub fn ge(column: impl Into<String>, value: Value) -> Self {
        Predicate::Ge(column.into(), value)
    }
    /// `column <= value`.
    pub fn le(column: impl Into<String>, value: Value) -> Self {
        Predicate::Le(column.into(), value)
    }
    /// `low <= column <= high`.
    pub fn between(column: impl Into<String>, low: Value, high: Value) -> Self {
        Predicate::Between(column.into(), low, high)
    }
    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut ps) => {
                ps.push(other);
                Predicate::And(ps)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Evaluate against row `i` of `table`.
    ///
    /// Unknown columns evaluate to `false` rather than erroring: predicates
    /// are routinely evaluated against heterogeneous sources during
    /// discovery, where a source simply lacking a column means "no match".
    pub fn eval(&self, table: &Table, i: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => cell(table, i, c).is_some_and(|x| !x.is_null() && &x == v),
            Predicate::Ne(c, v) => cell(table, i, c).is_some_and(|x| !x.is_null() && &x != v),
            Predicate::Lt(c, v) => cmp_ok(table, i, c, |x| x < *v),
            Predicate::Le(c, v) => cmp_ok(table, i, c, |x| x <= *v),
            Predicate::Gt(c, v) => cmp_ok(table, i, c, |x| x > *v),
            Predicate::Ge(c, v) => cmp_ok(table, i, c, |x| x >= *v),
            Predicate::Between(c, lo, hi) => cmp_ok(table, i, c, |x| x >= *lo && x <= *hi),
            Predicate::In(c, vs) => {
                cell(table, i, c).is_some_and(|x| !x.is_null() && vs.contains(&x))
            }
            Predicate::IsNull(c) => cell(table, i, c).is_some_and(|x| x.is_null()),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(table, i)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(table, i)),
            Predicate::Not(p) => !p.eval(table, i),
        }
    }

    /// Number of rows in `table` matching this predicate.
    pub fn count(&self, table: &Table) -> usize {
        (0..table.num_rows())
            .filter(|&i| self.eval(table, i))
            .count()
    }
}

fn cell(table: &Table, i: usize, column: &str) -> Option<Value> {
    table.value(i, column).ok()
}

fn cmp_ok(table: &Table, i: usize, column: &str, f: impl Fn(Value) -> bool) -> bool {
    match cell(table, i, column) {
        Some(v) if !v.is_null() => f(v),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("s", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Int(1), Value::str("a")]).unwrap();
        t.push_row(vec![Value::Int(5), Value::str("b")]).unwrap();
        t.push_row(vec![Value::Null, Value::str("c")]).unwrap();
        t
    }

    #[test]
    fn comparisons() {
        let t = t();
        assert_eq!(Predicate::ge("x", Value::Int(2)).count(&t), 1);
        assert_eq!(Predicate::le("x", Value::Int(5)).count(&t), 2);
        assert_eq!(
            Predicate::between("x", Value::Int(0), Value::Int(10)).count(&t),
            2
        );
    }

    #[test]
    fn null_cells_never_match_comparisons() {
        let t = t();
        assert_eq!(Predicate::eq("x", Value::Null).count(&t), 0);
        assert_eq!(Predicate::Ne("x".into(), Value::Int(1)).count(&t), 1);
        assert_eq!(Predicate::IsNull("x".into()).count(&t), 1);
    }

    #[test]
    fn boolean_combinators() {
        let t = t();
        let p = Predicate::ge("x", Value::Int(1)).and(Predicate::eq("s", Value::str("a")));
        assert_eq!(p.count(&t), 1);
        let q = Predicate::Or(vec![
            Predicate::eq("s", Value::str("a")),
            Predicate::eq("s", Value::str("c")),
        ]);
        assert_eq!(q.count(&t), 2);
        assert_eq!(Predicate::Not(Box::new(q)).count(&t), 1);
    }

    #[test]
    fn unknown_column_is_false() {
        let t = t();
        assert_eq!(Predicate::eq("zzz", Value::Int(1)).count(&t), 0);
    }

    #[test]
    fn in_list() {
        let t = t();
        let p = Predicate::In("s".into(), vec![Value::str("a"), Value::str("c")]);
        assert_eq!(p.count(&t), 2);
    }

    #[test]
    fn and_builder_flattens() {
        let p = Predicate::True.and(Predicate::True).and(Predicate::True);
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            _ => panic!("expected And"),
        }
    }
}
