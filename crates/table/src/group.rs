//! Demographic group identification and per-group statistics.
//!
//! A *group* (tutorial §2.2) is the intersection of values of one or more
//! sensitive attributes, e.g. `{race: black, sex: female}`. [`GroupSpec`]
//! names the grouping attributes; [`GroupKey`] is one concrete combination.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A concrete combination of group-attribute values, in [`GroupSpec`] order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey(pub Vec<Value>);

impl GroupKey {
    /// Render as `attr=val, attr=val` given the spec that produced it.
    pub fn render(&self, spec: &GroupSpec) -> String {
        spec.attributes
            .iter()
            .zip(&self.0)
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

/// Which attributes define groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Names of the grouping (typically sensitive) attributes.
    pub attributes: Vec<String>,
}

impl GroupSpec {
    /// Build a spec over the given attribute names.
    pub fn new<S: Into<String>>(attributes: Vec<S>) -> Self {
        GroupSpec {
            attributes: attributes.into_iter().map(Into::into).collect(),
        }
    }

    /// Spec over all attributes marked [`crate::Role::Sensitive`] in `table`.
    pub fn from_sensitive(table: &Table) -> Self {
        GroupSpec::new(table.schema().sensitive())
    }

    /// The group key of row `i`.
    pub fn key_of(&self, table: &Table, i: usize) -> Result<GroupKey> {
        let mut vals = Vec::with_capacity(self.attributes.len());
        for a in &self.attributes {
            vals.push(table.value(i, a)?);
        }
        Ok(GroupKey(vals))
    }

    /// Per-group row counts.
    pub fn counts(&self, table: &Table) -> Result<HashMap<GroupKey, usize>> {
        let mut m = HashMap::new();
        for i in 0..table.num_rows() {
            *m.entry(self.key_of(table, i)?).or_insert(0) += 1;
        }
        Ok(m)
    }

    /// Per-group row indices.
    pub fn partition(&self, table: &Table) -> Result<HashMap<GroupKey, Vec<usize>>> {
        let mut m: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for i in 0..table.num_rows() {
            m.entry(self.key_of(table, i)?).or_default().push(i);
        }
        Ok(m)
    }

    /// Per-group fractions (counts normalized by total rows), sorted by key
    /// for deterministic output.
    pub fn fractions(&self, table: &Table) -> Result<Vec<(GroupKey, f64)>> {
        let n = table.num_rows() as f64;
        let mut v: Vec<(GroupKey, f64)> = self
            .counts(table)?
            .into_iter()
            .map(|(k, c)| (k, if n > 0.0 { c as f64 / n } else { 0.0 }))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(v)
    }

    /// All group keys present in the table, sorted.
    pub fn keys(&self, table: &Table) -> Result<Vec<GroupKey>> {
        let mut ks: Vec<GroupKey> = self.counts(table)?.into_keys().collect();
        ks.sort();
        Ok(ks)
    }

    /// Per-group summary statistics of a numeric column.
    pub fn stats(&self, table: &Table, column: &str) -> Result<Vec<(GroupKey, GroupStats)>> {
        let parts = self.partition(table)?;
        let col = table.column(column)?;
        let mut out = Vec::with_capacity(parts.len());
        for (k, idxs) in parts {
            let vals: Vec<f64> = idxs.iter().filter_map(|&i| col.value(i).as_f64()).collect();
            out.push((k, GroupStats::from_values(idxs.len(), &vals)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

/// Summary statistics of one numeric column within one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Rows in the group (including rows where the column is null).
    pub count: usize,
    /// Non-null numeric cells.
    pub non_null: usize,
    /// Mean of non-null cells (0 if none).
    pub mean: f64,
    /// Population standard deviation of non-null cells.
    pub std_dev: f64,
    /// Minimum non-null cell.
    pub min: f64,
    /// Maximum non-null cell.
    pub max: f64,
}

impl GroupStats {
    fn from_values(count: usize, vals: &[f64]) -> Self {
        if vals.is_empty() {
            return GroupStats {
                count,
                non_null: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        GroupStats {
            count,
            non_null: vals.len(),
            mean,
            std_dev: var.sqrt(),
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Role, Schema};

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("sex", DataType::Str).with_role(Role::Sensitive),
            Field::new("score", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (r, s, v) in [
            ("w", "m", 1.0),
            ("w", "f", 2.0),
            ("b", "m", 3.0),
            ("w", "m", 5.0),
        ] {
            t.push_row(vec![Value::str(r), Value::str(s), Value::Float(v)])
                .unwrap();
        }
        t
    }

    #[test]
    fn counts_intersectional_groups() {
        let t = t();
        let spec = GroupSpec::from_sensitive(&t);
        let counts = spec.counts(&t).unwrap();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[&GroupKey(vec![Value::str("w"), Value::str("m")])], 2);
    }

    #[test]
    fn fractions_sum_to_one() {
        let t = t();
        let spec = GroupSpec::new(vec!["race"]);
        let fr = spec.fractions(&t).unwrap();
        let total: f64 = fr.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // sorted: "b" before "w"
        assert_eq!(fr[0].0, GroupKey(vec![Value::str("b")]));
    }

    #[test]
    fn per_group_stats() {
        let t = t();
        let spec = GroupSpec::new(vec!["race"]);
        let stats = spec.stats(&t, "score").unwrap();
        let w = stats
            .iter()
            .find(|(k, _)| k.0[0] == Value::str("w"))
            .unwrap();
        assert_eq!(w.1.count, 3);
        assert!((w.1.mean - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.1.max, 5.0);
    }

    #[test]
    fn partition_covers_all_rows() {
        let t = t();
        let spec = GroupSpec::from_sensitive(&t);
        let parts = spec.partition(&t).unwrap();
        let total: usize = parts.values().map(Vec::len).sum();
        assert_eq!(total, t.num_rows());
    }

    #[test]
    fn render_key() {
        let spec = GroupSpec::new(vec!["race", "sex"]);
        let k = GroupKey(vec![Value::str("b"), Value::str("f")]);
        assert_eq!(k.render(&spec), "race=b, sex=f");
    }
}
