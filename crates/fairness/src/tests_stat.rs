//! Statistical significance tests.
//!
//! Association *magnitudes* (Cramér's V, lift) can look alarming on tiny
//! samples; audits and nutritional labels should only flag dependencies
//! the data actually supports. This module provides Pearson's χ² test of
//! independence with a p-value computed from the regularized upper
//! incomplete gamma function (χ²_k survival function), implemented from
//! scratch per the workspace's no-new-dependencies rule.

use std::collections::BTreeMap;

/// Result of a χ² independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom `(r−1)(c−1)`.
    pub dof: usize,
    /// P(χ²_dof ≥ statistic) under independence.
    pub p_value: f64,
}

/// Pearson's χ² test of independence between two label vectors.
///
/// Returns `None` when the test is undefined: fewer than 2 categories on
/// either side, or an empty input.
pub fn chi_square_test<A, B>(xs: &[A], ys: &[B]) -> Option<ChiSquareTest>
where
    A: Ord + Clone,
    B: Ord + Clone,
{
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n == 0 {
        return None;
    }
    // Sorted iteration keeps the χ² sum bitwise-deterministic (R1).
    let mut joint: BTreeMap<(A, B), f64> = BTreeMap::new();
    let mut px: BTreeMap<A, f64> = BTreeMap::new();
    let mut py: BTreeMap<B, f64> = BTreeMap::new();
    for (x, y) in xs.iter().zip(ys) {
        *joint.entry((x.clone(), y.clone())).or_insert(0.0) += 1.0;
        *px.entry(x.clone()).or_insert(0.0) += 1.0;
        *py.entry(y.clone()).or_insert(0.0) += 1.0;
    }
    let r = px.len();
    let c = py.len();
    if r < 2 || c < 2 {
        return None;
    }
    let nf = n as f64;
    let mut chi2 = 0.0;
    for (x, nx) in &px {
        for (y, ny) in &py {
            let expected = nx * ny / nf;
            let observed = joint.get(&(x.clone(), y.clone())).copied().unwrap_or(0.0);
            chi2 += (observed - expected).powi(2) / expected;
        }
    }
    let dof = (r - 1) * (c - 1);
    Some(ChiSquareTest {
        statistic: chi2,
        dof,
        p_value: chi2_sf(chi2, dof),
    })
}

/// Survival function of the χ² distribution with `k` degrees of freedom:
/// `P(X ≥ x) = Q(k/2, x/2)` (regularized upper incomplete gamma).
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - lower_reg_gamma(k as f64 / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma `P(a, x)` via the standard series /
/// continued-fraction split (Numerical Recipes style).
fn lower_reg_gamma(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // series representation
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // continued fraction for Q(a, x), then P = 1 − Q
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // χ²(1): P(X ≥ 3.841) ≈ 0.05
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 0.001);
        // χ²(2): P(X ≥ 5.991) ≈ 0.05
        assert!((chi2_sf(5.991, 2) - 0.05).abs() < 0.001);
        // χ²(10): P(X ≥ 18.307) ≈ 0.05
        assert!((chi2_sf(18.307, 10) - 0.05).abs() < 0.001);
        // edges
        assert_eq!(chi2_sf(0.0, 3), 1.0);
        assert!(chi2_sf(1e6, 3) < 1e-12);
    }

    #[test]
    fn dependent_labels_are_significant() {
        let xs: Vec<u8> = (0..400).map(|i| (i % 2) as u8).collect();
        let ys = xs.clone(); // perfectly dependent
        let t = chi_square_test(&xs, &ys).unwrap();
        assert_eq!(t.dof, 1);
        assert!(t.statistic > 300.0);
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn independent_labels_are_not_significant() {
        let xs: Vec<u8> = (0..400).map(|i| (i % 2) as u8).collect();
        let ys: Vec<u8> = (0..400).map(|i| ((i / 2) % 2) as u8).collect();
        let t = chi_square_test(&xs, &ys).unwrap();
        assert!(t.statistic < 1.0);
        assert!(t.p_value > 0.3, "p={}", t.p_value);
    }

    #[test]
    fn small_biased_sample_is_inconclusive() {
        // 6 rows with an apparent pattern: magnitude high, significance low
        let xs = ["a", "a", "a", "b", "b", "b"];
        let ys = ["1", "1", "0", "0", "0", "1"];
        let t = chi_square_test(&xs, &ys).unwrap();
        assert!(t.p_value > 0.05, "p={}", t.p_value);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let xs = ["a", "a"];
        let ys = ["1", "2"];
        assert!(chi_square_test(&xs, &ys).is_none()); // constant x
        let empty: [&str; 0] = [];
        assert!(chi_square_test(&empty, &empty).is_none());
    }
}
