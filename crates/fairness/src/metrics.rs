//! Group fairness metrics over prediction outcomes and query outputs.

use std::collections::BTreeMap;

use rdi_table::{GroupKey, GroupSpec, Table};
use serde::{Deserialize, Serialize};

/// Confusion-matrix counts for one demographic group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupOutcomes {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl GroupOutcomes {
    /// Total observations.
    pub fn n(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction predicted positive (the "selection rate").
    pub fn positive_rate(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            return 0.0;
        }
        (self.tp + self.fp) as f64 / n as f64
    }

    /// True positive rate (recall); 0 when no positives exist.
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            return 0.0;
        }
        self.tp as f64 / p as f64
    }

    /// False positive rate; 0 when no negatives exist.
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            return 0.0;
        }
        self.fp as f64 / n as f64
    }

    /// Accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / n as f64
    }

    /// Record one (prediction, label) pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }
}

/// Tally per-group confusion matrices for parallel prediction/label/group
/// vectors.
pub fn tally_outcomes(
    predictions: &[bool],
    labels: &[bool],
    groups: &[GroupKey],
) -> BTreeMap<GroupKey, GroupOutcomes> {
    assert!(
        predictions.len() == labels.len() && labels.len() == groups.len(),
        "parallel vectors required"
    );
    let mut m: BTreeMap<GroupKey, GroupOutcomes> = BTreeMap::new();
    for ((p, y), g) in predictions.iter().zip(labels).zip(groups) {
        m.entry(g.clone()).or_default().record(*p, *y);
    }
    m
}

/// Maximum pairwise difference of positive rates across groups
/// (demographic parity difference; 0 = perfect parity).
pub fn demographic_parity_difference(outcomes: &BTreeMap<GroupKey, GroupOutcomes>) -> f64 {
    max_pairwise_gap(outcomes.values().map(GroupOutcomes::positive_rate))
}

/// Equalized-odds difference: the larger of the max pairwise TPR gap and
/// the max pairwise FPR gap across groups.
pub fn equalized_odds_difference(outcomes: &BTreeMap<GroupKey, GroupOutcomes>) -> f64 {
    let tpr_gap = max_pairwise_gap(outcomes.values().map(GroupOutcomes::tpr));
    let fpr_gap = max_pairwise_gap(outcomes.values().map(GroupOutcomes::fpr));
    tpr_gap.max(fpr_gap)
}

/// Per-group accuracy, sorted by group key for deterministic output
/// (BTreeMap iteration is already in key order).
pub fn group_accuracy(outcomes: &BTreeMap<GroupKey, GroupOutcomes>) -> Vec<(GroupKey, f64)> {
    outcomes
        .iter()
        .map(|(k, o)| (k.clone(), o.accuracy()))
        .collect()
}

fn max_pairwise_gap(rates: impl Iterator<Item = f64>) -> f64 {
    let rs: Vec<f64> = rates.collect();
    if rs.len() < 2 {
        return 0.0;
    }
    let max = rs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = rs.iter().copied().fold(f64::INFINITY, f64::min);
    max - min
}

/// Disparity of a *selected subset* of a table w.r.t. groups: the maximum
/// pairwise absolute difference of per-group **selection counts**,
/// normalized by the subset size.
///
/// This is the count-difference fairness notion used by fairness-aware
/// range queries (tutorial §5, Shetiya et al.): a query output is fair
/// when the groups it returns are (near-)balanced.
pub fn disparity(table: &Table, selected: &[usize], spec: &GroupSpec) -> rdi_table::Result<f64> {
    if selected.is_empty() {
        return Ok(0.0);
    }
    let mut counts: BTreeMap<GroupKey, usize> = BTreeMap::new();
    for &i in selected {
        *counts.entry(spec.key_of(table, i)?).or_insert(0) += 1;
    }
    // Groups present in the table but absent from the selection count as 0.
    for key in spec.keys(table)? {
        counts.entry(key).or_insert(0);
    }
    // `selected` is non-empty here, so `counts` is too; `unwrap_or(0)`
    // keeps the path panic-free without changing the value.
    let max = counts.values().copied().max().unwrap_or(0) as f64;
    let min = counts.values().copied().min().unwrap_or(0) as f64;
    Ok((max - min) / selected.len() as f64)
}

/// Absolute difference of per-group counts for exactly two groups, the raw
/// form used by fairness-aware range query algorithms.
pub fn count_difference(
    table: &Table,
    selected: &[usize],
    spec: &GroupSpec,
    a: &GroupKey,
    b: &GroupKey,
) -> rdi_table::Result<i64> {
    let mut ca: i64 = 0;
    let mut cb: i64 = 0;
    for &i in selected {
        let k = spec.key_of(table, i)?;
        if &k == a {
            ca += 1;
        } else if &k == b {
            cb += 1;
        }
    }
    Ok((ca - cb).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    fn key(s: &str) -> GroupKey {
        GroupKey(vec![Value::str(s)])
    }

    #[test]
    fn outcome_rates() {
        let mut o = GroupOutcomes::default();
        o.record(true, true); // tp
        o.record(true, false); // fp
        o.record(false, false); // tn
        o.record(false, true); // fn
        assert_eq!(o.n(), 4);
        assert_eq!(o.positive_rate(), 0.5);
        assert_eq!(o.tpr(), 0.5);
        assert_eq!(o.fpr(), 0.5);
        assert_eq!(o.accuracy(), 0.5);
    }

    #[test]
    fn parity_difference_detects_gap() {
        let preds = vec![true, true, true, false];
        let labels = vec![true, true, true, true];
        let groups = vec![key("a"), key("a"), key("b"), key("b")];
        let o = tally_outcomes(&preds, &labels, &groups);
        // group a: rate 1.0; group b: rate 0.5
        assert!((demographic_parity_difference(&o) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equalized_odds_zero_when_identical() {
        let preds = vec![true, false, true, false];
        let labels = vec![true, false, true, false];
        let groups = vec![key("a"), key("a"), key("b"), key("b")];
        let o = tally_outcomes(&preds, &labels, &groups);
        assert_eq!(equalized_odds_difference(&o), 0.0);
    }

    #[test]
    fn empty_and_single_group_edge_cases() {
        let o: BTreeMap<GroupKey, GroupOutcomes> = BTreeMap::new();
        assert_eq!(demographic_parity_difference(&o), 0.0);
        let mut one = BTreeMap::new();
        one.insert(key("a"), GroupOutcomes::default());
        assert_eq!(demographic_parity_difference(&one), 0.0);
        assert_eq!(GroupOutcomes::default().accuracy(), 0.0);
    }

    fn grouped_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Int),
        ]);
        let mut t = Table::new(schema);
        for (g, x) in [("a", 1), ("a", 2), ("b", 3), ("b", 4), ("b", 5)] {
            t.push_row(vec![Value::str(g), Value::Int(x)]).unwrap();
        }
        t
    }

    #[test]
    fn disparity_of_balanced_selection_is_low() {
        let t = grouped_table();
        let spec = GroupSpec::from_sensitive(&t);
        // select one from each group
        assert_eq!(disparity(&t, &[0, 2], &spec).unwrap(), 0.0);
        // select only group b
        let d = disparity(&t, &[2, 3, 4], &spec).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        assert_eq!(disparity(&t, &[], &spec).unwrap(), 0.0);
    }

    #[test]
    fn count_difference_two_groups() {
        let t = grouped_table();
        let spec = GroupSpec::from_sensitive(&t);
        let d = count_difference(&t, &[0, 1, 2], &spec, &key("a"), &key("b")).unwrap();
        assert_eq!(d, 1);
    }

    #[test]
    #[should_panic(expected = "parallel vectors")]
    fn tally_rejects_mismatched_lengths() {
        tally_outcomes(&[true], &[true, false], &[key("a"), key("a")]);
    }
}
