//! Sample debiasing for open-world query answering (§5; after the Themis
//! system of Orr, Balazinska, Suciu — SIGMOD 2020).
//!
//! When the database is itself a *biased sample* of a population (the
//! open-world view), raw aggregates answer questions about the sample,
//! not the world. If the population marginal of a stratifying attribute
//! is known (e.g. census race fractions), **post-stratification** assigns
//! each row the weight `population_fraction(g) / sample_fraction(g)` and
//! answers COUNT/SUM/AVG with weights — removing the representation bias
//! that the raw aggregates propagate into downstream applications.

use std::collections::BTreeMap;

use rdi_table::{GroupKey, GroupSpec, Predicate, Table, TableError};

/// Per-row post-stratification weights for `table`, so that the weighted
/// group fractions over `spec` match `population` (keys must cover every
/// group present in the table; fractions must be positive and sum to ≈1).
pub fn post_stratification_weights(
    table: &Table,
    spec: &GroupSpec,
    population: &BTreeMap<GroupKey, f64>,
) -> rdi_table::Result<Vec<f64>> {
    let total: f64 = population.values().sum();
    if !(0.99..=1.01).contains(&total) {
        return Err(TableError::SchemaMismatch(format!(
            "population fractions sum to {total}, expected 1"
        )));
    }
    let counts = spec.counts(table)?;
    let n = table.num_rows() as f64;
    let mut weight_of: BTreeMap<GroupKey, f64> = BTreeMap::new();
    for (k, &c) in &counts {
        let Some(&pop) = population.get(k) else {
            return Err(TableError::SchemaMismatch(format!(
                "group {k} present in the sample but missing from the population marginal"
            )));
        };
        if pop <= 0.0 {
            return Err(TableError::SchemaMismatch(format!(
                "population fraction for {k} must be positive"
            )));
        }
        let sample_frac = c as f64 / n;
        weight_of.insert(k.clone(), pop / sample_frac);
    }
    let mut weights = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        weights.push(weight_of[&spec.key_of(table, i)?]);
    }
    Ok(weights)
}

/// A weighted view of a table for debiased aggregates.
pub struct DebiasedView<'a> {
    table: &'a Table,
    weights: Vec<f64>,
}

impl<'a> DebiasedView<'a> {
    /// Build from a table, the stratifying spec, and the known population
    /// marginal.
    pub fn new(
        table: &'a Table,
        spec: &GroupSpec,
        population: &BTreeMap<GroupKey, f64>,
    ) -> rdi_table::Result<Self> {
        Ok(DebiasedView {
            table,
            weights: post_stratification_weights(table, spec, population)?,
        })
    }

    /// The per-row weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Debiased fraction of the population matching `pred` (weighted
    /// COUNT / total weight).
    pub fn fraction(&self, pred: &Predicate) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let matched: f64 = (0..self.table.num_rows())
            .filter(|&i| pred.eval(self.table, i))
            .map(|i| self.weights[i])
            .sum();
        matched / total
    }

    /// Debiased AVG of a numeric column over rows matching `pred`
    /// (weighted mean over non-null cells; `None` if nothing matches).
    pub fn avg(&self, column: &str, pred: &Predicate) -> rdi_table::Result<Option<f64>> {
        let col = self.table.column(column)?;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..self.table.num_rows() {
            if !pred.eval(self.table, i) {
                continue;
            }
            if let Some(x) = col.value(i).as_f64() {
                num += self.weights[i] * x;
                den += self.weights[i];
            }
        }
        Ok(if den > 0.0 { Some(num / den) } else { None })
    }

    /// Debiased SUM of a numeric column over rows matching `pred`,
    /// scaled to a population of `population_size` individuals.
    pub fn sum_scaled(
        &self,
        column: &str,
        pred: &Predicate,
        population_size: f64,
    ) -> rdi_table::Result<f64> {
        let col = self.table.column(column)?;
        let total_w: f64 = self.weights.iter().sum();
        if total_w == 0.0 {
            return Ok(0.0);
        }
        let mut s = 0.0;
        for i in 0..self.table.num_rows() {
            if !pred.eval(self.table, i) {
                continue;
            }
            if let Some(x) = col.value(i).as_f64() {
                s += self.weights[i] * x;
            }
        }
        Ok(s / total_w * population_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    /// population: 50/50; sample: 90 maj / 10 min; maj earns 10, min 30.
    fn biased_sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("income", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for _ in 0..90 {
            t.push_row(vec![Value::str("maj"), Value::Float(10.0)])
                .unwrap();
        }
        for _ in 0..10 {
            t.push_row(vec![Value::str("min"), Value::Float(30.0)])
                .unwrap();
        }
        t
    }

    fn population() -> BTreeMap<GroupKey, f64> {
        let mut m = BTreeMap::new();
        m.insert(GroupKey(vec![Value::str("maj")]), 0.5);
        m.insert(GroupKey(vec![Value::str("min")]), 0.5);
        m
    }

    #[test]
    fn weights_rebalance_group_fractions() {
        let t = biased_sample();
        let spec = GroupSpec::new(vec!["g"]);
        let w = post_stratification_weights(&t, &spec, &population()).unwrap();
        // maj weight = 0.5/0.9, min weight = 0.5/0.1
        assert!((w[0] - 0.5 / 0.9).abs() < 1e-12);
        assert!((w[99] - 5.0).abs() < 1e-12);
        // weighted minority fraction is exactly 0.5
        let view = DebiasedView::new(&t, &spec, &population()).unwrap();
        let f = view.fraction(&Predicate::eq("g", Value::str("min")));
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn debiased_avg_matches_population_truth() {
        let t = biased_sample();
        let spec = GroupSpec::new(vec!["g"]);
        let view = DebiasedView::new(&t, &spec, &population()).unwrap();
        // raw AVG = 0.9·10 + 0.1·30 = 12; population truth = 20
        let raw = t.mean("income").unwrap().unwrap();
        assert!((raw - 12.0).abs() < 1e-12);
        let fair = view.avg("income", &Predicate::True).unwrap().unwrap();
        assert!((fair - 20.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_sum_extrapolates() {
        let t = biased_sample();
        let spec = GroupSpec::new(vec!["g"]);
        let view = DebiasedView::new(&t, &spec, &population()).unwrap();
        // a population of 1000 people earning an average of 20 → 20 000
        let s = view
            .sum_scaled("income", &Predicate::True, 1_000.0)
            .unwrap();
        assert!((s - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn missing_or_invalid_population_rejected() {
        let t = biased_sample();
        let spec = GroupSpec::new(vec!["g"]);
        // missing group
        let mut m = BTreeMap::new();
        m.insert(GroupKey(vec![Value::str("maj")]), 1.0);
        assert!(post_stratification_weights(&t, &spec, &m).is_err());
        // doesn't sum to one
        let mut m = population();
        m.insert(GroupKey(vec![Value::str("maj")]), 0.9);
        assert!(post_stratification_weights(&t, &spec, &m).is_err());
    }
}
