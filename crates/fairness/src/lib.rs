//! # rdi-fairness
//!
//! Statistical machinery shared by the responsibility-aware components of
//! the RDI toolkit (tutorial §2):
//!
//! * [`distribution`] — discrete categorical distributions with smoothing
//!   and sampling;
//! * [`divergence`] — KL, Jensen–Shannon, total variation, χ², Hellinger,
//!   and 1-D earth mover's distance, used to test the *Underlying
//!   Distribution Representation* requirement (§2.1);
//! * [`association`] — Pearson/Spearman correlation, Cramér's V, and
//!   binned mutual information, used to find *Unbiased and Informative
//!   Features* (§2.3);
//! * [`metrics`] — group fairness metrics over prediction outcomes
//!   (demographic parity, equalized odds, per-group accuracy) and over
//!   query outputs (selection-rate disparity);
//! * [`debias`] — Themis-style post-stratification: weighted aggregates
//!   that answer queries about the *population* from a biased sample
//!   (tutorial §5, "fairness-aware query answering");
//! * [`tests_stat`] — χ² independence testing with p-values, so audits
//!   flag only statistically supported dependencies.

//!
//! ```
//! use rdi_fairness::{Categorical, kl_divergence, total_variation};
//!
//! let collected = Categorical::from_counts(&[90, 10]);
//! let population = Categorical::from_weights(&[0.5, 0.5]);
//! assert!(total_variation(&collected, &population) > 0.39);
//! assert!(kl_divergence(&population, &collected) > 0.3);
//! ```
#![warn(missing_docs)]

pub mod association;
pub mod debias;
pub mod distribution;
pub mod divergence;
pub mod metrics;
pub mod tests_stat;

pub use association::{cramers_v, mutual_information, pearson, spearman, table_association};
pub use debias::{post_stratification_weights, DebiasedView};
pub use distribution::Categorical;
pub use divergence::{
    chi_square, emd_1d, hellinger, js_divergence, kl_divergence, total_variation,
};
pub use metrics::{
    demographic_parity_difference, disparity, equalized_odds_difference, group_accuracy,
    GroupOutcomes,
};
pub use tests_stat::{chi2_sf, chi_square_test, ChiSquareTest};
