//! Association measures between attributes.
//!
//! The *Unbiased and Informative Features* requirement (tutorial §2.3) asks
//! for features **highly associated with the target** and **minimally
//! associated with sensitive attributes**. This module provides the
//! measures used to score that trade-off, for numeric–numeric
//! ([`pearson`], [`spearman`]), categorical–categorical ([`cramers_v`]),
//! and mixed ([`mutual_information`] with equi-width binning) pairs, plus
//! a convenience dispatcher over table columns ([`table_association`]).

use std::collections::BTreeMap;

use rdi_table::{DataType, Table};

/// Pearson correlation coefficient of paired samples.
///
/// Returns 0 for fewer than two pairs or when either side has zero
/// variance (no linear association measurable).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Average ranks, with ties receiving their midrank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = midrank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over midranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    pearson(&ranks(xs), &ranks(ys))
}

/// Cramér's V between two categorical variables given as label vectors.
///
/// `V ∈ [0, 1]`; 0 for independent, 1 for a perfect association. Returns 0
/// when either variable is constant.
pub fn cramers_v<A, B>(xs: &[A], ys: &[B]) -> f64
where
    A: Ord + Clone,
    B: Ord + Clone,
{
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    // BTreeMaps so the χ² accumulation below visits cells in sorted key
    // order — f64 addition is not associative, so iteration order is
    // part of the bitwise-determinism contract (lint rule R1).
    let mut joint: BTreeMap<(A, B), f64> = BTreeMap::new();
    let mut px: BTreeMap<A, f64> = BTreeMap::new();
    let mut py: BTreeMap<B, f64> = BTreeMap::new();
    for (x, y) in xs.iter().zip(ys) {
        *joint.entry((x.clone(), y.clone())).or_insert(0.0) += 1.0;
        *px.entry(x.clone()).or_insert(0.0) += 1.0;
        *py.entry(y.clone()).or_insert(0.0) += 1.0;
    }
    let r = px.len();
    let c = py.len();
    if r < 2 || c < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mut chi2 = 0.0;
    for (x, nx) in &px {
        for (y, ny) in &py {
            let expected = nx * ny / nf;
            let observed = joint.get(&(x.clone(), y.clone())).copied().unwrap_or(0.0);
            chi2 += (observed - expected).powi(2) / expected;
        }
    }
    let denom = nf * ((r - 1).min(c - 1)) as f64;
    (chi2 / denom).sqrt().clamp(0.0, 1.0)
}

/// Mutual information (nats) between two variables after discretizing each
/// numeric side into `bins` equi-width bins. Categorical sides use their
/// natural categories.
///
/// `MI ≥ 0`; 0 means (empirically) independent.
pub fn mutual_information(xs: &[f64], ys: &[f64], bins: usize) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    assert!(bins >= 1);
    let bx = discretize(xs, bins);
    let by = discretize(ys, bins);
    mutual_information_labels(&bx, &by)
}

/// Mutual information between two label vectors.
pub fn mutual_information_labels<A, B>(xs: &[A], ys: &[B]) -> f64
where
    A: Ord + Clone,
    B: Ord + Clone,
{
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    // Sorted iteration keeps the MI sum bitwise-deterministic (R1).
    let mut joint: BTreeMap<(A, B), f64> = BTreeMap::new();
    let mut px: BTreeMap<A, f64> = BTreeMap::new();
    let mut py: BTreeMap<B, f64> = BTreeMap::new();
    for (x, y) in xs.iter().zip(ys) {
        *joint.entry((x.clone(), y.clone())).or_insert(0.0) += 1.0;
        *px.entry(x.clone()).or_insert(0.0) += 1.0;
        *py.entry(y.clone()).or_insert(0.0) += 1.0;
    }
    let mut mi = 0.0;
    for ((x, y), nxy) in &joint {
        let pxy = nxy / nf;
        let p_x = px[x] / nf;
        let p_y = py[y] / nf;
        mi += pxy * (pxy / (p_x * p_y)).ln();
    }
    mi.max(0.0)
}

/// Equi-width binning of a numeric vector into `bins` integer labels.
pub fn discretize(xs: &[f64], bins: usize) -> Vec<usize> {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() || lo == hi {
        return vec![0; xs.len()];
    }
    let width = (hi - lo) / bins as f64;
    xs.iter()
        .map(|x| (((x - lo) / width) as usize).min(bins - 1))
        .collect()
}

/// Association between two table columns, choosing a measure by type:
/// numeric–numeric → |Pearson|; categorical–categorical → Cramér's V;
/// mixed → normalized mutual information proxy (both sides discretized to
/// ≤ 10 bins, MI scaled to `[0,1]` via `MI / min(H(X), H(Y))`).
///
/// Always in `[0, 1]` so scores are comparable across type combinations.
/// Rows where either cell is null are skipped.
pub fn table_association(table: &Table, a: &str, b: &str) -> rdi_table::Result<f64> {
    let fa = table.schema().field(a)?;
    let fb = table.schema().field(b)?;
    let ca = table.column(a)?;
    let cb = table.column(b)?;
    let numeric = |dt: DataType| matches!(dt, DataType::Int | DataType::Float | DataType::Bool);

    if numeric(fa.dtype) && numeric(fb.dtype) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..table.num_rows() {
            if let (Some(x), Some(y)) = (ca.value(i).as_f64(), cb.value(i).as_f64()) {
                xs.push(x);
                ys.push(y);
            }
        }
        return Ok(pearson(&xs, &ys).abs());
    }

    // At least one side categorical: work with label vectors.
    let labels = |col: &rdi_table::Column, dt: DataType| -> Vec<Option<String>> {
        (0..table.num_rows())
            .map(|i| {
                let v = col.value(i);
                if v.is_null() {
                    None
                } else if numeric(dt) {
                    // discretized later via numeric path
                    Some(v.to_string())
                } else {
                    Some(v.to_string())
                }
            })
            .collect()
    };

    if !numeric(fa.dtype) && !numeric(fb.dtype) {
        let la = labels(ca, fa.dtype);
        let lb = labels(cb, fb.dtype);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (x, y) in la.into_iter().zip(lb) {
            if let (Some(x), Some(y)) = (x, y) {
                xs.push(x);
                ys.push(y);
            }
        }
        return Ok(cramers_v(&xs, &ys));
    }

    // Mixed: discretize the numeric side, keep categories on the other.
    let (num_col, cat_col) = if numeric(fa.dtype) {
        (ca, cb)
    } else {
        (cb, ca)
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..table.num_rows() {
        let x = num_col.value(i).as_f64();
        let y = cat_col.value(i);
        if let (Some(x), false) = (x, y.is_null()) {
            xs.push(x);
            ys.push(y.to_string());
        }
    }
    if xs.is_empty() {
        return Ok(0.0);
    }
    let bx = discretize(&xs, 10);
    let mi = mutual_information_labels(&bx, &ys);
    let hx = entropy(&bx);
    let hy = entropy(&ys);
    let h = hx.min(hy);
    Ok(if h > 0.0 {
        (mi / h).clamp(0.0, 1.0)
    } else {
        0.0
    })
}

/// Shannon entropy (nats) of a label vector.
pub fn entropy<A: Ord + Clone>(xs: &[A]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<A, f64> = BTreeMap::new();
    for x in xs {
        *counts.entry(x.clone()).or_insert(0.0) += 1.0;
    }
    let n = xs.len() as f64;
    -counts
        .values()
        .map(|c| {
            let p = c / n;
            p * p.ln()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rdi_table::{Field, Schema, Value};

    #[test]
    fn pearson_perfect_linear() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let xs = vec![1.0, 1.0, 1.0];
        let ys = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: Vec<f64> = (1..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn cramers_v_extremes() {
        // perfect association
        let xs = vec!["a", "a", "b", "b"];
        let ys = vec!["p", "p", "q", "q"];
        assert!((cramers_v(&xs, &ys) - 1.0).abs() < 1e-9);
        // independence
        let xs = vec!["a", "a", "b", "b"];
        let ys = vec!["p", "q", "p", "q"];
        assert!(cramers_v(&xs, &ys).abs() < 1e-9);
        // constant variable
        let xs = vec!["a", "a"];
        let ys = vec!["p", "q"];
        assert_eq!(cramers_v(&xs, &ys), 0.0);
    }

    #[test]
    fn mi_independent_vs_dependent() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        let same = xs.clone();
        let indep: Vec<f64> = (0..200).map(|i| ((i / 2) % 2) as f64).collect();
        assert!(mutual_information(&xs, &same, 2) > 0.6);
        assert!(mutual_information(&xs, &indep, 2) < 1e-9);
    }

    #[test]
    fn discretize_bins_cover_range() {
        let b = discretize(&[0.0, 5.0, 10.0], 2);
        assert_eq!(b, vec![0, 1, 1]);
        assert_eq!(discretize(&[3.0, 3.0], 4), vec![0, 0]);
    }

    #[test]
    fn table_association_dispatch() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("g", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            let g = if i % 2 == 0 { "even" } else { "odd" };
            t.push_row(vec![Value::Float(x), Value::Float(2.0 * x), Value::str(g)])
                .unwrap();
        }
        let nn = table_association(&t, "x", "y").unwrap();
        assert!((nn - 1.0).abs() < 1e-9);
        // x is uncorrelated with parity labels at 10 equi-width bins
        let mixed = table_association(&t, "x", "g").unwrap();
        assert!(mixed < 0.1, "mixed={mixed}");
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let xs = vec![0, 1, 2, 3];
        assert!((entropy(&xs) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(entropy(&[1, 1, 1]), 0.0);
    }

    proptest! {
        #[test]
        fn pearson_bounded(xs in prop::collection::vec(-100.0f64..100.0, 2..50),
                           ys in prop::collection::vec(-100.0f64..100.0, 2..50)) {
            let k = xs.len().min(ys.len());
            let r = pearson(&xs[..k], &ys[..k]);
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn mi_nonnegative_and_symmetric(pairs in prop::collection::vec((0u8..4, 0u8..4), 1..100)) {
            let xs: Vec<u8> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<u8> = pairs.iter().map(|p| p.1).collect();
            let a = mutual_information_labels(&xs, &ys);
            let b = mutual_information_labels(&ys, &xs);
            prop_assert!(a >= 0.0);
            prop_assert!((a - b).abs() < 1e-9);
            // MI ≤ min entropy
            prop_assert!(a <= entropy(&xs).min(entropy(&ys)) + 1e-9);
        }

        /// Sorted (BTreeMap) accumulation makes every association measure
        /// *bitwise* invariant under row permutation: the f64 sums visit
        /// identical cells in identical order regardless of how the input
        /// rows were ordered. Guards the R1 (hash-collection) conversion.
        #[test]
        fn association_bitwise_invariant_under_row_order(
            pairs in prop::collection::vec((0u8..4, 0u8..4), 2..100),
            rot in 0usize..100,
        ) {
            let xs: Vec<u8> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<u8> = pairs.iter().map(|p| p.1).collect();
            let k = rot % pairs.len();
            let mut xr = xs.clone();
            let mut yr = ys.clone();
            xr.rotate_left(k);
            yr.rotate_left(k);
            prop_assert_eq!(cramers_v(&xs, &ys).to_bits(), cramers_v(&xr, &yr).to_bits());
            prop_assert_eq!(
                mutual_information_labels(&xs, &ys).to_bits(),
                mutual_information_labels(&xr, &yr).to_bits()
            );
            prop_assert_eq!(entropy(&xs).to_bits(), entropy(&xr).to_bits());
            // Reversal, a parity-odd permutation rotation cannot express.
            let xv: Vec<u8> = xs.iter().rev().copied().collect();
            let yv: Vec<u8> = ys.iter().rev().copied().collect();
            prop_assert_eq!(cramers_v(&xs, &ys).to_bits(), cramers_v(&xv, &yv).to_bits());
        }

        #[test]
        fn cramers_v_bounded(pairs in prop::collection::vec((0u8..3, 0u8..3), 1..100)) {
            let xs: Vec<u8> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<u8> = pairs.iter().map(|p| p.1).collect();
            let v = cramers_v(&xs, &ys);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
