//! Discrete categorical distributions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A discrete probability distribution over `k` categories, stored densely.
///
/// Categories are indexed `0..k`; the mapping from domain values to indices
/// is owned by the caller (e.g. [`rdi_table::GroupKey`] order). Probabilities
/// always sum to 1 (enforced at construction by normalization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    probs: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (normalized to sum to 1).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && sum > 0.0,
            "weights must be non-negative, finite, and not all zero"
        );
        Categorical {
            probs: weights.iter().map(|w| w / sum).collect(),
        }
    }

    /// Build from integer counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        let w: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        Categorical::from_weights(&w)
    }

    /// Uniform distribution over `k` categories.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0);
        Categorical {
            probs: vec![1.0 / k as f64; k],
        }
    }

    /// Build from counts with additive (Laplace) smoothing `alpha`.
    ///
    /// Smoothing keeps divergence computations finite when an empirical
    /// distribution has empty categories.
    pub fn from_counts_smoothed(counts: &[usize], alpha: f64) -> Self {
        let w: Vec<f64> = counts.iter().map(|&c| c as f64 + alpha).collect();
        Categorical::from_weights(&w)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True iff the distribution has no categories (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of category `i`.
    pub fn p(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Sample a category index using the supplied uniform variate
    /// `u ∈ [0, 1)`. Deterministic given `u`; pair with any RNG.
    pub fn sample_with(&self, u: f64) -> usize {
        let mut acc = 0.0;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        self.probs.len() - 1
    }

    /// Sample using an RNG from the `rand` ecosystem.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_with(rng.gen::<f64>())
    }

    /// Index of the most probable category.
    pub fn argmax(&self) -> usize {
        // `probs` is non-empty by construction; 0 is unreachable.
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Mix with another distribution: `(1-w)·self + w·other`.
    ///
    /// # Panics
    /// Panics if lengths differ or `w ∉ [0,1]`.
    pub fn mix(&self, other: &Categorical, w: f64) -> Categorical {
        assert_eq!(self.len(), other.len());
        assert!((0.0..=1.0).contains(&w));
        Categorical {
            probs: self
                .probs
                .iter()
                .zip(&other.probs)
                .map(|(a, b)| (1.0 - w) * a + w * b)
                .collect(),
        }
    }
}

/// Build aligned dense distributions from two count maps over the same
/// (unioned) domain. Returns `(domain, p, q)` with the domain sorted for
/// determinism.
pub fn align_counts<K: Ord + Clone>(
    p_counts: &BTreeMap<K, usize>,
    q_counts: &BTreeMap<K, usize>,
    alpha: f64,
) -> (Vec<K>, Categorical, Categorical) {
    let mut domain: Vec<K> = p_counts.keys().chain(q_counts.keys()).cloned().collect();
    domain.sort();
    domain.dedup();
    let p: Vec<usize> = domain
        .iter()
        .map(|k| p_counts.get(k).copied().unwrap_or(0))
        .collect();
    let q: Vec<usize> = domain
        .iter()
        .map(|k| q_counts.get(k).copied().unwrap_or(0))
        .collect();
    (
        domain,
        Categorical::from_counts_smoothed(&p, alpha),
        Categorical::from_counts_smoothed(&q, alpha),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_weights() {
        let d = Categorical::from_weights(&[2.0, 2.0]);
        assert_eq!(d.probs(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero() {
        Categorical::from_weights(&[0.0, 0.0]);
    }

    #[test]
    fn smoothing_fills_empty_categories() {
        let d = Categorical::from_counts_smoothed(&[0, 10], 1.0);
        assert!(d.p(0) > 0.0);
        assert!((d.p(0) + d.p(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_with_respects_cdf() {
        let d = Categorical::from_weights(&[0.25, 0.5, 0.25]);
        assert_eq!(d.sample_with(0.0), 0);
        assert_eq!(d.sample_with(0.3), 1);
        assert_eq!(d.sample_with(0.9), 2);
        assert_eq!(d.sample_with(0.999999), 2);
    }

    #[test]
    fn empirical_sampling_converges() {
        let d = Categorical::from_weights(&[0.2, 0.8]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn mix_interpolates() {
        let a = Categorical::from_weights(&[1.0, 0.0001]);
        let b = Categorical::uniform(2);
        let m = a.mix(&b, 1.0);
        assert_eq!(m, b);
    }

    #[test]
    fn align_counts_unions_domains() {
        let mut p = BTreeMap::new();
        p.insert("a", 3usize);
        let mut q = BTreeMap::new();
        q.insert("b", 3usize);
        let (dom, pd, qd) = align_counts(&p, &q, 0.5);
        assert_eq!(dom, vec!["a", "b"]);
        assert!(pd.p(0) > pd.p(1));
        assert!(qd.p(1) > qd.p(0));
    }

    #[test]
    fn argmax_picks_mode() {
        let d = Categorical::from_weights(&[0.1, 0.7, 0.2]);
        assert_eq!(d.argmax(), 1);
    }
}
