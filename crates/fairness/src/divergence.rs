//! Divergences and distances between discrete distributions.
//!
//! Used throughout the toolkit to quantify how far a collected/integrated
//! data set is from a desired underlying distribution (tutorial §2.1), and
//! by `rdi-entitycollect` as the objective of distribution-aware entity
//! collection (§4.1).

use crate::distribution::Categorical;

fn check_aligned(p: &Categorical, q: &Categorical) {
    assert_eq!(
        p.len(),
        q.len(),
        "distributions must be over the same domain"
    );
}

/// Kullback–Leibler divergence `KL(p ‖ q) = Σ pᵢ ln(pᵢ/qᵢ)` in nats.
///
/// Returns `f64::INFINITY` when some `pᵢ > 0` has `qᵢ = 0`; callers that
/// need finiteness should smooth `q` first
/// (see [`Categorical::from_counts_smoothed`]).
pub fn kl_divergence(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    let mut s = 0.0;
    for (pi, qi) in p.probs().iter().zip(q.probs()) {
        if *pi > 0.0 {
            if *qi == 0.0 {
                return f64::INFINITY;
            }
            s += pi * (pi / qi).ln();
        }
    }
    s.max(0.0)
}

/// Jensen–Shannon divergence (symmetric, bounded by `ln 2`).
pub fn js_divergence(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    let m = p.mix(q, 0.5);
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Total variation distance `½ Σ |pᵢ − qᵢ| ∈ [0, 1]`.
pub fn total_variation(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    0.5 * p
        .probs()
        .iter()
        .zip(q.probs())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Pearson χ² divergence `Σ (pᵢ − qᵢ)²/qᵢ` (infinite if some `qᵢ = 0` with
/// `pᵢ ≠ qᵢ`).
pub fn chi_square(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    let mut s = 0.0;
    for (pi, qi) in p.probs().iter().zip(q.probs()) {
        if *qi == 0.0 {
            if *pi != 0.0 {
                return f64::INFINITY;
            }
        } else {
            s += (pi - qi).powi(2) / qi;
        }
    }
    s
}

/// Hellinger distance `(1/√2)·‖√p − √q‖₂ ∈ [0, 1]`.
pub fn hellinger(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    let s: f64 = p
        .probs()
        .iter()
        .zip(q.probs())
        .map(|(a, b)| (a.sqrt() - b.sqrt()).powi(2))
        .sum();
    (s / 2.0).sqrt()
}

/// 1-D earth mover's (Wasserstein-1) distance between distributions over an
/// *ordered* domain with unit spacing: `Σᵢ |CDF_p(i) − CDF_q(i)|`.
pub fn emd_1d(p: &Categorical, q: &Categorical) -> f64 {
    check_aligned(p, q);
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut s = 0.0;
    for (pi, qi) in p.probs().iter().zip(q.probs()) {
        cp += pi;
        cq += qi;
        s += (cp - cq).abs();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(w: &[f64]) -> Categorical {
        Categorical::from_weights(w)
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = d(&[0.3, 0.7]);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let q = d(&[0.5, 0.5]);
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[1.0, 1e-300]);
        assert!(kl_divergence(&p, &q).is_finite());
        let q0 = Categorical::from_weights(&[1.0, 0.0]);
        assert!(kl_divergence(&p, &q0).is_infinite());
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = d(&[0.9, 0.1]);
        let q = d(&[0.1, 0.9]);
        let a = js_divergence(&p, &q);
        let b = js_divergence(&q, &p);
        assert!((a - b).abs() < 1e-12);
        assert!(a <= std::f64::consts::LN_2 + 1e-12);
    }

    #[test]
    fn tv_of_disjoint_is_one() {
        let p = Categorical::from_weights(&[1.0, 0.0]);
        let q = Categorical::from_weights(&[0.0, 1.0]);
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert!((hellinger(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_respects_order() {
        // moving mass one bin costs less than moving it two bins
        let p = Categorical::from_weights(&[1.0, 0.0, 0.0]);
        let near = Categorical::from_weights(&[0.0, 1.0, 0.0]);
        let far = Categorical::from_weights(&[0.0, 0.0, 1.0]);
        assert!(emd_1d(&p, &near) < emd_1d(&p, &far));
        assert!((emd_1d(&p, &far) - 2.0).abs() < 1e-12);
        // TV cannot tell them apart
        assert_eq!(total_variation(&p, &near), total_variation(&p, &far));
    }

    #[test]
    #[should_panic(expected = "same domain")]
    fn mismatched_domains_panic() {
        kl_divergence(&d(&[1.0]), &d(&[0.5, 0.5]));
    }

    proptest! {
        #[test]
        fn divergence_axioms(ws in prop::collection::vec(0.01f64..10.0, 2..6),
                             vs in prop::collection::vec(0.01f64..10.0, 2..6)) {
            let k = ws.len().min(vs.len());
            let p = d(&ws[..k]);
            let q = d(&vs[..k]);
            // non-negativity
            prop_assert!(kl_divergence(&p, &q) >= 0.0);
            prop_assert!(js_divergence(&p, &q) >= -1e-12);
            prop_assert!(total_variation(&p, &q) >= 0.0);
            prop_assert!(hellinger(&p, &q) >= 0.0);
            // identity of indiscernibles (p,p)
            prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
            prop_assert!(total_variation(&p, &p).abs() < 1e-12);
            // bounds
            prop_assert!(total_variation(&p, &q) <= 1.0 + 1e-12);
            prop_assert!(hellinger(&p, &q) <= 1.0 + 1e-12);
            // Pinsker: TV ≤ sqrt(KL/2)
            let kl = kl_divergence(&p, &q);
            prop_assert!(total_variation(&p, &q) <= (kl / 2.0).sqrt() + 1e-9);
        }
    }
}
