//! Offline API-compatible subset of `proptest` (see CONTRIBUTING.md,
//! "Offline builds").
//!
//! Implements the slice of the proptest API this workspace uses:
//! ranged numeric strategies, `Just`, simple `[class]{m,n}` regex string
//! strategies, `collection::vec`, tuples of strategies, `prop_map` /
//! `prop_flat_map` / `boxed`, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Test cases are generated from a deterministic RNG seeded from the
//! test function's name, so runs are reproducible; there is no failure
//! persistence or shrinking.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// A source of generated values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply produces a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and sample it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// A type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// String strategy from a regex literal. Supports the subset the
/// workspace uses: a character-class atom with an optional repetition,
/// e.g. `"[a-z]{0,8}"`, `"[a-z0-9]{1,4}"`, or `"[abc]"`.
impl Strategy for &'static str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next();
            if let Some(&hi) = ahead.peek() {
                it.next();
                it.next();
                for code in c as u32..=hi as u32 {
                    chars.push(char::from_u32(code)?);
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, min, max))
}

/// Weighted union of strategies; the expansion target of `prop_oneof!`.
pub struct Union<T>(Vec<(u32, BoxedStrategy<T>)>);

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` pairs.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.0.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total.max(1));
        for (w, s) in &self.0 {
            if pick < *w as u64 {
                return s.gen(rng);
            }
            pick -= *w as u64;
        }
        self.0[self.0.len() - 1].1.gen(rng)
    }
}

/// `any::<T>()` support: types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over a type's entire value space.
#[derive(Clone, Copy, Debug)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty : $gen:expr),+ $(,)?) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_ints! {
    bool: |rng| rng.next_u64() & 1 == 1,
    u8: |rng| rng.next_u64() as u8,
    u16: |rng| rng.next_u64() as u16,
    u32: |rng| rng.next_u64() as u32,
    u64: |rng| rng.next_u64(),
    usize: |rng| rng.next_u64() as usize,
    i8: |rng| rng.next_u64() as i8,
    i16: |rng| rng.next_u64() as i16,
    i32: |rng| rng.next_u64() as i32,
    i64: |rng| rng.next_u64() as i64,
    isize: |rng| rng.next_u64() as isize,
    f64: |rng| f64::from_bits(rng.next_u64()),
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification for [`vec()`]: a fixed size, `lo..hi`, or
    /// `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = super::Rng::gen_range(rng, self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// `bool` strategies (`prop::bool`).
pub mod bool {
    /// Strategy generating both booleans.
    pub const ANY: super::FullRange<bool> = super::FullRange(std::marker::PhantomData);
}

/// Runner configuration and test-case plumbing.
pub mod test_runner {
    use super::*;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Result of running a single test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG driving value generation, seeded deterministically from
    /// the test name.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Everything a `use proptest::prelude::*;` caller expects.
pub mod prelude {
    pub use super::test_runner::{TestCaseError, TestCaseResult};
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use super::super::bool;
        pub use super::super::collection;
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // `#[test]` is written explicitly inside the block (upstream
        // proptest style), so it arrives via `$meta` — don't add one.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = $crate::Strategy::gen(&__strategies, &mut __rng);
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside `proptest!`, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Choose among weighted strategy arms. Supports `strategy` arms and
/// `weight => strategy` arms; all arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_strategy_parses_class_and_counts() {
        let (chars, min, max) = parse_simple_regex("[a-z0-9]{0,8}").unwrap();
        assert_eq!(chars.len(), 36);
        assert_eq!((min, max), (0, 8));
        let (chars, min, max) = parse_simple_regex("[ab]").unwrap();
        assert_eq!(chars, vec!['a', 'b']);
        assert_eq!((min, max), (1, 1));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = (0u64..100, "[a-z]{1,4}");
        assert_eq!(s.gen(&mut a).0, s.gen(&mut b).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3i64..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_oneof_work(
            v in prop::collection::vec((0.0f64..5.0, prop::bool::ANY), 2..6),
            s in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s == 1 || s == 2);
            if s == 2 {
                return Ok(());
            }
            prop_assert_eq!(s, 1u8);
        }
    }
}
