//! Offline drop-in subset of `serde_json`, wired in under the dependency
//! name `serde_json` (see CONTRIBUTING.md, "Offline builds").
//!
//! Provides [`Value`] (the compat serde crate's JSON tree), compact and
//! pretty writers, and a strict recursive-descent parser, all over the
//! same `Serialize`/`Deserialize` traits the rest of the workspace uses.

#![warn(missing_docs)]

pub use serde::Error;
/// A parsed JSON value (alias of the compat serde data model).
pub use serde::Json as Value;
use serde::{Deserialize, Json, Serialize};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON text (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

// ---------------------------------------------------------------- writer

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::I64(i) => out.push_str(&i.to_string()),
        Json::U64(u) => out.push_str(&u.to_string()),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                seq_sep(out, indent, depth + 1, i == 0);
                write_json(item, out, indent, depth + 1);
            }
        }),
        Json::Obj(fields) => write_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
            for (i, (k, item)) in fields.iter().enumerate() {
                seq_sep(out, indent, depth + 1, i == 0);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(item, out, indent, depth + 1);
            }
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn seq_sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep floats recognizable as floats on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; mirror the data model's closest value.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are unsupported; the writer
                            // never emits them (it escapes only controls).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_value_kinds() {
        let v = Value::Obj(vec![
            ("null".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
            ("int".into(), Value::I64(-42)),
            ("big".into(), Value::U64(u64::MAX)),
            ("float".into(), Value::F64(2.5)),
            ("text".into(), Value::Str("a \"b\"\n\tc \\ ü".into())),
            (
                "arr".into(),
                Value::Arr(vec![Value::I64(1), Value::Str("two".into())]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "failed on: {text}");
        }
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(text, "3.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::F64(3.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Obj(vec![("a".into(), Value::Arr(vec![Value::I64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
