//! Criterion bench: serial vs `rdi-par` parallel execution of the four
//! routed kernels — column sketching, MUP enumeration, Olken sampling,
//! and population generation — at 1, 2, and 4 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdi_coverage::CoverageAnalyzer;
use rdi_datagen::{LakeConfig, PopulationSpec, SyntheticLake};
use rdi_discovery::TableSignature;
use rdi_joinsample::{olken_sample_par, JoinIndex};
use rdi_par::Threads;
use rdi_table::{DataType, Field, Schema, Table, Value};

fn bench_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("par");
    group.sample_size(10);

    let lake = SyntheticLake::generate_par(
        &LakeConfig {
            num_candidates: 20,
            query_keys: 1_000,
            candidate_rows: 2_000,
            joinable_fraction: 0.4,
        },
        7,
        Threads::serial(),
    );
    let mut left = Table::new(Schema::new(vec![Field::new("k", DataType::Int)]));
    let mut right = Table::new(Schema::new(vec![Field::new("k", DataType::Int)]));
    for k in 0..200i64 {
        left.push_row(vec![Value::Int(k)]).unwrap();
        for _ in 0..=(k % 10) {
            right.push_row(vec![Value::Int(k)]).unwrap();
        }
    }
    let idx = JoinIndex::build(&right, "k").unwrap();
    let spec = PopulationSpec::two_group(0.2);

    for tc in [1usize, 2, 4] {
        let threads = Threads::fixed(tc);
        group.bench_function(BenchmarkId::new("sketch_lake", tc), |b| {
            b.iter(|| {
                let mut sigs = Vec::with_capacity(lake.candidates.len());
                for c in &lake.candidates {
                    sigs.push(TableSignature::build_with(&c.name, &c.table, 128, threads).unwrap());
                }
                sigs
            })
        });
        group.bench_function(BenchmarkId::new("olken_sample_50k", tc), |b| {
            b.iter(|| olken_sample_par(&left, "k", &idx, 50_000, 3, threads).unwrap())
        });
        group.bench_function(BenchmarkId::new("population_gen_50k", tc), |b| {
            b.iter(|| spec.generate_par(50_000, 11, threads))
        });
    }

    // MUP search over a modest lattice (the batched counts dominate)
    let fields = (0..6)
        .map(|i| Field::new(format!("a{i}"), DataType::Str))
        .collect();
    let mut t = Table::new(Schema::new(fields));
    for r in 0..5_000usize {
        let row: Vec<Value> = (0..6)
            .map(|c| Value::str(((r * 31 + c * 17) % 3).to_string()))
            .collect();
        t.push_row(row).unwrap();
    }
    let attrs: Vec<String> = (0..6).map(|i| format!("a{i}")).collect();
    let attrs_ref: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let an = CoverageAnalyzer::new(&t, &attrs_ref, 25).unwrap();
    for tc in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("mup_pattern_breaker", tc), |b| {
            b.iter(|| an.mups_pattern_breaker_with(Threads::fixed(tc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par);
criterion_main!(benches);
