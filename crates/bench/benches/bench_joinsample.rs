//! Criterion bench: join-sampling throughput — accept-reject vs weighted
//! vs wander walks vs full hash join (the E7b ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_joinsample::{
    chaudhuri_sample, olken_sample, union_sample, ExactChainSampler, JoinIndex, ReservoirSampler,
    WanderJoin,
};
use rdi_table::{hash_join, DataType, Field, Schema, Table, Value};

fn keyed(n: usize, max_mult: usize) -> (Table, Table) {
    let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
    let mut left = Table::new(schema.clone());
    let mut right = Table::new(schema);
    for k in 0..n {
        left.push_row(vec![Value::Int(k as i64)]).unwrap();
        for _ in 0..(k % max_mult) + 1 {
            right.push_row(vec![Value::Int(k as i64)]).unwrap();
        }
    }
    (left, right)
}

fn bench_sampling(c: &mut Criterion) {
    let (left, right) = keyed(10_000, 10);
    let idx = JoinIndex::build(&right, "k").unwrap();
    let mut group = c.benchmark_group("join_sampling");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("olken", 1000), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            olken_sample(&left, "k", &idx, 1_000, &mut rng).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("chaudhuri", 1000), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            chaudhuri_sample(&left, "k", &idx, 1_000, &mut rng).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("wander_walks", 1000), |b| {
        let wj = WanderJoin::new(vec![&left, &right], &[("k", "k")]).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            wj.count_estimate(1_000, &mut rng)
        })
    });
    group.bench_function("full_hash_join", |b| {
        b.iter(|| hash_join(&left, &right, "k", "k").unwrap())
    });
    group.bench_function("index_build", |b| {
        b.iter(|| JoinIndex::build(&right, "k").unwrap())
    });
    group.bench_function(BenchmarkId::new("exact_chain", 1000), |b| {
        let sampler = ExactChainSampler::new(vec![&left, &right], &[("k", "k")]).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            sampler.sample_n(1_000, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("union_sample", 1000), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            union_sample(&[&left, &right], 1_000, &mut rng).unwrap()
        })
    });
    group.bench_function("reservoir_100k_stream", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut r = ReservoirSampler::new(1_000);
            for i in 0..100_000u32 {
                r.offer(i, &mut rng);
            }
            r.into_sample()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
