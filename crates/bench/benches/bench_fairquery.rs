//! Criterion bench: fairness-aware range queries — exact O(n²) search vs
//! the greedy heuristic (E10b measured properly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_fairquery::RangeQueryEngine;

fn engine(n: usize) -> RangeQueryEngine {
    let mut rng = StdRng::seed_from_u64(3);
    RangeQueryEngine::from_points(
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    (22.0 + rng.gen::<f64>() * 20.0, true)
                } else {
                    (30.0 + rng.gen::<f64>() * 30.0, false)
                }
            })
            .collect(),
    )
}

fn bench_fair_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_range");
    group.sample_size(10);
    for n in [500usize, 1_000, 2_000] {
        let e = engine(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &e, |b, e| {
            b.iter(|| e.fair_range_exact(35.0, 55.0, 10))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &e, |b, e| {
            b.iter(|| e.fair_range_greedy(35.0, 55.0, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fair_range);
criterion_main!(benches);
