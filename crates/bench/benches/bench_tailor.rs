//! Criterion bench: distribution-tailoring policies — per-run cost is the
//! experiment (E5); here we measure wall-clock per tailoring run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::prelude::*;

fn source_table(frac_min: f64, n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let g = if (i as f64) < frac_min * n as f64 {
            "min"
        } else {
            "maj"
        };
        t.push_row(vec![Value::str(g)]).unwrap();
    }
    t
}

fn problem() -> DtProblem {
    DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 100),
            (GroupKey(vec![Value::str("min")]), 100),
        ],
    )
}

fn bench_policies(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("tailoring_run");
    group.sample_size(10);
    for (name, mk) in [
        (
            "ratio_coll",
            Box::new(|s: &[TableSource]| Box::new(RatioColl::from_sources(s)) as Box<dyn Policy>)
                as Box<dyn Fn(&[TableSource]) -> Box<dyn Policy>>,
        ),
        (
            "ucb",
            Box::new(|s: &[TableSource]| {
                Box::new(UcbColl::from_sources(s, 2, 1.4)) as Box<dyn Policy>
            }),
        ),
        (
            "random",
            Box::new(|s: &[TableSource]| Box::new(RandomPolicy::new(s.len())) as Box<dyn Policy>),
        ),
    ] {
        group.bench_function(BenchmarkId::new("policy", name), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut sources = vec![
                    TableSource::new("a", source_table(0.05, 2_000), 1.0, &p).unwrap(),
                    TableSource::new("b", source_table(0.30, 2_000), 1.0, &p).unwrap(),
                    TableSource::new("c", source_table(0.01, 2_000), 1.0, &p).unwrap(),
                ];
                let mut policy = mk(&sources);
                run_tailoring(&mut sources, &p, policy.as_mut(), &mut rng, 1_000_000).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
