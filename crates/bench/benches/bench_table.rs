//! Criterion bench: table substrate hot paths — filter, hash join,
//! group counts, CSV round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_table::{
    hash_join, read_csv_str, write_csv_string, DataType, Field, GroupSpec, Predicate, Role, Schema,
    Table, Value,
};

fn people(n: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(4);
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("g", DataType::Str).with_role(Role::Sensitive),
        Field::new("x", DataType::Float),
    ]);
    let mut t = Table::with_capacity(schema, n);
    for i in 0..n {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(if rng.gen::<f64>() < 0.1 { "min" } else { "maj" }),
            Value::Float(rng.gen::<f64>() * 100.0),
        ])
        .unwrap();
    }
    t
}

fn bench_table(c: &mut Criterion) {
    let t = people(100_000);
    let mut group = c.benchmark_group("table");
    group.sample_size(10);

    group.bench_function("filter_range_100k", |b| {
        let p = Predicate::between("x", Value::Float(25.0), Value::Float(75.0));
        b.iter(|| t.filter(&p))
    });
    group.bench_function("group_counts_100k", |b| {
        let spec = GroupSpec::new(vec!["g"]);
        b.iter(|| spec.counts(&t).unwrap())
    });
    group.bench_function("hash_join_10k_x_10k", |b| {
        let small = t.take(&(0..10_000).collect::<Vec<_>>());
        b.iter(|| hash_join(&small, &small, "id", "id").unwrap())
    });
    group.bench_function("csv_roundtrip_10k", |b| {
        let small = t.take(&(0..10_000).collect::<Vec<_>>());
        b.iter(|| {
            let s = write_csv_string(&small);
            read_csv_str(&s).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table);
criterion_main!(benches);
