//! Criterion bench: MUP discovery — Pattern-Breaker vs naive lattice
//! scan (the E2 ablation, measured properly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_coverage::CoverageAnalyzer;
use rdi_table::{DataType, Field, Schema, Table, Value};

fn skewed_table(n: usize, d: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(1);
    let fields = (0..d)
        .map(|i| Field::new(format!("a{i}"), DataType::Str))
        .collect();
    let mut t = Table::new(Schema::new(fields));
    for _ in 0..n {
        let row: Vec<Value> = (0..d)
            .map(|_| {
                let u: f64 = rng.gen();
                Value::str(if u < 0.7 {
                    "0"
                } else if u < 0.95 {
                    "1"
                } else {
                    "2"
                })
            })
            .collect();
        t.push_row(row).unwrap();
    }
    t
}

fn bench_mup(c: &mut Criterion) {
    let mut group = c.benchmark_group("mup_discovery");
    group.sample_size(10);
    for d in [4usize, 5, 6] {
        let t = skewed_table(5_000, d);
        let attrs: Vec<String> = (0..d).map(|i| format!("a{i}")).collect();
        let attrs_ref: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let an = CoverageAnalyzer::new(&t, &attrs_ref, 25).unwrap();
        group.bench_with_input(BenchmarkId::new("pattern_breaker", d), &an, |b, an| {
            b.iter(|| an.mups_pattern_breaker())
        });
        group.bench_with_input(BenchmarkId::new("naive", d), &an, |b, an| {
            b.iter(|| an.mups_naive())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mup);
criterion_main!(benches);
