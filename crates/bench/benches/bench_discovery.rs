//! Criterion bench: discovery — sketch construction, LSH-Ensemble query
//! vs exact overlap scan (E8 ablation: single-band-scheme LSH vs the
//! size-partitioned ensemble).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_datagen::{LakeConfig, SyntheticLake};
use rdi_discovery::{
    match_schemas, CorrelationSketch, KeywordIndex, LshEnsemble, MinHash, MinHashLsh, Navigator,
    OverlapIndex, TableSignature,
};

fn lake() -> SyntheticLake {
    SyntheticLake::generate(
        &LakeConfig {
            num_candidates: 100,
            query_keys: 1_000,
            candidate_rows: 2_000,
            joinable_fraction: 0.4,
        },
        &mut StdRng::seed_from_u64(2),
    )
}

fn bench_discovery(c: &mut Criterion) {
    let lake = lake();
    let k = 128;
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("minhash_build_2000rows", |b| {
        b.iter(|| MinHash::from_column(&lake.candidates[0].table, "key", k).unwrap())
    });
    group.bench_function("correlation_sketch_build", |b| {
        b.iter(|| CorrelationSketch::build(&lake.candidates[0].table, "key", "feat", 256).unwrap())
    });

    // prebuild indexes
    let sigs: Vec<(MinHash, usize)> = lake
        .candidates
        .iter()
        .map(|c| {
            (
                MinHash::from_column(&c.table, "key", k).unwrap(),
                c.table.distinct("key").unwrap().len(),
            )
        })
        .collect();
    let mut ensemble = LshEnsemble::new(k, 0.5, 8, 1_000_000);
    let mut flat = MinHashLsh::tuned(k, 0.5);
    let mut exact = OverlapIndex::new();
    for (i, (s, size)) in sigs.iter().enumerate() {
        ensemble.insert(i, s.clone(), *size);
        flat.insert(s.clone());
        exact
            .insert(format!("c{i}"), &lake.candidates[i].table, "key")
            .unwrap();
    }
    ensemble.build(lake.query.num_rows());
    let qsig = MinHash::from_column(&lake.query, "key", k).unwrap();

    group.bench_function(BenchmarkId::new("query", "lsh_ensemble"), |b| {
        b.iter(|| ensemble.query(&qsig, lake.query.num_rows()))
    });
    group.bench_function(BenchmarkId::new("query", "flat_lsh"), |b| {
        b.iter(|| flat.query(&qsig))
    });
    group.bench_function(BenchmarkId::new("query", "exact_overlap"), |b| {
        b.iter(|| exact.overlaps(&lake.query, "key").unwrap())
    });

    // keyword search over the lake
    let mut kw = KeywordIndex::new();
    for (i, c) in lake.candidates.iter().enumerate() {
        kw.insert(format!("cand_{i}"), &c.table, 50);
    }
    group.bench_function(BenchmarkId::new("query", "keyword_bm25"), |b| {
        b.iter(|| kw.search("key feat cand", 10))
    });

    // schema matching between two candidate tables
    group.bench_function("schema_match_2x2cols", |b| {
        b.iter(|| {
            match_schemas(
                &lake.candidates[0].table,
                &lake.candidates[1].table,
                0.5,
                64,
                0.1,
            )
            .unwrap()
        })
    });

    // navigation over a 30-table organization
    let sigs: Vec<TableSignature> = lake
        .candidates
        .iter()
        .take(30)
        .enumerate()
        .map(|(i, c)| TableSignature::build(format!("t{i}"), &c.table, 64).unwrap())
        .collect();
    let qsig_t = TableSignature::build("q", &lake.query, 64).unwrap();
    group.bench_function("navigator_build_30_tables", |b| {
        b.iter(|| Navigator::build(sigs.clone()))
    });
    let nav = Navigator::build(sigs);
    group.bench_function(BenchmarkId::new("query", "navigate"), |b| {
        b.iter(|| nav.navigate(&qsig_t))
    });
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
