//! # rdi-bench
//!
//! Experiment harnesses and benchmarks for the RDI toolkit.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one experiment from
//! `EXPERIMENTS.md` (E1–E14) and prints the result as a markdown table;
//! the Criterion benches in `benches/` measure the hot algorithms.
//! Everything is seeded — reruns are bit-for-bit reproducible.

#![warn(missing_docs)]

/// Print a markdown table: header row + rows, all pre-formatted strings.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// Format a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float to 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Marker prefixing the metrics line every `exp_*` binary prints last,
/// so scripts (and the `validate_metrics` CI helper) can find it
/// without parsing the human-readable tables above it.
pub const METRICS_MARKER: &str = "METRICS_SNAPSHOT ";

/// Print the global [`rdi_obs`] registry as one `METRICS_SNAPSHOT
/// {json}` line. Every `exp_*` binary calls this as its final
/// statement, making each experiment's counters machine-readable.
pub fn emit_metrics_snapshot() {
    println!("\n{}{}", METRICS_MARKER, rdi_obs::global().snapshot_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
