//! E8 (§3.1): discovery sketches vs exact search.
//!
//! (a) LSH Ensemble containment search: precision/recall vs the exact
//!     overlap index at several containment thresholds (Zhu et al. shape:
//!     high recall, precision recovered by post-filtering);
//! (b) correlation sketches: join-correlation estimation error shrinks
//!     with sketch size (Santos et al. shape).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f3, mean, print_table};
use rdi_datagen::{LakeConfig, SyntheticLake};
use rdi_discovery::{CorrelationSketch, LshEnsemble, MinHash, Navigator, TableSignature};

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let lake = SyntheticLake::generate(
        &LakeConfig {
            num_candidates: 120,
            query_keys: 2_000,
            candidate_rows: 4_000,
            joinable_fraction: 0.4,
        },
        &mut rng,
    );

    // (a) containment search P/R vs threshold
    let k = 128;
    let sigs: Vec<(MinHash, usize)> = lake
        .candidates
        .iter()
        .map(|c| {
            (
                MinHash::from_column(&c.table, "key", k).unwrap(),
                c.table.distinct("key").unwrap().len(),
            )
        })
        .collect();
    let qsig = MinHash::from_column(&lake.query, "key", k).unwrap();
    let qsize = lake.query.num_rows();

    let mut rows = Vec::new();
    for threshold in [0.3, 0.5, 0.7, 0.9] {
        let mut ens = LshEnsemble::new(k, threshold, 8, 1_000_000);
        for (i, (s, size)) in sigs.iter().enumerate() {
            ens.insert(i, s.clone(), *size);
        }
        ens.build(qsize);
        let t0 = std::time::Instant::now();
        let hits = ens.query(&qsig, qsize);
        let lsh_us = t0.elapsed().as_secs_f64() * 1e6;
        let truth: Vec<usize> = lake
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.containment >= threshold)
            .map(|(i, _)| i)
            .collect();
        let tp = hits.iter().filter(|h| truth.contains(h)).count() as f64;
        rows.push(vec![
            format!("{threshold:.1}"),
            truth.len().to_string(),
            hits.len().to_string(),
            f3(tp / truth.len().max(1) as f64),
            f3(tp / hits.len().max(1) as f64),
            format!("{lsh_us:.0}µs"),
        ]);
    }
    print_table(
        "E8a — LSH-Ensemble containment search (120 candidates)",
        &[
            "containment τ",
            "true ≥τ",
            "returned",
            "recall",
            "precision",
            "query time",
        ],
        &rows,
    );

    // (b) correlation-sketch error vs sketch size
    let joinable: Vec<_> = lake
        .candidates
        .iter()
        .filter(|c| c.containment >= 0.4)
        .collect();
    let mut rows = Vec::new();
    for k in [32, 64, 128, 256, 512] {
        let qs = CorrelationSketch::build(&lake.query, "key", "target", k).unwrap();
        let mut errs = Vec::new();
        for c in &joinable {
            let cs = CorrelationSketch::build(&c.table, "key", "feat", k).unwrap();
            if let Some(est) = cs.correlation(&qs) {
                errs.push((est - c.correlation).abs());
            }
        }
        rows.push(vec![
            k.to_string(),
            errs.len().to_string(),
            f3(mean(&errs)),
            f3(errs.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    print_table(
        "E8b — correlation-sketch |error| vs sketch size (planted join-correlations)",
        &[
            "sketch k",
            "estimable candidates",
            "mean abs error",
            "max abs error",
        ],
        &rows,
    );

    // (c) navigation: medoid-guided descent touches a fraction of the
    // lake yet reaches a strongly-joinable table
    let n_org = 40;
    let sigs: Vec<TableSignature> = lake
        .candidates
        .iter()
        .take(n_org)
        .map(|c| TableSignature::build(c.name.clone(), &c.table, 64).unwrap())
        .collect();
    let t0 = std::time::Instant::now();
    let nav = Navigator::build(sigs);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let qsig = TableSignature::build("q", &lake.query, 64).unwrap();
    let (reached, comparisons) = nav.navigate(&qsig);
    let reached_name = nav.signature(reached).name.clone();
    let reached_containment = lake
        .candidates
        .iter()
        .find(|c| c.name == reached_name)
        .map(|c| c.containment)
        .unwrap_or(0.0);
    let best_containment = lake
        .candidates
        .iter()
        .take(n_org)
        .map(|c| c.containment)
        .fold(0.0f64, f64::max);
    print_table(
        "E8c — navigation over a 40-table organization",
        &[
            "organize time",
            "medoids compared",
            "lake size",
            "reached containment",
            "best in lake",
        ],
        &[vec![
            format!("{build_ms:.0}ms"),
            comparisons.to_string(),
            n_org.to_string(),
            f3(reached_containment),
            f3(best_containment),
        ]],
    );
    rdi_bench::emit_metrics_snapshot();
}
