//! E6 (§4.2): distribution tailoring with *unknown* source distributions.
//!
//! Expected shape (VLDB 2021): the UCB explore/exploit policy pays a
//! learning premium over known-distribution RatioColl but approaches it
//! as requirements grow, and clearly beats Random; an exploration-constant
//! ablation shows both under- and over-exploration hurt.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f1, mean, print_table};
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::prelude::*;

fn source_table(frac_min: f64, n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let g = if (i as f64) < frac_min * n as f64 {
            "min"
        } else {
            "maj"
        };
        t.push_row(vec![Value::str(g)]).unwrap();
    }
    t
}

fn problem(n: usize) -> DtProblem {
    DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), n),
            (GroupKey(vec![Value::str("min")]), n),
        ],
    )
}

/// 8 sources: one hidden gem (30% minority), the rest nearly pure majority.
fn fracs() -> Vec<f64> {
    vec![0.002, 0.004, 0.001, 0.30, 0.003, 0.002, 0.004, 0.001]
}

fn run_policy(
    mk: &dyn Fn(&[TableSource]) -> Box<dyn Policy>,
    p: &DtProblem,
    runs: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut costs = Vec::new();
    for _ in 0..runs {
        let mut sources: Vec<TableSource> = fracs()
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                TableSource::new(format!("s{i}"), source_table(f, 3_000), 1.0, p).unwrap()
            })
            .collect();
        let mut policy = mk(&sources);
        let out = run_tailoring(&mut sources, p, policy.as_mut(), &mut rng, 10_000_000).unwrap();
        assert!(out.satisfied);
        costs.push(out.total_cost);
    }
    mean(&costs)
}

fn main() {
    let runs = 20;
    let mut rows = Vec::new();
    for need in [10, 25, 50, 100, 200] {
        let p = problem(need);
        let known = run_policy(&|s| Box::new(RatioColl::from_sources(s)), &p, runs, 40);
        let ucb = run_policy(
            &|s| Box::new(UcbColl::from_sources(s, 2, std::f64::consts::SQRT_2)),
            &p,
            runs,
            41,
        );
        let egreedy = run_policy(
            &|s| Box::new(rdi_tailor::EpsilonGreedy::from_sources(s, 2, 0.1)),
            &p,
            runs,
            44,
        );
        let random = run_policy(&|s| Box::new(RandomPolicy::new(s.len())), &p, runs, 42);
        rows.push(vec![
            need.to_string(),
            f1(known),
            f1(ucb),
            f1(egreedy),
            f1(random),
            format!("{:.2}×", ucb / known),
            format!("{:.2}×", random / ucb),
        ]);
    }
    print_table(
        "E6a — unknown distributions: mean cost vs requirement size (20 runs)",
        &[
            "per-group need",
            "RatioColl (known)",
            "UCB (unknown)",
            "ε-greedy (0.1)",
            "Random",
            "ucb/known",
            "random/ucb",
        ],
        &rows,
    );

    // exploration-constant ablation at need = 100
    let p = problem(100);
    let mut rows = Vec::new();
    for c in [0.0, 0.2, std::f64::consts::SQRT_2, 5.0, 20.0] {
        let cost = run_policy(&|s| Box::new(UcbColl::from_sources(s, 2, c)), &p, runs, 43);
        rows.push(vec![format!("{c:.2}"), f1(cost)]);
    }
    print_table(
        "E6b — UCB exploration-constant ablation (need 100+100)",
        &["exploration c", "mean cost"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
