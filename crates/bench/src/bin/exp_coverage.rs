//! E2 (§2.2): MUP discovery — counts and pruning vs dimensionality and
//! threshold (shape of Asudeh et al., ICDE 2019).
//!
//! Expected shape: MUP count grows with dimension and threshold;
//! Pattern-Breaker evaluates far fewer lattice nodes than the naive
//! full-lattice scan, with the advantage growing with dimension.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_bench::{f1, print_table};
use rdi_coverage::CoverageAnalyzer;
use rdi_table::{DataType, Field, Schema, Table, Value};

/// d binary/ternary attributes with Zipf-ish skew so some combinations
/// are rare.
fn skewed_table(n: usize, d: usize, rng: &mut StdRng) -> Table {
    let fields = (0..d)
        .map(|i| Field::new(format!("a{i}"), DataType::Str))
        .collect();
    let mut t = Table::new(Schema::new(fields));
    for _ in 0..n {
        let row: Vec<Value> = (0..d)
            .map(|_| {
                let u: f64 = rng.gen();
                // 3 categories, heavily skewed
                let c = if u < 0.70 {
                    "0"
                } else if u < 0.95 {
                    "1"
                } else {
                    "2"
                };
                Value::str(c)
            })
            .collect();
        t.push_row(row).unwrap();
    }
    t
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 5_000;

    // (a) vs dimension at fixed τ
    let mut rows = Vec::new();
    for d in 2..=7 {
        let t = skewed_table(n, d, &mut rng);
        let attrs: Vec<String> = (0..d).map(|i| format!("a{i}")).collect();
        let attrs_ref: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let an = CoverageAnalyzer::new(&t, &attrs_ref, 25).unwrap();
        let start = std::time::Instant::now();
        let (mups, pb) = an.mups_pattern_breaker();
        let pb_time = start.elapsed().as_secs_f64() * 1000.0;
        let (dd_mups, dd) = an.mups_deep_diver();
        let start = std::time::Instant::now();
        let (naive_mups, nv) = an.mups_naive();
        let nv_time = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(mups, naive_mups, "algorithms must agree");
        assert_eq!(mups, dd_mups, "deep diver must agree");
        rows.push(vec![
            d.to_string(),
            mups.len().to_string(),
            pb.nodes_evaluated.to_string(),
            nv.nodes_evaluated.to_string(),
            f1(pb_time),
            f1(nv_time),
            format!("{}/{}", pb.peak_frontier, dd.peak_frontier),
        ]);
    }
    print_table(
        "E2a — MUPs and work vs dimension (n=5000, τ=25)",
        &[
            "d",
            "MUPs",
            "PB nodes",
            "naive nodes",
            "PB ms",
            "naive ms",
            "frontier BFS/DFS",
        ],
        &rows,
    );

    // (b) vs threshold at fixed dimension
    let t = skewed_table(n, 5, &mut rng);
    let attrs: Vec<&str> = vec!["a0", "a1", "a2", "a3", "a4"];
    let mut rows = Vec::new();
    for tau in [1, 5, 25, 100, 400] {
        let an = CoverageAnalyzer::new(&t, &attrs, tau).unwrap();
        let (mups, pb) = an.mups_pattern_breaker();
        let frac = an.uncovered_assignment_fraction(&mups);
        rows.push(vec![
            tau.to_string(),
            mups.len().to_string(),
            pb.nodes_evaluated.to_string(),
            format!("{:.1}%", frac * 100.0),
        ]);
    }
    print_table(
        "E2b — MUPs vs threshold τ (d=5)",
        &["τ", "MUPs", "PB nodes", "uncovered value-combinations"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
