//! E1 (§2.1): sampling bias harms minority accuracy.
//!
//! A pulse-oximeter-style task: the two groups have different
//! calibration (group-dependent logit shift), so a model trained on a
//! source that under-represents the minority mis-predicts it. We sweep
//! the training source's minority fraction and report per-group test
//! accuracy. Expected shape: minority accuracy climbs steeply with
//! representation while majority accuracy barely moves.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_acquisition::ml::{design_matrix, evaluate, LogisticRegression};
use rdi_bench::{f3, print_table};
use rdi_datagen::population::{AttributeSpec, FeatureSpec};
use rdi_datagen::PopulationSpec;
use rdi_fairness::Categorical;
use rdi_table::GroupSpec;

fn spec() -> PopulationSpec {
    PopulationSpec {
        sensitive: vec![AttributeSpec::new("group", &["maj", "min"], &[0.5, 0.5])],
        features: vec![
            FeatureSpec::unbiased("x1", 0.0, 1.0, 1.2),
            FeatureSpec::unbiased("x2", 0.0, 1.0, 0.8),
        ],
        intercept: 0.0,
        // different calibration per group — the harm source
        group_logit_shift: vec![1.5, -1.5],
        target_name: "y".to_string(),
    }
}

fn main() {
    let pop = spec();
    let mut rng = StdRng::seed_from_u64(1);
    // balanced test set = production traffic
    let test = pop.generate_with_marginals(
        20_000,
        &mut rng,
        Some(&Categorical::from_weights(&[0.5, 0.5])),
    );
    let gspec = GroupSpec::new(vec!["group"]);

    let mut rows = Vec::new();
    for minority_frac in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let train = pop.generate_with_marginals(
            8_000,
            &mut rng,
            Some(&Categorical::from_weights(&[
                1.0 - minority_frac,
                minority_frac,
            ])),
        );
        let (xs, ys, _) = design_matrix(&train, &["x1", "x2"], "y").unwrap();
        let model = LogisticRegression::train(&xs, &ys, 10, 0.05, 1e-4, &mut rng);
        let eval = evaluate(&test, &["x1", "x2"], "y", &gspec, |x| model.predict(x)).unwrap();
        let get = |g: &str| {
            eval.group_accuracy
                .iter()
                .find(|(k, _)| k.contains(g))
                .map(|(_, a)| *a)
                .unwrap_or(f64::NAN)
        };
        rows.push(vec![
            format!("{:.0}%", minority_frac * 100.0),
            f3(eval.accuracy),
            f3(get("maj")),
            f3(get("min")),
            f3(get("maj") - get("min")),
        ]);
    }
    print_table(
        "E1 — test accuracy vs minority share of the training source",
        &[
            "minority share",
            "overall",
            "majority acc",
            "minority acc",
            "gap",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
