//! E19: batched, cache-backed query serving (`rdi-serve`).
//!
//! Builds a synthetic lake plus a skewed source federation, registers
//! everything in a persistent [`LakeIndex`], and serves a mixed batch
//! of union-search, joinability, coverage, and tailoring requests
//! through a [`ServeSession`]. Because the CI machine is single-CPU,
//! cache effectiveness is proven by **counters, not wall-clock**:
//!
//! * the served union ranking is byte-identical to the uncached
//!   `UnionSearchIndex` path (scores equal to the bit);
//! * replaying the same request stream over the warm index builds
//!   **zero** new sketches (`discovery.sketches_built` unchanged) and
//!   returns bitwise-identical responses — including the randomized
//!   tailoring run, which replays on the same per-arrival RNG stream;
//! * overload and poison requests degrade to typed partial results
//!   (queue shedding, breaker trip) — the batch never panics;
//! * under a deliberately small byte budget the sketch caches evict
//!   LRU entries and account every released byte
//!   (`serve.cache.evictions` / `serve.cache.evicted_bytes`) instead
//!   of overflowing.

use rdi_bench::{emit_metrics_snapshot, f1, f3, print_table};
use rdi_datagen::{skewed_sources, LakeConfig, PopulationSpec, SourceConfig, SyntheticLake};
use rdi_discovery::{TableSignature, UnionSearchIndex};
use rdi_par::Threads;
use rdi_serve::{
    LakeIndex, LakeIndexConfig, ServeError, ServeRequest, ServeResponse, ServeSession,
    SessionConfig,
};
use rdi_table::{GroupKey, GroupSpec, Value};
use rdi_tailor::DtProblem;

const SEED: u64 = 1905;

fn counter(name: &str) -> u64 {
    rdi_obs::counter(name).get()
}

fn build_index() -> (LakeIndex, rdi_table::Table) {
    let lake = SyntheticLake::generate_par(
        &LakeConfig {
            num_candidates: 24,
            query_keys: 500,
            candidate_rows: 600,
            joinable_fraction: 0.4,
        },
        SEED,
        Threads::auto(),
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED);
    let federation = skewed_sources(
        &PopulationSpec::two_group(0.2),
        &SourceConfig {
            num_sources: 3,
            rows_per_source: 2_000,
            concentration: 1.0,
            costs: vec![1.0, 1.5, 2.0],
        },
        &mut rng,
    );

    let mut index = LakeIndex::new(LakeIndexConfig::default());
    for c in &lake.candidates {
        index.register(&c.name, c.table.clone(), 1.0).unwrap();
    }
    for (i, g) in federation.into_iter().enumerate() {
        index.register(format!("fed_{i}"), g.table, g.cost).unwrap();
    }
    (index, lake.query)
}

fn mixed_batch(query: &rdi_table::Table) -> Vec<ServeRequest> {
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["group"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), 50),
            (GroupKey(vec![Value::str("min")]), 50),
        ],
    );
    vec![
        ServeRequest::UnionTopK {
            query: query.clone(),
            k: 5,
        },
        ServeRequest::JoinableTopK {
            query: query.clone(),
            column: "key".into(),
            k: 5,
        },
        ServeRequest::CoverageProbe {
            table: "fed_0".into(),
            attributes: vec!["group".into()],
            threshold: 50,
        },
        ServeRequest::TailorRun {
            problem,
            sources: vec!["fed_0".into(), "fed_1".into(), "fed_2".into()],
            max_draws: 50_000,
        },
    ]
}

fn summarize(r: &Result<ServeResponse, ServeError>) -> String {
    match r {
        Ok(ServeResponse::UnionTopK(v)) => {
            format!("top hit {} ({})", v[0].0, f3(v[0].1))
        }
        Ok(ServeResponse::JoinableTopK(v)) => {
            format!("top hit {} (containment {})", v[0].0, f3(v[0].1))
        }
        Ok(ServeResponse::Coverage(c)) => format!(
            "{} MUPs, uncovered fraction {}",
            c.mups.len(),
            f3(c.uncovered_fraction)
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "{} rows, cost {}, degraded {}",
            t.rows,
            f1(t.total_cost),
            t.degraded
        ),
        Err(e) => format!("error: {e}"),
    }
}

fn main() {
    // Span tick totals under RDI_FAKE_CLOCK depend on thread
    // interleaving; pin serial execution when the caller hasn't chosen
    // so the golden stays byte-stable. Answers are thread-invariant
    // regardless (tests/serve_determinism.rs sweeps 1/2/8 threads).
    if std::env::var_os("RDI_THREADS").is_none() {
        std::env::set_var("RDI_THREADS", "1");
    }

    let (index, query) = build_index();
    let n_tables = index.len();
    let batch = mixed_batch(&query);

    // --- 1. cold batch: every sketch is built exactly once ---
    let built_0 = counter("discovery.sketches_built");
    let (hits_0, misses_0) = (counter("serve.cache.hits"), counter("serve.cache.misses"));
    let mut session = ServeSession::new(index, SessionConfig::default());
    let cold = session.submit_batch(&batch);
    assert!(!cold.degraded, "cold batch must answer every request");
    let built_cold = counter("discovery.sketches_built") - built_0;

    print_table(
        &format!("E19: mixed batch over {n_tables} registered tables (cold cache)"),
        &["request", "answer"],
        &batch
            .iter()
            .zip(&cold.responses)
            .map(|(req, resp)| vec![req.kind().to_string(), summarize(resp)])
            .collect::<Vec<_>>(),
    );

    // --- 2. served union ranking == uncached UnionSearchIndex path ---
    let k = session.index().config().minhash_k;
    let mut reference = UnionSearchIndex::new();
    for id in session.index().table_ids() {
        let t = session.index().table(id).unwrap();
        reference.insert(TableSignature::build(id, t, k).unwrap());
    }
    let qsig = TableSignature::build("<query>", &query, k).unwrap();
    let want = reference.top_k(&qsig, 5);
    let got = match &cold.responses[0] {
        Ok(ServeResponse::UnionTopK(v)) => v.clone(),
        other => panic!("expected union response, got {other:?}"),
    };
    assert_eq!(got.len(), want.len());
    for ((gi, gs), (wi, ws)) in got.iter().zip(&want) {
        assert_eq!(gi, wi, "same ranking as the uncached path");
        assert_eq!(gs.to_bits(), ws.to_bits(), "scores byte-identical");
    }
    println!("\nunion ranking vs uncached UnionSearchIndex: byte-identical = true");

    // --- 3. warm replay: same responses, zero sketches built ---
    let built_1 = counter("discovery.sketches_built");
    let hits_cold = counter("serve.cache.hits") - hits_0;
    let misses_cold = counter("serve.cache.misses") - misses_0;
    // A fresh session over the warm index restarts the arrival counter,
    // so the replay consumes the same per-request RNG streams.
    let mut warm_session = ServeSession::new(session.into_index(), SessionConfig::default());
    let warm = warm_session.submit_batch(&batch);
    let built_warm = counter("discovery.sketches_built") - built_1;
    let hits_warm = counter("serve.cache.hits") - hits_0 - hits_cold;
    assert_eq!(built_warm, 0, "warm replay must build zero sketches");
    assert_eq!(
        cold.responses, warm.responses,
        "warm replay must be bitwise identical (tailor run included)"
    );
    print_table(
        "E19b: cache effectiveness (counters, not wall-clock)",
        &[
            "run",
            "sketches built",
            "cache hits",
            "cache misses",
            "responses == cold",
        ],
        &[
            vec![
                "cold".into(),
                built_cold.to_string(),
                hits_cold.to_string(),
                misses_cold.to_string(),
                "—".into(),
            ],
            vec![
                "warm".into(),
                built_warm.to_string(),
                hits_warm.to_string(),
                "0".to_string(),
                "yes".into(),
            ],
        ],
    );
    println!(
        "\ncache: {} sketches cached, {} accounted bytes",
        warm_session.index().cached_sketches(),
        warm_session.index().cache_bytes()
    );

    // --- 4. degradation: queue shedding and the session breaker ---
    let mut shed_session = ServeSession::new(
        warm_session.into_index(),
        SessionConfig {
            queue_capacity: 2,
            ..SessionConfig::default()
        },
    );
    let flood: Vec<ServeRequest> = std::iter::repeat_with(|| ServeRequest::UnionTopK {
        query: query.clone(),
        k: 3,
    })
    .take(6)
    .collect();
    let overload = shed_session.submit_batch(&flood);
    assert_eq!(overload.admitted, 2);
    assert_eq!(overload.shed, 4);
    assert!(overload.responses[..2].iter().all(|r| r.is_ok()));
    assert!(overload.responses[2..]
        .iter()
        .all(|r| matches!(r, Err(ServeError::QueueFull { .. }))));

    // Breaker demo on a default-capacity session (the tiny shedding
    // queue above would shed most of the poison before it could trip).
    let mut breaker_session =
        ServeSession::new(shed_session.into_index(), SessionConfig::default());
    let poison = ServeRequest::CoverageProbe {
        table: "no_such_table".into(),
        attributes: vec![],
        threshold: 1,
    };
    let threshold = breaker_session.config().breaker_threshold as usize;
    let poisoned = breaker_session.submit_batch(&vec![poison; threshold]);
    assert!(poisoned.degraded);
    assert!(breaker_session.breaker_open());
    let after_trip = breaker_session.submit_batch(&flood[..2]);
    assert!(after_trip
        .responses
        .iter()
        .all(|r| matches!(r, Err(ServeError::CircuitOpen { .. }))));
    print_table(
        "E19c: graceful degradation (partial results, never panics)",
        &["batch", "submitted", "admitted", "shed", "failed"],
        &[
            vec![
                "overload (capacity 2)".into(),
                flood.len().to_string(),
                overload.admitted.to_string(),
                overload.shed.to_string(),
                "0".into(),
            ],
            vec![
                "poison (unknown table)".into(),
                threshold.to_string(),
                poisoned.admitted.to_string(),
                poisoned.shed.to_string(),
                threshold.to_string(),
            ],
            vec![
                "after breaker trip".into(),
                "2".into(),
                after_trip.admitted.to_string(),
                after_trip.shed.to_string(),
                "0".into(),
            ],
        ],
    );
    println!(
        "\nbreaker open = {}, every shed request got a typed error",
        breaker_session.breaker_open()
    );

    // --- 5. byte-budget pressure: caches evict, and account for it ---
    let budget = 16 << 10;
    let ev_0 = counter("serve.cache.evictions");
    let evb_0 = counter("serve.cache.evicted_bytes");
    let big = breaker_session.into_index();
    let mut small = LakeIndex::new(LakeIndexConfig {
        cache_capacity_bytes: budget,
        ..LakeIndexConfig::default()
    });
    for id in big.table_ids() {
        small
            .register(id, big.table(id).unwrap().clone(), 1.0)
            .unwrap();
    }
    small.union_top_k(&query, 5).unwrap();
    small.joinable_top_k(&query, "key", 5).unwrap();
    let evictions = counter("serve.cache.evictions") - ev_0;
    let evicted_bytes = counter("serve.cache.evicted_bytes") - evb_0;
    assert!(evictions > 0, "a {budget}-byte budget must evict");
    assert!(evicted_bytes > 0, "evictions must account their bytes");
    assert!(
        small.cache_bytes() <= budget,
        "resident bytes within the global budget"
    );
    print_table(
        "E19d: eviction under a 16 KiB budget (counters, not wall-clock)",
        &["measure", "value"],
        &[
            vec!["serve.cache.evictions".into(), evictions.to_string()],
            vec![
                "serve.cache.evicted_bytes".into(),
                evicted_bytes.to_string(),
            ],
            vec![
                "resident bytes / budget".into(),
                format!("{} / {budget}", small.cache_bytes()),
            ],
        ],
    );

    emit_metrics_snapshot();
}
