//! CI helper: validate an experiment's metrics snapshot.
//!
//! Reads an `exp_*` binary's stdout on **stdin**, finds the final
//! `METRICS_SNAPSHOT {json}` line, parses the JSON, and checks that
//! every counter named on the command line is present. Exits non-zero
//! (with a message on stderr) when the marker is missing, the JSON does
//! not parse, or an expected counter is absent — so a pipeline like
//!
//! ```text
//! cargo run --bin exp_coverage | cargo run --bin validate_metrics -- \
//!     coverage.nodes_evaluated coverage.mups_found
//! ```
//!
//! fails loudly if the observability layer ever stops reporting.

use std::io::Read;
use std::process::exit;

use rdi_bench::METRICS_MARKER;

fn main() {
    let expected: Vec<String> = std::env::args().skip(1).collect();
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("validate_metrics: cannot read stdin: {e}");
        exit(1);
    }
    let Some(json_text) = input
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix(METRICS_MARKER))
    else {
        eprintln!("validate_metrics: no `{METRICS_MARKER}` line found in input");
        exit(1);
    };
    let snapshot: serde_json::Value = match serde_json::from_str(json_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_metrics: snapshot is not valid JSON: {e:?}");
            exit(2);
        }
    };
    for section in ["counters", "gauges", "histograms", "spans"] {
        if snapshot.get(section).is_none() {
            eprintln!("validate_metrics: snapshot missing `{section}` section");
            exit(2);
        }
    }
    let counters = snapshot.get("counters").expect("checked above");
    let mut missing = 0usize;
    for key in &expected {
        match counters.get(key).and_then(|v| v.as_u64()) {
            Some(v) => println!("validate_metrics: {key} = {v}"),
            None => {
                eprintln!("validate_metrics: expected counter `{key}` missing");
                missing += 1;
            }
        }
    }
    if missing > 0 {
        exit(3);
    }
    println!(
        "validate_metrics: OK ({} expected counter(s) present)",
        expected.len()
    );
}
