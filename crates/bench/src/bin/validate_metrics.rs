//! CI helper: validate an experiment's metrics snapshot.
//!
//! Reads an `exp_*` binary's stdout on **stdin**, finds the final
//! `METRICS_SNAPSHOT {json}` line, parses the JSON, validates the
//! snapshot against the schema rdi-obs promises (`counters` maps names
//! to unsigned integers, `gauges` to numbers, `histograms` to
//! `{bounds, counts, count, sum}` objects with `counts` one longer
//! than `bounds` and bucket totals equal to `count`, `spans` to
//! `{count, total_ns}` objects), and checks that every counter named
//! on the command line is present. Exits non-zero (with a message on
//! stderr) when the marker is missing, the JSON does not parse, the
//! schema is violated, or an expected counter is absent — so a
//! pipeline like
//!
//! ```text
//! cargo run --bin exp_coverage | cargo run --bin validate_metrics -- \
//!     coverage.nodes_evaluated coverage.mups_found
//! ```
//!
//! fails loudly if the observability layer ever stops reporting.

use std::io::Read;
use std::process::exit;

use rdi_bench::METRICS_MARKER;

fn main() {
    let expected: Vec<String> = std::env::args().skip(1).collect();
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("validate_metrics: cannot read stdin: {e}");
        exit(1);
    }
    let Some(json_text) = input
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix(METRICS_MARKER))
    else {
        eprintln!("validate_metrics: no `{METRICS_MARKER}` line found in input");
        exit(1);
    };
    let snapshot: serde_json::Value = match serde_json::from_str(json_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_metrics: snapshot is not valid JSON: {e:?}");
            exit(2);
        }
    };
    let schema_errors = schema_errors(&snapshot);
    if !schema_errors.is_empty() {
        for e in &schema_errors {
            eprintln!("validate_metrics: schema violation: {e}");
        }
        exit(2);
    }
    let counters = snapshot.get("counters").expect("schema-checked above");
    let mut missing = 0usize;
    for key in &expected {
        match counters.get(key).and_then(|v| v.as_u64()) {
            Some(v) => println!("validate_metrics: {key} = {v}"),
            None => {
                eprintln!("validate_metrics: expected counter `{key}` missing");
                missing += 1;
            }
        }
    }
    if missing > 0 {
        exit(3);
    }
    println!(
        "validate_metrics: OK ({} expected counter(s) present, schema valid)",
        expected.len()
    );
}

/// Object members, when `v` is a JSON object.
fn obj_fields(v: &serde_json::Value) -> Option<&[(String, serde_json::Value)]> {
    match v {
        serde_json::Value::Obj(fields) => Some(fields),
        _ => None,
    }
}

/// Validate the snapshot against the shape `rdi_obs::MetricsRegistry::
/// snapshot_value` documents. Returns a list of human-readable
/// violations; empty means the snapshot conforms.
fn schema_errors(snapshot: &serde_json::Value) -> Vec<String> {
    let mut errs = Vec::new();
    if obj_fields(snapshot).is_none() {
        return vec!["snapshot root is not a JSON object".into()];
    }
    for section in ["counters", "gauges", "histograms", "spans"] {
        match snapshot.get(section) {
            None => errs.push(format!("missing `{section}` section")),
            Some(v) if obj_fields(v).is_none() => {
                errs.push(format!("`{section}` is not a JSON object"));
            }
            _ => {}
        }
    }
    if !errs.is_empty() {
        return errs;
    }
    let section = |name: &str| obj_fields(snapshot.member(name)).unwrap_or(&[]);
    for (name, v) in section("counters") {
        if v.as_u64().is_none() {
            errs.push(format!(
                "counter `{name}` is not an unsigned integer: {v:?}"
            ));
        }
    }
    for (name, v) in section("gauges") {
        if v.as_f64().is_none() {
            errs.push(format!("gauge `{name}` is not a number: {v:?}"));
        }
    }
    for (name, v) in section("histograms") {
        let bounds = v.get("bounds").and_then(|b| b.as_array());
        let counts = v.get("counts").and_then(|c| c.as_array());
        let count = v.get("count").and_then(|c| c.as_u64());
        let sum = v.get("sum").and_then(|s| s.as_f64());
        match (bounds, counts, count, sum) {
            (Some(b), Some(c), Some(total), Some(_)) => {
                if c.len() != b.len() + 1 {
                    errs.push(format!(
                        "histogram `{name}`: {} buckets for {} bounds (want bounds+1)",
                        c.len(),
                        b.len()
                    ));
                }
                if b.iter().any(|x| x.as_f64().is_none()) {
                    errs.push(format!("histogram `{name}`: non-numeric bound"));
                }
                let bucket_sum: Option<u64> = c.iter().map(|x| x.as_u64()).sum();
                match bucket_sum {
                    Some(s) if s == total => {}
                    Some(s) => errs.push(format!(
                        "histogram `{name}`: bucket counts sum to {s}, `count` says {total}"
                    )),
                    None => errs.push(format!("histogram `{name}`: non-integer bucket count")),
                }
            }
            _ => errs.push(format!(
                "histogram `{name}` missing bounds/counts/count/sum: {v:?}"
            )),
        }
    }
    for (name, v) in section("spans") {
        if v.get("count").and_then(|c| c.as_u64()).is_none()
            || v.get("total_ns").and_then(|n| n.as_u64()).is_none()
        {
            errs.push(format!("span `{name}` missing count/total_ns: {v:?}"));
        }
    }
    errs
}
