//! E10 (§5): fairness-aware range queries.
//!
//! Expected shape (Shetiya et al., ICDE 2022): tighter disparity bounds
//! cost similarity, the greedy heuristic closely tracks the exact
//! optimum at a fraction of the runtime, and exact runtime grows
//! quadratically with n while greedy stays near-linear.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_bench::{f3, print_table};
use rdi_fairquery::{RangeQuery2d, RangeQueryEngine};

/// Women cluster young, men spread wide — the imbalanced-query workload.
fn engine(n: usize, rng: &mut StdRng) -> RangeQueryEngine {
    let pts: Vec<(f64, bool)> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.5 {
                (22.0 + rng.gen::<f64>() * 20.0, true)
            } else {
                (30.0 + rng.gen::<f64>() * 30.0, false)
            }
        })
        .collect();
    RangeQueryEngine::from_points(pts)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(6);

    // (a) similarity vs disparity bound
    let e = engine(2_000, &mut rng);
    let (lo, hi) = (35.0, 55.0);
    println!("original disparity of 35 ≤ x ≤ 55: {}", e.disparity(lo, hi));
    let mut rows = Vec::new();
    for eps in [400, 200, 100, 50, 20, 5, 0] {
        let exact = e.fair_range_exact(lo, hi, eps);
        let greedy = e.fair_range_greedy(lo, hi, eps);
        rows.push(vec![
            eps.to_string(),
            f3(exact.similarity),
            f3(greedy.similarity),
            exact.disparity.to_string(),
            exact.selected.to_string(),
        ]);
    }
    print_table(
        "E10a — similarity of fairest range vs disparity bound ε (n=2000)",
        &[
            "ε",
            "exact similarity",
            "greedy similarity",
            "achieved disparity",
            "rows selected",
        ],
        &rows,
    );

    // (b) runtime scaling
    let mut rows = Vec::new();
    for n in [250, 500, 1_000, 2_000, 4_000] {
        let e = engine(n, &mut rng);
        let t0 = std::time::Instant::now();
        let ex = e.fair_range_exact(lo, hi, 10);
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        let gr = e.fair_range_greedy(lo, hi, 10);
        let greedy_us = t0.elapsed().as_secs_f64() * 1e6;
        rows.push(vec![
            n.to_string(),
            format!("{exact_ms:.1}ms"),
            format!("{greedy_us:.0}µs"),
            f3(gr.similarity / ex.similarity.max(1e-9)),
        ]);
    }
    print_table(
        "E10b — runtime: exact O(n²) vs greedy (ε=10)",
        &["n", "exact", "greedy", "greedy/exact similarity"],
        &rows,
    );

    // (c) the 2-D generalization: age × experience, quantized endpoint grid
    let pts: Vec<(f64, f64, bool)> = (0..4_000)
        .map(|_| {
            if rng.gen::<f64>() < 0.5 {
                (22.0 + rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 8.0, true)
            } else {
                (
                    30.0 + rng.gen::<f64>() * 30.0,
                    rng.gen::<f64>() * 25.0,
                    false,
                )
            }
        })
        .collect();
    let mut rows = Vec::new();
    for grid in [6usize, 10, 14] {
        let e2 = RangeQuery2d::from_points(&pts, grid);
        let orig = e2.disparity(35.0, 55.0, 5.0, 20.0);
        let t0 = std::time::Instant::now();
        let fb = e2.fair_box(35.0, 55.0, 5.0, 20.0, 20);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            grid.to_string(),
            orig.to_string(),
            fb.disparity.to_string(),
            f3(fb.similarity),
            format!("{ms:.1}ms"),
        ]);
    }
    print_table(
        "E10c — 2-D fair boxes (n=4000, ε=20): finer grids buy similarity with O(g⁴) time",
        &[
            "grid g",
            "original disparity",
            "achieved",
            "similarity",
            "search time",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
