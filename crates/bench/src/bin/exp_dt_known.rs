//! E5 (§4.2): distribution tailoring with known source distributions.
//!
//! Expected shape (VLDB 2021): RatioColl tracks the exact DP oracle and
//! beats Random/RoundRobin, with the gap growing as the minority gets
//! rarer; the win holds for both equal and proportional requirements.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f1, mean, print_table};
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::prelude::*;
use rdi_tailor::OracleDp;

fn source_table(frac_min: f64, n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let g = if (i as f64) < frac_min * n as f64 {
            "min"
        } else {
            "maj"
        };
        t.push_row(vec![Value::str(g)]).unwrap();
    }
    t
}

fn problem(n_min: usize, n_maj: usize) -> DtProblem {
    DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), n_maj),
            (GroupKey(vec![Value::str("min")]), n_min),
        ],
    )
}

fn avg_cost(
    mk_policy: &dyn Fn(&[TableSource]) -> Box<dyn Policy>,
    p: &DtProblem,
    fracs: &[f64],
    runs: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut costs = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut sources: Vec<TableSource> = fracs
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                TableSource::new(format!("s{i}"), source_table(f, 2_000), 1.0, p).unwrap()
            })
            .collect();
        let mut policy = mk_policy(&sources);
        let out = run_tailoring(&mut sources, p, policy.as_mut(), &mut rng, 10_000_000).unwrap();
        assert!(out.satisfied);
        costs.push(out.total_cost);
    }
    mean(&costs)
}

fn main() {
    let runs = 25;
    // Sources: one balanced-ish, one minority-poor, one minority-rich at
    // rate `r` (the sweep variable).
    let mut rows = Vec::new();
    for minority_rate in [0.2, 0.1, 0.05, 0.02, 0.01] {
        let fracs = vec![minority_rate, 0.001, minority_rate * 2.0];
        let p = problem(50, 50);
        let ratio = avg_cost(
            &|s| Box::new(RatioColl::from_sources(s)),
            &p,
            &fracs,
            runs,
            10,
        );
        let oracle = avg_cost(
            &|s| Box::new(OracleDp::from_sources(s)),
            &p,
            &fracs,
            runs,
            11,
        );
        let random = avg_cost(
            &|s| Box::new(RandomPolicy::new(s.len())),
            &p,
            &fracs,
            runs,
            12,
        );
        let rrobin = avg_cost(
            &|s| Box::new(RoundRobin::new(s.len())),
            &p,
            &fracs,
            runs,
            13,
        );
        rows.push(vec![
            format!("{:.0}%", minority_rate * 100.0),
            f1(oracle),
            f1(ratio),
            f1(random),
            f1(rrobin),
            format!("{:.1}×", random / ratio),
        ]);
    }
    print_table(
        "E5a — mean cost to collect 50+50, equal requirement (25 runs)",
        &[
            "best source minority rate",
            "OracleDP",
            "RatioColl",
            "Random",
            "RoundRobin",
            "random/ratio",
        ],
        &rows,
    );

    // proportional requirement: 90 maj / 10 min
    let mut rows = Vec::new();
    for minority_rate in [0.2, 0.05, 0.01] {
        let fracs = vec![minority_rate, 0.001, minority_rate * 2.0];
        let p = problem(10, 90);
        let ratio = avg_cost(
            &|s| Box::new(RatioColl::from_sources(s)),
            &p,
            &fracs,
            runs,
            20,
        );
        let random = avg_cost(
            &|s| Box::new(RandomPolicy::new(s.len())),
            &p,
            &fracs,
            runs,
            21,
        );
        rows.push(vec![
            format!("{:.0}%", minority_rate * 100.0),
            f1(ratio),
            f1(random),
            format!("{:.1}×", random / ratio),
        ]);
    }
    print_table(
        "E5b — proportional requirement (90 maj / 10 min)",
        &[
            "best source minority rate",
            "RatioColl",
            "Random",
            "random/ratio",
        ],
        &rows,
    );

    // cost-aware: the minority-rich source is expensive
    let p = problem(50, 50);
    let mut rng = StdRng::seed_from_u64(30);
    let mut rows = Vec::new();
    for expensive in [1.0, 2.0, 5.0, 10.0] {
        let mut costs_ratio = Vec::new();
        for _ in 0..runs {
            let mut sources = vec![
                TableSource::new("cheap", source_table(0.05, 2_000), 1.0, &p).unwrap(),
                TableSource::new("rich", source_table(0.5, 2_000), expensive, &p).unwrap(),
            ];
            let mut policy = RatioColl::from_sources(&sources);
            let out = run_tailoring(&mut sources, &p, &mut policy, &mut rng, 10_000_000).unwrap();
            costs_ratio.push(out.total_cost);
        }
        let mut dp = OracleDp::new(vec![1.0, expensive], vec![vec![0.95, 0.05], vec![0.5, 0.5]]);
        rows.push(vec![
            format!("{expensive:.0}"),
            f1(mean(&costs_ratio)),
            f1(dp.expected_cost(&[50, 50])),
        ]);
    }
    print_table(
        "E5c — cost-aware selection: rich-but-expensive source",
        &[
            "rich source cost",
            "RatioColl mean cost",
            "OracleDP expected",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
