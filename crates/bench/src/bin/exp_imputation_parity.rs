//! E13 (§5): imputation accuracy parity (Zhang & Long, NeurIPS 2021).
//!
//! Expected shape: parity difference grows MCAR → MAR → MNAR (missingness
//! increasingly entangled with group/value), and group-aware imputation
//! (group mean, k-NN hot-deck) shrinks it relative to global-mean
//! imputation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f3, print_table};
use rdi_cleaning::{imputation_parity, impute, ImputeStrategy};
use rdi_datagen::{inject_missing, Mechanism, MissingSpec, PopulationSpec};
use rdi_table::{GroupSpec, Table, Value};

fn mechanisms() -> Vec<(&'static str, Mechanism)> {
    vec![
        ("MCAR", Mechanism::Mcar),
        (
            "MAR(group)",
            Mechanism::Mar {
                condition_column: "group".into(),
                condition_value: Value::str("min"),
                boost: 4.0,
            },
        ),
        (
            "MNAR(value)",
            Mechanism::Mnar {
                threshold: 0.8,
                boost: 4.0,
            },
        ),
    ]
}

fn strategies() -> Vec<(&'static str, ImputeStrategy)> {
    vec![
        ("global mean", ImputeStrategy::Mean),
        (
            "group mean",
            ImputeStrategy::GroupMean(GroupSpec::new(vec!["group"])),
        ),
        (
            "kNN hot-deck",
            ImputeStrategy::HotDeckKnn {
                features: vec!["x1".into()],
                k: 5,
            },
        ),
    ]
}

fn main() {
    let pop = PopulationSpec::two_group(0.2);
    let mut rng = StdRng::seed_from_u64(8);
    let clean: Table = pop.generate(20_000, &mut rng);
    let spec = GroupSpec::new(vec!["group"]);

    let mut rows = Vec::new();
    for (mname, mech) in mechanisms() {
        let (dirty, masked) = inject_missing(
            &clean,
            &MissingSpec {
                column: "x2".into(), // the group-shifted feature
                rate: 0.15,
                mechanism: mech,
            },
            &mut rng,
        )
        .unwrap();
        let truth: Vec<(usize, f64)> = masked
            .iter()
            .map(|&i| (i, clean.value(i, "x2").unwrap().as_f64().unwrap()))
            .collect();
        for (sname, strat) in strategies() {
            let imputed = impute(&dirty, "x2", &strat).unwrap();
            let rep = imputation_parity(&imputed, "x2", &truth, &spec).unwrap();
            rows.push(vec![
                mname.to_string(),
                sname.to_string(),
                f3(rep.overall_rmse),
                f3(rep.parity_difference),
            ]);
        }
    }
    print_table(
        "E13 — imputation RMSE and accuracy-parity difference (x2 masked at 15%)",
        &[
            "mechanism",
            "imputation",
            "overall RMSE",
            "parity difference",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
