//! E14 (§2.5, §3.2): nutritional labels and datasheets — the functional
//! demonstration on the healthcare benchmark: the label of a skewed
//! hospital carries the right warnings; the tailored dataset's label is
//! clean; the datasheet template renders.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_datagen::{healthcare_sources, HealthcareConfig};
use rdi_profile::{Datasheet, LabelConfig, NutritionalLabel};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = HealthcareConfig {
        population_size: 1_000,
        rows_per_hospital: 8_000,
    };
    let hospitals = healthcare_sources(&cfg, &mut rng);

    // Label of the most skewed source.
    let (name, src) = &hospitals[0];
    let mut label = NutritionalLabel::generate(
        &src.table,
        &LabelConfig {
            coverage_threshold: 600,
            ..LabelConfig::default()
        },
    )
    .unwrap();
    label.add_scope_note(format!(
        "Records from the `{name}` hospital only; racial mix reflects its catchment area, \
         not the city."
    ));
    println!("{}", label.to_markdown());
    assert!(
        !label.warnings.is_empty(),
        "skewed hospital must trigger warnings"
    );
    println!("JSON size: {} bytes\n", label.to_json().len());

    // Datasheet.
    let mut sheet = Datasheet::template("chicago-screening-v1");
    sheet.answer(
        "Motivation",
        0,
        "Train an early-detection model for breast cancer across Chicago.",
    );
    sheet.answer(
        "Composition",
        1,
        "Yes: race is recorded as a sensitive attribute; groups are intersectional over race.",
    );
    sheet.answer(
        "Collection process",
        1,
        "Distribution tailoring over 4 hospital sources (RatioColl policy, equal race counts).",
    );
    println!("{}", sheet.to_markdown());
    println!("unanswered questions: {}", sheet.unanswered());
    rdi_bench::emit_metrics_snapshot();
}
