//! E11 (§3.1): Slice Tuner-style selective acquisition.
//!
//! Expected shape (Tae & Whang, SIGMOD 2021): at the same budget,
//! curve-driven allocation beats uniform allocation on *both* average
//! loss and unfairness (max loss gap across slices); a water-filling vs
//! one-shot ablation shows why iterative allocation matters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_acquisition::ml::{design_matrix, evaluate, LogisticRegression};
use rdi_acquisition::{
    allocate_budget, find_problem_slices, LearningCurve, SliceState, SliceTuner,
};
use rdi_bench::{f3, print_table};
use rdi_table::{DataType, Field, GroupSpec, Role, Schema, Table, Value};

fn make_slices() -> Vec<SliceState> {
    // four slices with very different sizes & curve steepness
    vec![
        SliceState {
            name: "maj-easy".into(),
            current: 5_000,
            curve: LearningCurve { a: 0.5, b: 3.0 },
        },
        SliceState {
            name: "maj-hard".into(),
            current: 4_000,
            curve: LearningCurve { a: 0.3, b: 4.0 },
        },
        SliceState {
            name: "min-1".into(),
            current: 150,
            curve: LearningCurve { a: 0.5, b: 3.5 },
        },
        SliceState {
            name: "min-2".into(),
            current: 60,
            curve: LearningCurve { a: 0.45, b: 4.5 },
        },
    ]
}

fn outcome(slices: &[SliceState], alloc: &[usize]) -> (f64, f64) {
    let tuner = SliceTuner {
        slices: slices.to_vec(),
        chunk: 1,
        fairness_weight: 0.0,
    };
    tuner.predict_outcome(alloc)
}

fn main() {
    let slices = make_slices();

    let mut rows = Vec::new();
    for budget in [500usize, 2_000, 8_000, 32_000] {
        let uniform: Vec<usize> = vec![budget / slices.len(); slices.len()];
        let smart = allocate_budget(&slices, budget, 50, 1.0);
        let (u_avg, u_gap) = outcome(&slices, &uniform);
        let (s_avg, s_gap) = outcome(&slices, &smart);
        rows.push(vec![
            budget.to_string(),
            f3(u_avg),
            f3(s_avg),
            f3(u_gap),
            f3(s_gap),
            format!("{:?}", smart),
        ]);
    }
    print_table(
        "E11a — loss and unfairness at equal budget: uniform vs slice-aware",
        &[
            "budget",
            "uniform avg loss",
            "tuned avg loss",
            "uniform gap",
            "tuned gap",
            "tuned allocation",
        ],
        &rows,
    );

    // ablation: iterative water-filling (chunk 50) vs one-shot (chunk = budget)
    let mut rows = Vec::new();
    for budget in [2_000usize, 8_000] {
        let iterative = allocate_budget(&slices, budget, 50, 0.0);
        let one_shot = allocate_budget(&slices, budget, budget, 0.0);
        let (i_avg, i_gap) = outcome(&slices, &iterative);
        let (o_avg, o_gap) = outcome(&slices, &one_shot);
        rows.push(vec![
            budget.to_string(),
            f3(i_avg),
            f3(o_avg),
            f3(i_gap),
            f3(o_gap),
        ]);
    }
    print_table(
        "E11b — ablation: iterative water-filling vs one-shot allocation",
        &[
            "budget",
            "iterative avg loss",
            "one-shot avg loss",
            "iterative gap",
            "one-shot gap",
        ],
        &rows,
    );

    // (c) the full loop: train a model, *find* its problem slices from
    // validation errors, and direct the budget there.
    let mut rng = StdRng::seed_from_u64(13);
    let schema = Schema::new(vec![
        Field::new("region", DataType::Str).with_role(Role::Sensitive),
        Field::new("age_band", DataType::Str),
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Bool).with_role(Role::Target),
    ]);
    let mut train = Table::new(schema.clone());
    let mut valid = Table::new(schema);
    for (n, t) in [(6_000, &mut train), (4_000, &mut valid)] {
        for i in 0..n {
            let region = ["north", "south", "west"][i % 3];
            let age = ["young", "old"][(i / 3) % 2];
            // the (south, young) slice has an inverted signal the model
            // cannot represent → concentrated errors
            let base: f64 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let flip = region == "south" && age == "young";
            let y = if flip { base < 0.0 } else { base > 0.0 };
            use rand::Rng;
            let x = base + rng.gen_range(-0.5..0.5);
            t.push_row(vec![
                Value::str(region),
                Value::str(age),
                Value::Float(x),
                Value::Bool(y),
            ])
            .unwrap();
        }
    }
    let (xs, ys, _) = design_matrix(&train, &["x"], "y").unwrap();
    let model = LogisticRegression::train(&xs, &ys, 6, 0.05, 1e-4, &mut rng);
    let eval = evaluate(&valid, &["x"], "y", &GroupSpec::new(vec!["region"]), |x| {
        model.predict(x)
    })
    .unwrap();
    // per-row correctness on the validation set
    let (vxs, vys, keep) = design_matrix(&valid, &["x"], "y").unwrap();
    let mut correct = vec![true; valid.num_rows()];
    for ((x, &y), &row) in vxs.iter().zip(&vys).zip(&keep) {
        correct[row] = model.predict(x) == y;
    }
    let slices = find_problem_slices(&valid, &["region", "age_band"], &correct, 100, 3).unwrap();
    let mut rows = Vec::new();
    for s in &slices {
        rows.push(vec![
            s.render(),
            s.size.to_string(),
            f3(s.error_rate),
            f3(s.overall_error),
            f3(s.score),
        ]);
    }
    print_table(
        &format!(
            "E11c — SliceFinder on a model with overall accuracy {:.3}: top slices to buy data for",
            eval.accuracy
        ),
        &["slice", "size", "error rate", "overall error", "score"],
        &rows,
    );
    assert_eq!(slices[0].render(), "region=south ∧ age_band=young");
    rdi_bench::emit_metrics_snapshot();
}
