//! E9 (§4.1): distribution-aware crowdsourced entity collection.
//!
//! Expected shape (Fan et al., TKDE 2019): adaptive worker selection
//! drives KL(target ‖ collected) down much faster than random selection,
//! and the advantage grows with worker heterogeneity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f3, mean, print_table};
use rdi_entitycollect::{run_collection, SimulatedWorker, WorkerSelection};
use rdi_fairness::Categorical;

fn workers(k: usize, heterogeneity: f64) -> Vec<SimulatedWorker> {
    // 2k workers; worker i concentrates on category i%k with the given
    // strength (0 = everyone uniform, 1 = pure specialists).
    (0..2 * k)
        .map(|i| {
            let mut w = vec![1.0 - heterogeneity; k];
            w[i % k] += heterogeneity * k as f64;
            SimulatedWorker {
                name: format!("w{i}"),
                latent: Categorical::from_weights(&w),
                batch: 10,
            }
        })
        .collect()
}

fn avg_final_kl(
    ws: &[SimulatedWorker],
    target: &Categorical,
    rounds: usize,
    sel: WorkerSelection,
    runs: u64,
) -> f64 {
    let kls: Vec<f64> = (0..runs)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            *run_collection(ws, target, rounds, sel, &mut rng)
                .divergence
                .last()
                .unwrap()
        })
        .collect();
    mean(&kls)
}

fn main() {
    let target = Categorical::uniform(5);

    // (a) divergence over rounds (single trace, heterogeneity 0.8)
    let ws = workers(5, 0.8);
    let mut rng = StdRng::seed_from_u64(5);
    let adaptive = run_collection(&ws, &target, 100, WorkerSelection::Adaptive, &mut rng);
    let mut rng = StdRng::seed_from_u64(5);
    let random = run_collection(&ws, &target, 100, WorkerSelection::Random, &mut rng);
    let mut rows = Vec::new();
    for r in [5, 10, 20, 40, 80, 99] {
        rows.push(vec![
            (r + 1).to_string(),
            f3(adaptive.divergence[r]),
            f3(random.divergence[r]),
        ]);
    }
    print_table(
        "E9a — KL(target ‖ collected) over rounds (uniform target, 10 specialist workers)",
        &["round", "adaptive", "random"],
        &rows,
    );

    // (b) final KL vs worker heterogeneity (20 runs each)
    let mut rows = Vec::new();
    for h in [0.0, 0.4, 0.8, 0.95] {
        let ws = workers(5, h);
        let a = avg_final_kl(&ws, &target, 60, WorkerSelection::Adaptive, 20);
        let r = avg_final_kl(&ws, &target, 60, WorkerSelection::Random, 20);
        rows.push(vec![
            format!("{h:.2}"),
            f3(a),
            f3(r),
            format!("{:.1}×", r / a.max(1e-9)),
        ]);
    }
    print_table(
        "E9b — final KL after 60 rounds vs worker heterogeneity (mean of 20 runs)",
        &["heterogeneity", "adaptive", "random", "random/adaptive"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
