//! E7 (§3.4): sampling over joins.
//!
//! (a) sample-then-join is biased (per-key output distribution diverges
//!     from the join's), accept-reject is uniform;
//! (b) throughput: accept-reject wastes draws as skew grows, the
//!     weighted (Chaudhuri) variant doesn't; wander join trades
//!     per-sample cost for uniformity;
//! (c) AQP error vs sample size: group-by AVG error shrinks as 1/√n and
//!     is always worst for the smallest group.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_bench::{f1, f3, print_table};
use rdi_joinsample::olken::materialize_samples;
use rdi_joinsample::{
    chaudhuri_sample, olken_sample, sample_then_join, ExactChainSampler, JoinIndex, WanderJoin,
};
use rdi_table::{hash_join, DataType, Field, GroupSpec, Role, Schema, Table, Value};

/// left: one row per key 0..n; right: key k has multiplicity ~ Zipf rank.
fn zipf_join(n_keys: usize, skew: f64, rng: &mut StdRng) -> (Table, Table) {
    let lschema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("grp", DataType::Str).with_role(Role::Sensitive),
    ]);
    let rschema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut left = Table::new(lschema);
    let mut right = Table::new(rschema);
    for k in 0..n_keys {
        let grp = if k % 10 == 0 { "min" } else { "maj" };
        left.push_row(vec![Value::Int(k as i64), Value::str(grp)])
            .unwrap();
        let mult = (10.0 / (1.0 + (k % 50) as f64).powf(skew)).ceil() as usize;
        // value varies strongly *across* keys (and mildly within), so
        // key-clumped samples mis-estimate group averages
        let base = if grp == "min" { 50.0 } else { 10.0 };
        for _ in 0..mult.max(1) {
            right
                .push_row(vec![
                    Value::Int(k as i64),
                    Value::Float(base + (k % 50) as f64 + rng.gen::<f64>()),
                ])
                .unwrap();
        }
    }
    (left, right)
}

/// Std-dev of a slice.
fn std_dev(xs: &[f64]) -> f64 {
    let m = rdi_bench::mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len().max(1) as f64).sqrt()
}

fn minority_avg(t: &Table) -> Option<f64> {
    let spec = GroupSpec::new(vec!["grp"]);
    spec.stats(t, "v")
        .ok()?
        .iter()
        .find(|(k, _)| k.0[0] == Value::str("min"))
        .filter(|(_, s)| s.non_null > 0)
        .map(|(_, s)| s.mean)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let (left, right) = zipf_join(500, 1.2, &mut rng);
    let truth = hash_join(&left, &right, "k", "k").unwrap();
    println!(
        "join: {} × {} → {} tuples",
        left.num_rows(),
        right.num_rows(),
        truth.num_rows()
    );

    // (a) estimator quality at matched sample size: sample-then-join
    // yields *correlated* tuples (whole key-clusters survive or vanish
    // together), so group-AVG estimates from it have far higher variance
    // than from a same-size uniform independent sample — the seminal
    // observation of [18]. 300 trials each, ~n expected tuples.
    let idx = JoinIndex::build(&right, "k").unwrap();
    let n_target = 60usize;
    let rate = (n_target as f64 / truth.num_rows() as f64).sqrt();
    let true_min_avg = minority_avg(&truth).unwrap();
    let trials = 300;
    let mut naive_estimates = Vec::new();
    let mut naive_sizes = Vec::new();
    let mut uniform_estimates = Vec::new();
    for _ in 0..trials {
        let s = sample_then_join(&left, &right, "k", "k", rate, &mut rng).unwrap();
        naive_sizes.push(s.num_rows() as f64);
        if let Some(a) = minority_avg(&s) {
            naive_estimates.push(a - true_min_avg);
        }
        let samples = chaudhuri_sample(&left, "k", &idx, n_target, &mut rng).unwrap();
        let u = materialize_samples(&left, &right, "k", &samples).unwrap();
        if let Some(a) = minority_avg(&u) {
            uniform_estimates.push(a - true_min_avg);
        }
    }
    print_table(
        "E7a — minority-group AVG estimator at ~60 sampled join tuples (300 trials)",
        &[
            "method",
            "trials w/ minority rows",
            "estimate std-dev",
            "mean sample size",
        ],
        &[
            vec![
                "sample-then-join".into(),
                naive_estimates.len().to_string(),
                f3(std_dev(&naive_estimates)),
                f1(rdi_bench::mean(&naive_sizes)),
            ],
            vec![
                "uniform accept-reject".into(),
                uniform_estimates.len().to_string(),
                f3(std_dev(&uniform_estimates)),
                f1(n_target as f64),
            ],
        ],
    );

    // (b) throughput vs skew: acceptance rate of olken, walks/sample of wander
    let mut rows = Vec::new();
    for skew in [0.0, 0.6, 1.2, 2.0] {
        let (l, r) = zipf_join(500, skew, &mut rng);
        let idx = JoinIndex::build(&r, "k").unwrap();
        let t0 = std::time::Instant::now();
        let (_, attempts) = olken_sample(&l, "k", &idx, 5_000, &mut rng).unwrap();
        let olken_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        chaudhuri_sample(&l, "k", &idx, 5_000, &mut rng).unwrap();
        let chaud_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            format!("{skew:.1}"),
            f3(5_000.0 / attempts as f64),
            f1(olken_ms),
            f1(chaud_ms),
        ]);
    }
    print_table(
        "E7b — throughput vs key skew (5000 samples)",
        &[
            "zipf skew",
            "olken acceptance rate",
            "olken ms",
            "chaudhuri ms",
        ],
        &rows,
    );

    // (c) AQP group-AVG error vs sample size + wander join COUNT error
    let spec = GroupSpec::new(vec!["grp"]);
    let true_stats = spec.stats(&truth, "v").unwrap();
    let true_avg = |g: &str| {
        true_stats
            .iter()
            .find(|(k, _)| k.0[0] == Value::str(g))
            .map(|(_, s)| s.mean)
            .unwrap()
    };
    let wj = WanderJoin::new(vec![&left, &right], &[("k", "k")]).unwrap();
    let mut rows = Vec::new();
    for n in [100, 500, 2_000, 10_000] {
        let samples = chaudhuri_sample(&left, "k", &idx, n, &mut rng).unwrap();
        let st = materialize_samples(&left, &right, "k", &samples).unwrap();
        let est = spec.stats(&st, "v").unwrap();
        let err = |g: &str| {
            est.iter()
                .find(|(k, _)| k.0[0] == Value::str(g))
                .map(|(_, s)| ((s.mean - true_avg(g)) / true_avg(g)).abs())
                .unwrap_or(1.0)
        };
        let count_est = wj.count_estimate(n, &mut rng);
        rows.push(vec![
            n.to_string(),
            f3(err("maj")),
            f3(err("min")),
            f3(count_est.relative_error(truth.num_rows() as f64)),
        ]);
    }
    print_table(
        "E7c — relative AQP error vs sample size",
        &[
            "samples",
            "AVG err (majority)",
            "AVG err (minority)",
            "wander COUNT err",
        ],
        &rows,
    );

    // (d) three-table chain: wander join (HT-reweighted, rejection-free
    // but non-uniform) vs the exact-weight sampler (uniform, one DP
    // sweep) — the Zhao et al. framework's two instantiations.
    let mid = {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let mut t = Table::new(schema);
        for k in 0..500i64 {
            for _ in 0..(k % 3) + 1 {
                t.push_row(vec![Value::Int(k)]).unwrap();
            }
        }
        t
    };
    let left_k = left.select(&["k"]).unwrap();
    let wj3 = WanderJoin::new(vec![&left_k, &mid, &right], &[("k", "k"), ("k", "k")]).unwrap();
    let exact =
        ExactChainSampler::new(vec![&left_k, &mid, &right], &[("k", "k"), ("k", "k")]).unwrap();
    let truth3 = exact.join_size() as f64;
    let mut rows = Vec::new();
    for n in [500, 2_000, 10_000] {
        let t0 = std::time::Instant::now();
        let w_est = wj3.count_estimate(n, &mut rng);
        let w_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        let samples = exact.sample_n(n, &mut rng);
        let e_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            n.to_string(),
            f3(w_est.relative_error(truth3)),
            f1(w_ms),
            samples.len().to_string(),
            f1(e_ms),
        ]);
    }
    print_table(
        "E7d — 3-table chain: wander join vs exact-weight uniform sampler (true size known exactly by the DP)",
        &["walks/samples", "wander COUNT rel-err", "wander ms", "exact uniform samples", "exact ms"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
