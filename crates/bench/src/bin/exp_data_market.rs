//! E12 (§4.2): data-market acquisition.
//!
//! Expected shape (Li, Yu, Koudas, VLDB 2021): with a fixed query budget,
//! explore/exploit predicate selection yields better model accuracy (and
//! better minority coverage) than random predicates, and the advantage
//! grows with the mismatch between the consumer's prior data and the
//! provider's (target) distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_acquisition::ml::{design_matrix, evaluate, LogisticRegression};
use rdi_acquisition::{acquire_from_market, AcquisitionStrategy, MarketProvider};
use rdi_bench::{f3, mean, print_table};
use rdi_datagen::PopulationSpec;
use rdi_fairness::Categorical;
use rdi_table::{GroupSpec, Predicate, Value};

fn main() {
    // Population with group-dependent calibration so representation
    // matters for accuracy.
    let mut pop = PopulationSpec::two_group(0.5);
    pop.group_logit_shift = vec![1.0, -1.0];

    let preds = vec![
        Predicate::eq("group", Value::str("maj")),
        Predicate::eq("group", Value::str("min")),
    ];
    let gspec = GroupSpec::new(vec!["group"]);
    let runs = 10u64;
    let mut rows = Vec::new();
    for consumer_minority in [0.30, 0.10, 0.02] {
        let mut acc_random = Vec::new();
        let mut acc_ee = Vec::new();
        let mut min_rows_ee = Vec::new();
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(7_000 + seed);
            let test = pop.generate(8_000, &mut rng);
            let initial = pop.generate_with_marginals(
                1_000,
                &mut rng,
                Some(&Categorical::from_weights(&[
                    1.0 - consumer_minority,
                    consumer_minority,
                ])),
            );
            for (strategy, accs, track_min) in [
                (AcquisitionStrategy::Random, &mut acc_random, false),
                (
                    AcquisitionStrategy::ExploreExploit { explore_rounds: 4 },
                    &mut acc_ee,
                    true,
                ),
            ] {
                let mut provider = MarketProvider::new(pop.generate(20_000, &mut rng));
                let out = acquire_from_market(
                    &mut provider,
                    &initial,
                    &preds,
                    50,
                    20,
                    &strategy,
                    &mut rng,
                )
                .unwrap();
                let (xs, ys, _) = design_matrix(&out.owned, &["x1", "x2"], "y").unwrap();
                let model = LogisticRegression::train(&xs, &ys, 8, 0.05, 1e-4, &mut rng);
                let eval =
                    evaluate(&test, &["x1", "x2"], "y", &gspec, |x| model.predict(x)).unwrap();
                accs.push(eval.accuracy);
                if track_min {
                    min_rows_ee
                        .push(Predicate::eq("group", Value::str("min")).count(&out.owned) as f64);
                }
            }
        }
        rows.push(vec![
            format!("{:.0}%", consumer_minority * 100.0),
            f3(mean(&acc_random)),
            f3(mean(&acc_ee)),
            format!("{:.0}", mean(&min_rows_ee)),
        ]);
    }
    print_table(
        "E12 — model accuracy after 20 market queries × 50 rows (mean of 10 runs)",
        &[
            "consumer's initial minority share",
            "random predicates",
            "explore/exploit",
            "minority rows held (E/E)",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
