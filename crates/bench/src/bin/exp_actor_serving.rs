//! E21: actor-hosted concurrent serving (`rdi-actor` × `rdi-serve`).
//!
//! Hosts one sharded [`LakeIndex`] as an actor group (one actor per
//! shard plus a maintenance actor) and runs **four concurrent client
//! sessions** against it — interleaved batches, shared shards, seeded
//! virtual-time scheduling — then proves the concurrency is free of
//! observable nondeterminism:
//!
//! * every session's responses are **bitwise identical** to a plain
//!   serial [`ServeSession`] replaying the same request stream over
//!   its own copy of the lake — concurrency changes cache warmth,
//!   never answers;
//! * re-running the experiment with the same scheduler seed replays
//!   the append-only event log **byte for byte** (and a different
//!   scheduler seed reorders messages without changing any response);
//! * reassembling the shards into an inline index and re-hosting it
//!   warm replays the whole workload while building **zero** new
//!   sketches (`discovery.sketches_built` delta is 0);
//! * the maintenance actor routes [`TableDelta`] traffic to owning
//!   shards and surfaces typed per-delta errors; and
//! * a session whose stream turns hostile walks the full breaker arc —
//!   trip → shed → half-open probe → recovery — with each transition
//!   counted (`serve.breaker_trips` / `_probes` / `_recoveries`).
//!
//! Single-threaded by default (`RDI_THREADS=1` unless overridden) so
//! stdout is byte-stable for the golden replay in CI; the root
//! `actor_determinism` proptest sweeps thread counts.

use rdi_actor::{Runtime, RuntimeConfig};
use rdi_bench::{emit_metrics_snapshot, print_table};
use rdi_datagen::sessions::{session_workload, SessionOp, SessionWorkload, SessionWorkloadConfig};
use rdi_fault::RecoveryState;
use rdi_serve::{
    LakeActorGroup, LakeIndex, LakeIndexConfig, MaintActor, MaintMsg, ServeError, ServeRequest,
    ServeResponse, ServeSession, SessionActor, SessionConfig, SessionMsg,
};
use rdi_table::{Table, TableDelta};

const SEED: u64 = 2107;

fn counter(name: &str) -> u64 {
    rdi_obs::counter(name).get()
}

/// Bit-exact encoding of one response: float scores go through
/// `to_bits`, so equal strings ⇔ bitwise-identical responses.
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    fn bits(pairs: &[(String, f64)]) -> String {
        pairs
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(",")
    }
    match r {
        Ok(ServeResponse::UnionTopK(v)) => format!("U[{}]", bits(v)),
        Ok(ServeResponse::JoinableTopK(v)) => format!("J[{}]", bits(v)),
        Ok(ServeResponse::Coverage(c)) => format!(
            "C[{} mups={:?} frac={:016x}]",
            c.table,
            c.mups,
            c.uncovered_fraction.to_bits()
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "T[rows={} cost={:016x} degraded={} quarantined={:?} audit={}]",
            t.rows,
            t.total_cost.to_bits(),
            t.degraded,
            t.quarantined,
            t.audit_passed
        ),
        Err(e) => format!("E[{e:?}]"),
    }
}

/// FNV-1a over a string — a compact stable digest for report tables.
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Map a serve-agnostic workload op onto the serving request type.
fn to_request(op: &SessionOp) -> ServeRequest {
    match op {
        SessionOp::Union { query, k } => ServeRequest::UnionTopK {
            query: query.clone(),
            k: *k,
        },
        SessionOp::Joinable { query, column, k } => ServeRequest::JoinableTopK {
            query: query.clone(),
            column: column.clone(),
            k: *k,
        },
        SessionOp::Coverage {
            table,
            attributes,
            threshold,
        } => ServeRequest::CoverageProbe {
            table: table.clone(),
            attributes: attributes.clone(),
            threshold: *threshold,
        },
        SessionOp::Tailor {
            problem,
            sources,
            max_draws,
        } => ServeRequest::TailorRun {
            problem: problem.clone(),
            sources: sources.clone(),
            max_draws: *max_draws,
        },
    }
}

fn session_config(s: usize) -> SessionConfig {
    SessionConfig {
        seed: 100 + s as u64,
        ..SessionConfig::default()
    }
}

/// Register the workload's lake tables into a fresh sharded index.
/// Costs vary per table so tailoring draw policies stay honest.
fn fresh_index(w: &SessionWorkload) -> LakeIndex {
    let mut index = LakeIndex::new(LakeIndexConfig::default());
    for (i, (id, t)) in w.tables.iter().enumerate() {
        index
            .register(id.clone(), t.clone(), 1.0 + i as f64 * 0.25)
            .unwrap();
    }
    index
}

/// One hosted run's observable outcome.
struct HostedRun {
    /// Per-session flattened response fingerprints.
    fingerprints: Vec<Vec<String>>,
    /// Per-session (batches, requests, admitted, shed, degraded).
    tallies: Vec<(usize, usize, usize, usize, usize)>,
    /// Rendered append-only event log.
    log: String,
    steps: u64,
    delivered: u64,
    /// The shards reassembled into an inline index after the run.
    index: LakeIndex,
}

/// Host `index` as an actor group, run every session's batches
/// interleaved round-robin, and collect per-session outcomes.
fn run_hosted(w: &SessionWorkload, index: LakeIndex, scheduler_seed: u64) -> HostedRun {
    let mut rt = Runtime::new(RuntimeConfig {
        seed: scheduler_seed,
        ..RuntimeConfig::default()
    });
    let delivered_before = counter("actor.messages_delivered");
    let group = LakeActorGroup::host(&mut rt, index);
    let addrs: Vec<_> = w
        .sessions
        .iter()
        .enumerate()
        .map(|(s, script)| group.spawn_session(&mut rt, &script.name, session_config(s)))
        .collect();
    let rounds = w
        .sessions
        .iter()
        .map(|s| s.batches.len())
        .max()
        .unwrap_or(0);
    for round in 0..rounds {
        for (s, script) in w.sessions.iter().enumerate() {
            if let Some(batch) = script.batches.get(round) {
                addrs[s]
                    .send(SessionMsg::Submit(batch.iter().map(to_request).collect()))
                    .unwrap();
            }
        }
    }
    let steps = rt.run_until_idle();
    assert_eq!(rt.delivery_errors(), 0, "no dead letters expected");

    let mut fingerprints = Vec::new();
    let mut tallies = Vec::new();
    for (s, addr) in addrs.iter().enumerate() {
        let actor = rt.actor::<SessionActor>(addr.id()).unwrap();
        let reports = actor.completed();
        assert_eq!(
            reports.len(),
            w.sessions[s].batches.len(),
            "session {s} must finish every batch"
        );
        let fps: Vec<String> = reports
            .iter()
            .flat_map(|r| r.responses.iter().map(fingerprint))
            .collect();
        let (mut adm, mut shed, mut deg, mut reqs) = (0, 0, 0, 0);
        for r in reports {
            adm += r.admitted;
            shed += r.shed;
            deg += usize::from(r.degraded);
            reqs += r.responses.len();
        }
        tallies.push((reports.len(), reqs, adm, shed, deg));
        fingerprints.push(fps);
    }
    let log = rt.event_log().render();
    let delivered = counter("actor.messages_delivered") - delivered_before;
    let index = group.reassemble(&mut rt).unwrap();
    HostedRun {
        fingerprints,
        tallies,
        log,
        steps,
        delivered,
        index,
    }
}

/// Serial reference: each session replays its stream alone over its
/// own copy of the lake — the equivalence oracle for the hosted runs.
fn run_serial(w: &SessionWorkload) -> Vec<Vec<String>> {
    w.sessions
        .iter()
        .enumerate()
        .map(|(s, script)| {
            let mut session = ServeSession::new(fresh_index(w), session_config(s));
            let mut fps = Vec::new();
            for batch in &script.batches {
                let reqs: Vec<ServeRequest> = batch.iter().map(to_request).collect();
                let report = session.submit_batch(&reqs);
                fps.extend(report.responses.iter().map(fingerprint));
            }
            fps
        })
        .collect()
}

/// Walk one hostile session through the full breaker arc: trip on
/// consecutive failures, shed while open, half-open probe after the
/// cooldown, recovery on probe success.
fn breaker_arc(w: &SessionWorkload) -> Vec<Vec<String>> {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let group = LakeActorGroup::host(&mut rt, fresh_index(w));
    let addr = group.spawn_session(
        &mut rt,
        "hostile",
        SessionConfig {
            breaker_threshold: 2,
            breaker_cooldown_ticks: 2,
            seed: 9,
            ..SessionConfig::default()
        },
    );
    let ghost = |n: usize| ServeRequest::CoverageProbe {
        table: format!("ghost{n:02}"),
        attributes: vec!["group".to_string()],
        threshold: 1,
    };
    let healthy = ServeRequest::CoverageProbe {
        table: "lake00".to_string(),
        attributes: vec!["group".to_string()],
        threshold: 1,
    };
    let (t0, p0, r0, s0) = (
        counter("serve.breaker_trips"),
        counter("serve.breaker_probes"),
        counter("serve.breaker_recoveries"),
        counter("serve.shed"),
    );
    // tick 1: two unknown-table failures → breaker trips open.
    addr.send(SessionMsg::Submit(vec![ghost(0), ghost(1)]))
        .unwrap();
    // tick 2: still inside the cooldown → the whole batch sheds.
    addr.send(SessionMsg::Submit(vec![healthy.clone()]))
        .unwrap();
    // tick 3: cooldown elapsed → exactly one half-open probe; its
    // success closes the breaker (counted as a recovery).
    addr.send(SessionMsg::Submit(vec![healthy.clone()]))
        .unwrap();
    // tick 4: closed again — normal admission.
    addr.send(SessionMsg::Submit(vec![healthy])).unwrap();
    rt.run_until_idle();

    let actor = rt.actor::<SessionActor>(addr.id()).unwrap();
    assert_eq!(actor.breaker_state(), RecoveryState::Closed);
    let reports = actor.completed();
    assert_eq!(reports.len(), 4);
    assert_eq!(reports[1].shed, 1, "open breaker must shed the batch");
    assert!(reports[2].responses[0].is_ok(), "probe must succeed");
    assert!(reports[3].responses[0].is_ok(), "closed breaker admits");
    let trips = counter("serve.breaker_trips") - t0;
    let probes = counter("serve.breaker_probes") - p0;
    let recoveries = counter("serve.breaker_recoveries") - r0;
    let shed = counter("serve.shed") - s0;
    assert_eq!((trips, probes, recoveries), (1, 1, 1));
    vec![vec![
        trips.to_string(),
        shed.to_string(),
        probes.to_string(),
        recoveries.to_string(),
        "Closed".to_string(),
    ]]
}

fn main() {
    // Golden-stability: the experiment is bitwise identical for any
    // RDI_THREADS (that is half of what it proves), but stdout also
    // embeds global counters, so pin the thread count unless the
    // caller overrides it.
    if std::env::var_os("RDI_THREADS").is_none() {
        std::env::set_var("RDI_THREADS", "1");
    }

    let workload = session_workload(&SessionWorkloadConfig::default(), SEED);
    let total_reqs: usize = workload
        .sessions
        .iter()
        .flat_map(|s| s.batches.iter())
        .map(|b| b.len())
        .sum();
    print_table(
        "E21 workload",
        &["tables", "sessions", "batches", "requests"],
        &[vec![
            workload.tables.len().to_string(),
            workload.sessions.len().to_string(),
            workload
                .sessions
                .iter()
                .map(|s| s.batches.len())
                .sum::<usize>()
                .to_string(),
            total_reqs.to_string(),
        ]],
    );

    // --- cold hosted run: 4 concurrent sessions over shared shards ---
    let cold = run_hosted(&workload, fresh_index(&workload), 0);
    let serial = run_serial(&workload);
    let rows: Vec<Vec<String>> = workload
        .sessions
        .iter()
        .enumerate()
        .map(|(s, script)| {
            let (batches, reqs, adm, shed, deg) = cold.tallies[s];
            assert_eq!(
                cold.fingerprints[s], serial[s],
                "session {} hosted != serial",
                script.name
            );
            vec![
                script.name.clone(),
                batches.to_string(),
                reqs.to_string(),
                adm.to_string(),
                shed.to_string(),
                deg.to_string(),
                format!("{:016x}", digest(&cold.fingerprints[s].join(";"))),
                "true".to_string(),
            ]
        })
        .collect();
    print_table(
        "concurrent sessions vs serial oracle",
        &[
            "session",
            "batches",
            "requests",
            "admitted",
            "shed",
            "degraded",
            "response_digest",
            "bitwise_equal_serial",
        ],
        &rows,
    );

    // --- replay: same scheduler seed ⇒ byte-identical event log;
    //     different seed ⇒ different schedule, same responses ---
    let replay = run_hosted(&workload, fresh_index(&workload), 0);
    assert_eq!(cold.log, replay.log, "same seed must replay the log");
    assert_eq!(cold.fingerprints, replay.fingerprints);
    let reseeded = run_hosted(&workload, fresh_index(&workload), 1);
    assert_eq!(
        cold.fingerprints, reseeded.fingerprints,
        "scheduler seed must never change responses"
    );
    print_table(
        "deterministic replay",
        &[
            "log_lines",
            "log_digest",
            "steps",
            "delivered",
            "replay_log_identical",
            "reseeded_log_identical",
            "reseeded_responses_identical",
        ],
        &[vec![
            cold.log.lines().count().to_string(),
            format!("{:016x}", digest(&cold.log)),
            cold.steps.to_string(),
            cold.delivered.to_string(),
            "true".to_string(),
            (reseeded.log == cold.log).to_string(),
            "true".to_string(),
        ]],
    );

    // --- warm replay: reassemble the shards, re-host, re-run —
    //     zero new sketches, identical responses ---
    let built_before = counter("discovery.sketches_built");
    let warm = run_hosted(&workload, cold.index, 0);
    let built_delta = counter("discovery.sketches_built") - built_before;
    assert_eq!(built_delta, 0, "warm replay must build zero sketches");
    assert_eq!(
        warm.fingerprints, cold.fingerprints,
        "warm replay must be bitwise identical"
    );
    print_table(
        "warm replay over reassembled index",
        &["sketches_built_delta", "responses_identical"],
        &[vec![built_delta.to_string(), "true".to_string()]],
    );

    // --- maintenance: deltas route to owning shards, errors are typed ---
    let mut rt = Runtime::new(RuntimeConfig::default());
    let group = LakeActorGroup::host(&mut rt, warm.index);
    let extra: Table = workload.tables[0].1.clone();
    group
        .maint()
        .send(MaintMsg::Delta {
            id: "lake00".to_string(),
            delta: TableDelta::Append(extra.clone()),
        })
        .unwrap();
    group
        .maint()
        .send(MaintMsg::Upsert {
            id: "fresh".to_string(),
            table: extra,
            cost: 2.0,
        })
        .unwrap();
    group
        .maint()
        .send(MaintMsg::Delta {
            id: "ghost99".to_string(),
            delta: TableDelta::Drop,
        })
        .unwrap();
    rt.run_until_idle();
    let maint = rt.actor::<MaintActor>(group.maint().id()).unwrap();
    assert_eq!(maint.applied(), 2);
    assert_eq!(maint.errors().len(), 1, "ghost drop must surface an error");
    print_table(
        "maintenance actor",
        &["deltas_applied", "rows_applied", "typed_errors"],
        &[vec![
            maint.applied().to_string(),
            maint.rows_applied().to_string(),
            maint.errors().len().to_string(),
        ]],
    );

    // --- breaker arc under actor hosting ---
    print_table(
        "breaker arc (trip → shed → probe → recovery)",
        &["trips", "shed", "probes", "recoveries", "final_state"],
        &breaker_arc(&workload),
    );

    emit_metrics_snapshot();
}
