//! E17: serial-vs-parallel scaling of the `rdi-par`-backed kernels.
//!
//! Each kernel runs at `RDI_THREADS ∈ {1, 2, 4, 8}` (set programmatically
//! via [`Threads::fixed`]) and reports wall time plus speedup over the
//! single-thread run. The binary also *asserts* the bitwise-identity
//! contract: every parallel result must equal the `Threads::serial()`
//! result exactly.
//!
//! Expected shape: on a multi-core host, speedup approaches the thread
//! count for the embarrassingly parallel kernels (sketching, sampling,
//! generation) until it saturates at the physical core count; on a
//! single-core host all thread counts collapse to ~1× (the chunked
//! dispatch adds only a small constant overhead).

use std::time::Instant;

use rdi_bench::{f1, print_table};
use rdi_coverage::CoverageAnalyzer;
use rdi_datagen::{LakeConfig, PopulationSpec, SyntheticLake};
use rdi_discovery::{TableSignature, UnionSearchIndex};
use rdi_joinsample::{olken_sample_par, JoinIndex};
use rdi_par::Threads;
use rdi_table::{DataType, Field, Schema, Table, Value};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-3 wall time in milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1000.0
        })
        .fold(f64::INFINITY, f64::min)
}

fn scaling_row<T: PartialEq>(name: &str, run: impl Fn(Threads) -> T) -> Vec<String> {
    let baseline = run(Threads::serial());
    for &tc in &THREAD_COUNTS {
        assert!(
            run(Threads::fixed(tc)) == baseline,
            "{name}: parallel result diverged at {tc} threads"
        );
    }
    let times: Vec<f64> = THREAD_COUNTS
        .iter()
        .map(|&tc| time_ms(|| drop(run(Threads::fixed(tc)))))
        .collect();
    let mut row = vec![name.to_string()];
    for t in &times {
        row.push(f1(*t));
    }
    for t in &times[1..] {
        row.push(format!("{:.2}x", times[0] / t));
    }
    row
}

fn skewed_table(n: usize, d: usize) -> Table {
    let fields = (0..d)
        .map(|i| Field::new(format!("a{i}"), DataType::Str))
        .collect();
    let mut t = Table::new(Schema::new(fields));
    // deterministic skew without an RNG: category from a hash of (row, col)
    for r in 0..n {
        let row: Vec<Value> = (0..d)
            .map(|c| {
                let h = (r * 31 + c * 17) % 100;
                let cat = if h < 70 {
                    "0"
                } else if h < 95 {
                    "1"
                } else {
                    "2"
                };
                Value::str(cat)
            })
            .collect();
        t.push_row(row).unwrap();
    }
    t
}

fn main() {
    let mut rows = Vec::new();

    // (1) discovery: sketch every candidate column and run union search
    let lake = SyntheticLake::generate_par(
        &LakeConfig {
            num_candidates: 40,
            query_keys: 2_000,
            candidate_rows: 2_000,
            joinable_fraction: 0.4,
        },
        7,
        Threads::serial(),
    );
    rows.push(scaling_row("sketch+union search", |threads| {
        let mut index = UnionSearchIndex::new();
        for c in &lake.candidates {
            index.insert(TableSignature::build_with(&c.name, &c.table, 128, threads).unwrap());
        }
        let q = TableSignature::build_with("query", &lake.query, 128, threads).unwrap();
        index.top_k_with(&q, 10, threads)
    }));

    // (2) coverage: MUP enumeration over a 7-attribute lattice
    let t = skewed_table(20_000, 7);
    let attrs: Vec<String> = (0..7).map(|i| format!("a{i}")).collect();
    let attrs_ref: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let an = CoverageAnalyzer::new(&t, &attrs_ref, 25).unwrap();
    rows.push(scaling_row("MUP pattern-breaker", |threads| {
        an.mups_pattern_breaker_with(threads)
    }));

    // (3) joinsample: Olken accept-reject over a skewed join
    let mut left = Table::new(Schema::new(vec![Field::new("k", DataType::Int)]));
    let mut right = Table::new(Schema::new(vec![Field::new("k", DataType::Int)]));
    for k in 0..500i64 {
        left.push_row(vec![Value::Int(k)]).unwrap();
        for _ in 0..=(k % 20) {
            right.push_row(vec![Value::Int(k)]).unwrap();
        }
    }
    let idx = JoinIndex::build(&right, "k").unwrap();
    rows.push(scaling_row("Olken join sampling", |threads| {
        olken_sample_par(&left, "k", &idx, 100_000, 3, threads).unwrap()
    }));

    // (4) datagen: population generation
    let spec = PopulationSpec::two_group(0.2);
    rows.push(scaling_row("population generation", |threads| {
        spec.generate_par(200_000, 11, threads)
    }));

    print_table(
        "E17 — rdi-par scaling (wall ms, best of 3; speedup vs 1 thread)",
        &[
            "kernel", "1T ms", "2T ms", "4T ms", "8T ms", "2T", "4T", "8T",
        ],
        &rows,
    );
    println!(
        "\nhost parallelism: {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!("all kernels verified bitwise identical to Threads::serial() at every thread count");
    rdi_bench::emit_metrics_snapshot();
}
