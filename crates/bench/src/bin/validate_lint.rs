//! CI helper: validate `rdi-lint --json` output against the report
//! schema.
//!
//! Reads the lint JSON document on **stdin** and checks the schema
//! contract the CI gate relies on: `version` is the supported one
//! (v1 reports are rejected with a pointed message — the v1 schema
//! died when the analyzer grew the symbol graph), the summary fields
//! are present, the rule catalog lists all twelve rules exactly once,
//! `rule_counts` covers the same catalog, the `symbols` block carries
//! the graph statistics, `classification` lists the workspace crates,
//! and each finding is a well-formed object with a stable fingerprint.
//! Exits non-zero (with a message on stderr) on any violation — so a
//! pipeline like
//!
//! ```text
//! cargo run -p rdi-lint -- --json | cargo run --bin validate_lint
//! ```
//!
//! fails loudly if the analyzer's machine-readable output ever drifts
//! from what downstream tooling parses. Findings themselves are *not*
//! gated here: `rdi-lint`'s own exit status does that.

use std::io::Read;
use std::process::exit;

/// Schema version this validator understands (see
/// `crates/lint/src/report.rs`).
const SUPPORTED_VERSION: u64 = 2;

/// Every rule the catalog must list, in order.
const RULE_IDS: [&str; 12] = [
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12",
];

/// Statistics the `symbols` block must carry.
const SYMBOL_FIELDS: [&str; 5] = [
    "files_parsed",
    "items",
    "functions",
    "call_edges",
    "emitting_functions",
];

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("validate_lint: cannot read stdin: {e}");
        exit(1);
    }
    let doc: serde_json::Value = match serde_json::from_str(input.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_lint: report is not valid JSON: {e:?}");
            exit(2);
        }
    };

    let version = doc.get("version").and_then(|v| v.as_u64());
    match version {
        Some(v) if v == SUPPORTED_VERSION => {}
        Some(1) => {
            eprintln!(
                "validate_lint: report is schema v1 — the pre-symbol-graph format. \
                 Rebuild rdi-lint from this workspace; v1 reports are no longer accepted"
            );
            exit(2);
        }
        other => {
            eprintln!(
                "validate_lint: unsupported report version {other:?} (want {SUPPORTED_VERSION})"
            );
            exit(2);
        }
    }
    for field in ["root", "files_scanned", "suppressed"] {
        if doc.get(field).is_none() {
            eprintln!("validate_lint: report missing `{field}` field");
            exit(2);
        }
    }

    let Some(rules) = doc.get("rules").and_then(|v| v.as_array()) else {
        eprintln!("validate_lint: report missing `rules` array");
        exit(2);
    };
    let listed: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(|v| v.as_str()))
        .collect();
    for id in RULE_IDS {
        if listed.iter().filter(|&&l| l == id).count() != 1 {
            eprintln!("validate_lint: rule catalog must list `{id}` exactly once, got {listed:?}");
            exit(2);
        }
    }
    for r in rules {
        for field in ["name", "summary"] {
            if r.get(field).and_then(|v| v.as_str()).is_none() {
                eprintln!("validate_lint: rule entry missing string `{field}`: {r:?}");
                exit(2);
            }
        }
    }

    // Per-rule counts: one entry per catalog rule, even when zero.
    let Some(counts) = doc.get("rule_counts") else {
        eprintln!("validate_lint: report missing `rule_counts` object");
        exit(2);
    };
    for id in RULE_IDS {
        if counts.get(id).and_then(|v| v.as_u64()).is_none() {
            eprintln!("validate_lint: rule_counts missing numeric `{id}`");
            exit(2);
        }
    }

    // Symbol-graph statistics.
    let Some(symbols) = doc.get("symbols") else {
        eprintln!("validate_lint: report missing `symbols` block");
        exit(2);
    };
    for field in SYMBOL_FIELDS {
        if symbols.get(field).and_then(|v| v.as_u64()).is_none() {
            eprintln!("validate_lint: symbols block missing numeric `{field}`");
            exit(2);
        }
    }

    // Crate classification table (may be empty for fixture trees, but
    // must be present and well-formed).
    let Some(classes) = doc.get("classification").and_then(|v| v.as_array()) else {
        eprintln!("validate_lint: report missing `classification` array");
        exit(2);
    };
    for c in classes {
        if c.get("name").and_then(|v| v.as_str()).is_none()
            || c.get("algo").and_then(|v| v.as_bool()).is_none()
            || c.get("explicit").and_then(|v| v.as_bool()).is_none()
        {
            eprintln!("validate_lint: malformed classification entry: {c:?}");
            exit(2);
        }
    }

    let Some(findings) = doc.get("findings").and_then(|v| v.as_array()) else {
        eprintln!("validate_lint: report missing `findings` array");
        exit(2);
    };
    for f in findings {
        let rule = f.get("rule").and_then(|v| v.as_str());
        match rule {
            Some(r) if RULE_IDS.contains(&r) => {}
            other => {
                eprintln!("validate_lint: finding with unknown rule {other:?}: {f:?}");
                exit(2);
            }
        }
        if f.get("file").and_then(|v| v.as_str()).is_none()
            || f.get("line").and_then(|v| v.as_u64()).is_none()
            || f.get("item").and_then(|v| v.as_str()).is_none()
            || f.get("message").and_then(|v| v.as_str()).is_none()
        {
            eprintln!("validate_lint: malformed finding entry: {f:?}");
            exit(2);
        }
        match f.get("fingerprint").and_then(|v| v.as_str()) {
            Some(fp) if fp.len() == 16 && fp.chars().all(|c| c.is_ascii_hexdigit()) => {}
            other => {
                eprintln!("validate_lint: finding fingerprint must be 16 hex chars, got {other:?}");
                exit(2);
            }
        }
    }

    let files = doc
        .get("files_scanned")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if files == 0 {
        eprintln!("validate_lint: report claims zero files scanned — wrong root?");
        exit(2);
    }
    let parsed = symbols
        .get("files_parsed")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if parsed == 0 {
        eprintln!("validate_lint: symbol graph parsed zero files — parser wired up wrong?");
        exit(2);
    }
    println!(
        "validate_lint: OK — version {SUPPORTED_VERSION}, {files} file(s) scanned, \
         {parsed} parsed into the symbol graph, {} finding(s), {} rule(s)",
        findings.len(),
        rules.len()
    );
}
