//! CI helper: validate `rdi-lint --json` output against the report
//! schema.
//!
//! Reads the lint JSON document on **stdin** and checks the schema
//! contract the CI gate relies on: `version` is the supported one,
//! the summary fields are present, the rule catalog lists every rule
//! exactly once, and each finding is a well-formed object. Exits
//! non-zero (with a message on stderr) on any violation — so a
//! pipeline like
//!
//! ```text
//! cargo run -p rdi-lint -- --json | cargo run --bin validate_lint
//! ```
//!
//! fails loudly if the analyzer's machine-readable output ever drifts
//! from what downstream tooling parses. Findings themselves are *not*
//! gated here: `rdi-lint`'s own exit status does that.

use std::io::Read;
use std::process::exit;

/// Schema version this validator understands (see
/// `crates/lint/src/report.rs`).
const SUPPORTED_VERSION: u64 = 1;

/// Every rule the catalog must list, in order.
const RULE_IDS: [&str; 8] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"];

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("validate_lint: cannot read stdin: {e}");
        exit(1);
    }
    let doc: serde_json::Value = match serde_json::from_str(input.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_lint: report is not valid JSON: {e:?}");
            exit(2);
        }
    };

    let version = doc.get("version").and_then(|v| v.as_u64());
    if version != Some(SUPPORTED_VERSION) {
        eprintln!(
            "validate_lint: unsupported report version {version:?} (want {SUPPORTED_VERSION})"
        );
        exit(2);
    }
    for field in ["root", "files_scanned", "suppressed"] {
        if doc.get(field).is_none() {
            eprintln!("validate_lint: report missing `{field}` field");
            exit(2);
        }
    }

    let Some(rules) = doc.get("rules").and_then(|v| v.as_array()) else {
        eprintln!("validate_lint: report missing `rules` array");
        exit(2);
    };
    let listed: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(|v| v.as_str()))
        .collect();
    for id in RULE_IDS {
        if listed.iter().filter(|&&l| l == id).count() != 1 {
            eprintln!("validate_lint: rule catalog must list `{id}` exactly once, got {listed:?}");
            exit(2);
        }
    }
    for r in rules {
        for field in ["name", "summary"] {
            if r.get(field).and_then(|v| v.as_str()).is_none() {
                eprintln!("validate_lint: rule entry missing string `{field}`: {r:?}");
                exit(2);
            }
        }
    }

    let Some(findings) = doc.get("findings").and_then(|v| v.as_array()) else {
        eprintln!("validate_lint: report missing `findings` array");
        exit(2);
    };
    for f in findings {
        let rule = f.get("rule").and_then(|v| v.as_str());
        match rule {
            Some(r) if RULE_IDS.contains(&r) => {}
            other => {
                eprintln!("validate_lint: finding with unknown rule {other:?}: {f:?}");
                exit(2);
            }
        }
        if f.get("file").and_then(|v| v.as_str()).is_none()
            || f.get("line").and_then(|v| v.as_u64()).is_none()
            || f.get("message").and_then(|v| v.as_str()).is_none()
        {
            eprintln!("validate_lint: malformed finding entry: {f:?}");
            exit(2);
        }
    }

    let files = doc
        .get("files_scanned")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if files == 0 {
        eprintln!("validate_lint: report claims zero files scanned — wrong root?");
        exit(2);
    }
    println!(
        "validate_lint: OK — version {SUPPORTED_VERSION}, {files} file(s) scanned, {} finding(s), {} rule(s)",
        findings.len(),
        rules.len()
    );
}
