//! E15 (§5 extension): per-attribute marginal requirements.
//!
//! Expected shape (the tutorial's own argument): because one kept tuple
//! credits every attribute's requirement simultaneously, collecting
//! marginal requirements is strictly cheaper than collecting the
//! equivalent intersectional requirements — and the advantage grows with
//! the number of constrained attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_bench::{f1, mean, print_table};
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::{
    run_marginal_tailoring, run_tailoring, DtProblem, MarginalProblem, MarginalSource,
    RandomPolicy, TableSource,
};

/// d binary sensitive attributes, uniform combinations.
fn source(d: usize, n: usize, rng: &mut StdRng) -> Table {
    let fields = (0..d)
        .map(|i| Field::new(format!("a{i}"), DataType::Str).with_role(Role::Sensitive))
        .collect();
    let mut t = Table::new(Schema::new(fields));
    for _ in 0..n {
        let row: Vec<Value> = (0..d)
            .map(|_| Value::str(if rng.gen::<bool>() { "0" } else { "1" }))
            .collect();
        t.push_row(row).unwrap();
    }
    t
}

fn main() {
    let runs = 15;
    let need = 50;
    let mut rows = Vec::new();
    for d in [1usize, 2, 3, 4] {
        let mut marginal_cost = Vec::new();
        let mut intersectional_cost = Vec::new();
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let table = source(d, 5_000, &mut rng);

            // marginal: `need` of every value of every attribute
            let mut mp = MarginalProblem::default();
            for i in 0..d {
                mp = mp.require(format!("a{i}"), Value::str("0"), need).require(
                    format!("a{i}"),
                    Value::str("1"),
                    need,
                );
            }
            let mut msources = vec![MarginalSource::new("s", table.clone(), 1.0, &mp).unwrap()];
            let mut policy = RandomPolicy::new(1);
            let out = run_marginal_tailoring(&mut msources, &mp, &mut policy, &mut rng, 10_000_000)
                .unwrap();
            assert!(out.satisfied);
            marginal_cost.push(out.total_cost);

            // intersectional equivalent: `need` per full combination,
            // scaled so every marginal also reaches `need`
            // (need per combo = need / 2^(d-1), at least 1)
            let spec = GroupSpec::new((0..d).map(|i| format!("a{i}")).collect::<Vec<_>>());
            let per_combo = (need / (1 << (d - 1))).max(1);
            let mut combos = Vec::new();
            for c in 0..(1 << d) {
                let key = GroupKey(
                    (0..d)
                        .map(|i| Value::str(if (c >> i) & 1 == 0 { "0" } else { "1" }))
                        .collect(),
                );
                combos.push((key, per_combo));
            }
            let ip = DtProblem::exact_counts(spec, combos);
            let mut isources = vec![TableSource::new("s", table, 1.0, &ip).unwrap()];
            let mut policy = RandomPolicy::new(1);
            let out = run_tailoring(&mut isources, &ip, &mut policy, &mut rng, 10_000_000).unwrap();
            assert!(out.satisfied);
            intersectional_cost.push(out.total_cost);
        }
        rows.push(vec![
            d.to_string(),
            f1(mean(&marginal_cost)),
            f1(mean(&intersectional_cost)),
            format!(
                "{:.2}×",
                mean(&intersectional_cost) / mean(&marginal_cost).max(1e-9)
            ),
        ]);
    }
    print_table(
        "E15 — marginal vs equivalent intersectional collection cost (50 per attribute value, 15 runs)",
        &["constrained attributes", "marginal cost", "intersectional cost", "ratio"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
