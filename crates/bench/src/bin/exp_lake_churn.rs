//! E20: incremental lake-index maintenance under churn (`rdi-serve`).
//!
//! Replays a seeded register/append/delete/drop stream
//! (`rdi_datagen::churn`) over a sharded [`LakeIndex`] and proves —
//! on a single CPU, by **work counters, not wall-clock** — that the
//! warm path does O(delta) sketch work, not O(table):
//!
//! * after every event, every query type (union, joinability,
//!   coverage, tailoring) answers **bitwise identically** on the
//!   incrementally-maintained index and on a cold index rebuilt from
//!   scratch over the same content;
//! * each append/delete does exactly `rows × maintained sketch
//!   columns` incremental updates (`sketch.incremental_updates`) and
//!   `sketch.rebuilds` stays **zero** until a table's deletion debt
//!   crosses `deletion_debt_threshold`, at which point exactly one
//!   counted rebuild per maintained sketch resets the debt;
//! * an [`UpdatableKmv`] absorbing the same stream stays bitwise
//!   identical to a cold `KmvSketch::build` at every step; and
//! * under a deliberately tiny byte budget the per-shard caches evict
//!   (`serve.cache.evictions` / `serve.cache.evicted_bytes`) instead
//!   of overflowing.

use std::collections::BTreeMap;

use rdi_bench::{emit_metrics_snapshot, print_table};
use rdi_datagen::churn::{churn_workload, ChurnConfig, ChurnEvent};
use rdi_discovery::{KmvSketch, UpdatableKmv};
use rdi_serve::{
    LakeIndex, LakeIndexConfig, ServeError, ServeRequest, ServeResponse, ServeSession,
    SessionConfig,
};
use rdi_table::{GroupKey, GroupSpec, Table, TableDelta, Value};
use rdi_tailor::DtProblem;

const SEED: u64 = 2006;
/// Low on purpose so the stream crosses it a few times.
const DEBT_THRESHOLD: u64 = 12;
/// Sketch columns maintained per table: 2 union columns + 1 join
/// profile on `key`, each counting one incremental update per row.
const MAINTAINED_COLS: u64 = 3;

fn counter(name: &str) -> u64 {
    rdi_obs::counter(name).get()
}

fn index_config() -> LakeIndexConfig {
    LakeIndexConfig {
        deletion_debt_threshold: DEBT_THRESHOLD,
        ..LakeIndexConfig::default()
    }
}

/// Bit-exact encoding of one response: float scores go through
/// `to_bits`, so equal strings ⇔ bitwise-identical responses.
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    fn bits(pairs: &[(String, f64)]) -> String {
        pairs
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(",")
    }
    match r {
        Ok(ServeResponse::UnionTopK(v)) => format!("U[{}]", bits(v)),
        Ok(ServeResponse::JoinableTopK(v)) => format!("J[{}]", bits(v)),
        Ok(ServeResponse::Coverage(c)) => format!(
            "C[{} mups={:?} frac={:016x}]",
            c.table,
            c.mups,
            c.uncovered_fraction.to_bits()
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "T[rows={} cost={:016x} degraded={} quarantined={:?} audit={}]",
            t.rows,
            t.total_cost.to_bits(),
            t.degraded,
            t.quarantined,
            t.audit_passed
        ),
        Err(e) => format!("E[{e:?}]"),
    }
}

/// A query batch covering every request type, aimed at the
/// lexicographically-first live table.
fn probe_batch(query: &Table, target: &str) -> Vec<ServeRequest> {
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["key"]),
        vec![
            (GroupKey(vec![Value::str("k00007")]), 2),
            (GroupKey(vec![Value::str("k00042")]), 2),
        ],
    );
    vec![
        ServeRequest::UnionTopK {
            query: query.clone(),
            k: 3,
        },
        ServeRequest::JoinableTopK {
            query: query.clone(),
            column: "key".into(),
            k: 3,
        },
        ServeRequest::CoverageProbe {
            table: target.into(),
            attributes: vec!["key".into()],
            threshold: 2,
        },
        ServeRequest::TailorRun {
            problem,
            sources: vec![target.into()],
            max_draws: 500,
        },
    ]
}

/// Submit the batch through a *fresh* session (arrival counter at 0,
/// so both indexes consume identical per-request RNG streams) and
/// hand the index back.
fn probe(index: LakeIndex, batch: &[ServeRequest]) -> (LakeIndex, Vec<String>) {
    let mut session = ServeSession::new(
        index,
        SessionConfig {
            seed: SEED,
            ..SessionConfig::default()
        },
    );
    let report = session.submit_batch(batch);
    let fps = report.responses.iter().map(fingerprint).collect();
    (session.into_index(), fps)
}

/// Cold reference: a fresh index over the mirror's current content —
/// every sketch rebuilt from the full tables.
fn cold_index(mirror: &BTreeMap<String, (Table, f64)>) -> LakeIndex {
    let mut index = LakeIndex::new(index_config());
    for (id, (t, cost)) in mirror {
        index.register(id.clone(), t.clone(), *cost).unwrap();
    }
    index
}

fn main() {
    // Span tick totals under RDI_FAKE_CLOCK depend on thread
    // interleaving; pin serial execution when the caller hasn't chosen
    // so the golden stays byte-stable. Answers are thread-invariant
    // regardless (tests/churn_determinism.rs sweeps 1/2/8 threads).
    if std::env::var_os("RDI_THREADS").is_none() {
        std::env::set_var("RDI_THREADS", "1");
    }

    let workload = churn_workload(
        &ChurnConfig {
            num_tables: 6,
            events: 64,
            initial_rows: 160,
            ..ChurnConfig::default()
        },
        SEED,
    );

    // --- 1. replay: incremental index vs per-event cold rebuild ---
    let mut index = LakeIndex::new(index_config());
    let mut mirror: BTreeMap<String, (Table, f64)> = BTreeMap::new();
    for (id, t) in &workload.tables {
        index.register(id.clone(), t.clone(), 1.0).unwrap();
        mirror.insert(id.clone(), (t.clone(), 1.0));
    }
    // Warm every sketch once so maintenance starts before the churn.
    // The probe query is itself a one-table churn lake from a disjoint
    // seed — same schema, overlapping key pool.
    let query = churn_workload(
        &ChurnConfig {
            num_tables: 1,
            events: 0,
            initial_rows: 60,
            ..ChurnConfig::default()
        },
        SEED ^ 0xE20,
    )
    .tables
    .remove(0)
    .1;
    let warm_batch = probe_batch(&query, "t00");
    let (warmed, _) = probe(index, &warm_batch);
    index = warmed;

    // Predicted per-table deletion debt, mirroring the index's policy.
    let mut debt: BTreeMap<String, u64> = mirror.keys().map(|k| (k.clone(), 0)).collect();
    let mut kind_counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut crossings = 0u64;
    let mut first_crossing: Option<usize> = None;
    let mut rebuilds_before_crossing = 0u64;
    let rebuilds_0 = counter("sketch.rebuilds");

    for (i, ev) in workload.events.iter().enumerate() {
        *kind_counts.entry(ev.kind()).or_default() += 1;
        let iu_0 = counter("sketch.incremental_updates");
        let ra_0 = counter("serve.delta.rows_applied");
        let rb_0 = counter("sketch.rebuilds");

        // Expected exact counter deltas for this one event.
        let (exp_rows, exp_iu, exp_rb) = match ev {
            ChurnEvent::Register { id, table, cost } => {
                index.register(id.clone(), table.clone(), *cost).unwrap();
                mirror.insert(id.clone(), (table.clone(), *cost));
                debt.insert(id.clone(), 0);
                (0, 0, 0)
            }
            ChurnEvent::Delta { id, delta } => {
                let touched = index.apply_delta(id, delta).unwrap();
                let n = touched as u64;
                match delta {
                    TableDelta::Append(rows) => {
                        mirror.get_mut(id).unwrap().0.append(rows).unwrap();
                        (n, n * MAINTAINED_COLS, 0)
                    }
                    TableDelta::Delete(idx) => {
                        mirror.get_mut(id).unwrap().0.delete_rows(idx).unwrap();
                        let d = debt.get_mut(id).unwrap();
                        *d += n;
                        if *d > DEBT_THRESHOLD {
                            *d = 0;
                            crossings += 1;
                            if first_crossing.is_none() {
                                first_crossing = Some(i);
                                rebuilds_before_crossing = rb_0 - rebuilds_0;
                            }
                            // one counted rebuild per maintained sketch
                            (n, 0, MAINTAINED_COLS - 1)
                        } else {
                            (n, n * MAINTAINED_COLS, 0)
                        }
                    }
                    TableDelta::Drop => {
                        mirror.remove(id);
                        debt.remove(id);
                        (0, 0, 0)
                    }
                }
            }
        };
        let kind = ev.kind();
        assert_eq!(
            counter("serve.delta.rows_applied") - ra_0,
            exp_rows,
            "event {i} ({kind}): rows applied"
        );
        assert_eq!(
            counter("sketch.incremental_updates") - iu_0,
            exp_iu,
            "event {i} ({kind}): warm-path work must be O(delta rows)"
        );
        assert_eq!(
            counter("sketch.rebuilds") - rb_0,
            exp_rb,
            "event {i} ({kind}): rebuilds only when debt crosses {DEBT_THRESHOLD}"
        );

        // Every query type, incremental vs cold-rebuilt, bit for bit.
        let target = mirror.keys().next().unwrap().clone();
        let batch = probe_batch(&query, &target);
        let (warm, inc_fp) = probe(index, &batch);
        index = warm;
        let (_, cold_fp) = probe(cold_index(&mirror), &batch);
        assert_eq!(
            inc_fp, cold_fp,
            "event {i} ({kind}): incremental answers diverged from cold rebuild"
        );
    }

    let rebuilds_total = counter("sketch.rebuilds") - rebuilds_0;
    assert!(crossings > 0, "stream never crossed the debt threshold");
    assert_eq!(
        rebuilds_before_crossing, 0,
        "no rebuilds before the first crossing"
    );
    assert_eq!(
        rebuilds_total,
        crossings * (MAINTAINED_COLS - 1),
        "exactly one counted rebuild per maintained sketch per crossing"
    );
    let first = first_crossing.unwrap();
    print_table(
        &format!(
            "E20: {} churn events over {} initial tables (debt threshold {DEBT_THRESHOLD})",
            workload.events.len(),
            workload.tables.len()
        ),
        &["event kind", "count"],
        &kind_counts
            .iter()
            .map(|(k, v)| vec![k.to_string(), v.to_string()])
            .collect::<Vec<_>>(),
    );
    print_table(
        "E20b: warm-path work is O(delta), proven by counters",
        &["measure", "value"],
        &[
            vec![
                "rebuilds before first debt crossing".into(),
                format!("0 (first crossing at event {first})"),
            ],
            vec!["debt crossings".into(), crossings.to_string()],
            vec![
                "sketch.rebuilds (2 sketches/table)".into(),
                rebuilds_total.to_string(),
            ],
            vec![
                "incremental vs cold-rebuilt answers".into(),
                format!(
                    "bitwise identical for {} events x {} query types",
                    workload.events.len(),
                    4
                ),
            ],
        ],
    );

    // --- 2. shard layout: pure function of the id bytes ---
    let counts = index.shard_table_counts();
    let caps = index.shard_cache_capacities();
    assert_eq!(
        caps.iter().sum::<usize>(),
        index.config().cache_capacity_bytes,
        "per-shard capacities must partition the global budget"
    );
    print_table(
        "E20c: shard layout after churn (assignment = hash(id) % shards)",
        &["shard", "tables", "cache capacity (bytes)"],
        &counts
            .iter()
            .zip(&caps)
            .enumerate()
            .map(|(i, (t, c))| vec![i.to_string(), t.to_string(), c.to_string()])
            .collect::<Vec<_>>(),
    );

    // --- 3. UpdatableKmv absorbing the same stream, vs cold builds ---
    let kmv_id = "t00";
    let mut kmv_mirror = workload.tables[0].1.clone();
    let mut kmv =
        UpdatableKmv::build(&kmv_mirror, "key", Some("val"), 24, 8, DEBT_THRESHOLD).unwrap();
    let (mut absorbed, mut kmv_rebuilds) = (0u64, 0u64);
    for ev in &workload.events {
        let ChurnEvent::Delta { id, delta } = ev else {
            continue;
        };
        if id != kmv_id {
            continue;
        }
        match delta {
            TableDelta::Append(rows) => {
                let keys = rows.column("key").unwrap();
                let vals = rows.column("val").unwrap();
                for ri in 0..rows.num_rows() {
                    kmv.append_row(&keys.value(ri), Some(&vals.value(ri)));
                    absorbed += 1;
                }
                kmv_mirror.append(rows).unwrap();
            }
            TableDelta::Delete(idx) => {
                let removed = kmv_mirror.delete_rows(idx).unwrap();
                let keys = removed.column("key").unwrap();
                for ri in 0..removed.num_rows() {
                    kmv.delete_row(&keys.value(ri));
                    absorbed += 1;
                }
                if kmv.needs_rebuild() {
                    kmv.rebuild(&kmv_mirror, "key", Some("val")).unwrap();
                    kmv_rebuilds += 1;
                }
            }
            TableDelta::Drop => break,
        }
        let cold = KmvSketch::build(&kmv_mirror, "key", Some("val"), 24).unwrap();
        let live = kmv.sketch();
        assert_eq!(live.len(), cold.len(), "kmv: retained key count");
        for (a, b) in live.entries().iter().zip(cold.entries()) {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "kmv: unit hash");
            assert_eq!(a.1, b.1, "kmv: key");
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "kmv: mean payload");
        }
    }
    assert!(absorbed > 0, "the stream never touched {kmv_id}");
    print_table(
        "E20d: UpdatableKmv (correlation sketch) vs cold KmvSketch::build",
        &["measure", "value"],
        &[
            vec!["rows absorbed".into(), absorbed.to_string()],
            vec!["debt-triggered rebuilds".into(), kmv_rebuilds.to_string()],
            vec![
                "entries after every event".into(),
                "bitwise identical".into(),
            ],
            vec![
                "distinct estimate".into(),
                format!("{:.1}", kmv.sketch().distinct_estimate()),
            ],
        ],
    );

    // --- 4. tiny byte budget: caches evict instead of overflowing ---
    let ev_0 = counter("serve.cache.evictions");
    let evb_0 = counter("serve.cache.evicted_bytes");
    let mut tiny = LakeIndex::new(LakeIndexConfig {
        minhash_k: 32,
        cache_capacity_bytes: 4096,
        shard_count: 2,
        deletion_debt_threshold: DEBT_THRESHOLD,
    });
    for (id, (t, cost)) in &mirror {
        tiny.register(id.clone(), t.clone(), *cost).unwrap();
    }
    tiny.union_top_k(&query, 3).unwrap();
    tiny.joinable_top_k(&query, "key", 3).unwrap();
    let evictions = counter("serve.cache.evictions") - ev_0;
    let evicted_bytes = counter("serve.cache.evicted_bytes") - evb_0;
    assert!(evictions > 0, "4 KiB budget must evict");
    assert!(evicted_bytes > 0, "evictions must account their bytes");
    assert!(
        tiny.cache_bytes() <= 4096,
        "cache bytes within the global budget"
    );
    print_table(
        "E20e: eviction under a 4 KiB budget (capacity pressure, not churn)",
        &["measure", "value"],
        &[
            vec!["serve.cache.evictions".into(), evictions.to_string()],
            vec![
                "serve.cache.evicted_bytes".into(),
                evicted_bytes.to_string(),
            ],
            vec![
                "resident bytes / budget".into(),
                format!("{} / 4096", tiny.cache_bytes()),
            ],
        ],
    );

    emit_metrics_snapshot();
}
