//! E16 (§5): interventional repair as bias cleaning (Salimi et al. shape).
//!
//! Expected shape: pooled within-stratum resampling drives the
//! sensitive↔target association toward 0 at every planted bias strength,
//! while the admissible attribute's legitimate effect on the target is
//! preserved; the number of repaired tuples grows with bias strength.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_bench::{f3, print_table};
use rdi_cleaning::repair_conditional_independence;
use rdi_fairness::cramers_v;
use rdi_table::{DataType, Field, Role, Schema, Table, Value};

/// Hiring data with tunable within-stratum group bias.
fn hiring(n: usize, bias: f64, rng: &mut StdRng) -> Table {
    let schema = Schema::new(vec![
        Field::new("group", DataType::Str).with_role(Role::Sensitive),
        Field::new("qualification", DataType::Str),
        Field::new("hired", DataType::Bool).with_role(Role::Target),
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let g = if i % 2 == 0 { "a" } else { "b" };
        let q = if (i / 2) % 2 == 0 { "high" } else { "low" };
        let base: f64 = if q == "high" { 0.7 } else { 0.3 };
        let p = (base + if g == "a" { bias } else { -bias }).clamp(0.0, 1.0);
        t.push_row(vec![
            Value::str(g),
            Value::str(q),
            Value::Bool(rng.gen::<f64>() < p),
        ])
        .unwrap();
    }
    t
}

fn assoc(t: &Table, a: &str, b: &str) -> f64 {
    let xs: Vec<String> = (0..t.num_rows())
        .map(|i| t.value(i, a).unwrap().to_string())
        .collect();
    let ys: Vec<String> = (0..t.num_rows())
        .map(|i| t.value(i, b).unwrap().to_string())
        .collect();
    cramers_v(&xs, &ys)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let n = 20_000;
    let mut rows = Vec::new();
    for bias in [0.0, 0.1, 0.2, 0.3] {
        let t = hiring(n, bias, &mut rng);
        let before_gt = assoc(&t, "group", "hired");
        let before_qt = assoc(&t, "qualification", "hired");
        let rep =
            repair_conditional_independence(&t, &["qualification"], "hired", &mut rng).unwrap();
        let after_gt = assoc(&rep.table, "group", "hired");
        let after_qt = assoc(&rep.table, "qualification", "hired");
        rows.push(vec![
            format!("{bias:.1}"),
            f3(before_gt),
            f3(after_gt),
            f3(before_qt),
            f3(after_qt),
            format!("{:.1}%", 100.0 * rep.changed_rows as f64 / n as f64),
        ]);
    }
    print_table(
        "E16 — interventional repair: group↔target association removed, qualification effect kept",
        &[
            "planted bias",
            "group↔hired before",
            "after",
            "qual↔hired before",
            "after",
            "tuples changed",
        ],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
