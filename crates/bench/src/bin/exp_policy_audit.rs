//! E23: auditable selection policies (`rdi-policy`) — the same queries
//! under two parameter sets produce **different winners** with distinct
//! `params_hash`es, and every decision's rationale replays from the
//! provenance stream:
//!
//! 1. **union ranking** — two registered tables with identical content
//!    tie exactly; the default `discovery.union_rank` params break the
//!    tie by name ascending (`alpha` wins), a `tie=key_desc` override
//!    flips the winner to `beta` without touching any score;
//! 2. **quarantine redirect** — a dead source's draws are absorbed by
//!    the nearest live source by default (`core.redirect` ranks by
//!    negated ring offset, `dir=max`); a `dir=min` override reroutes
//!    them to the farthest, changing real per-source traffic;
//! 3. **coverage relaxation** — when widening a range predicate, the
//!    default `fairquery.relax` params widen toward the closer helpful
//!    frontier; `dir=min` inverts the ranking and widens the other way
//!    first.
//!
//! Run under `RDI_FAKE_CLOCK=1` the stdout is byte-stable and replayed
//! against `crates/bench/golden/exp_policy_audit.golden` in CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::print_table;
use rdi_core::PipelineBuilder;
use rdi_fairquery::relax_for_coverage_explained;
use rdi_fault::{FaultSpec, FaultySource, ResilienceConfig};
use rdi_obs::ProvenanceEvent;
use rdi_policy::{PolicyId, PolicyParams};
use rdi_serve::{LakeIndex, LakeIndexConfig};
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::{DtProblem, RandomPolicy, TableSource};

fn keyed(vals: &[&str]) -> Table {
    let schema = Schema::new(vec![Field::new("key", DataType::Str)]);
    let mut t = Table::new(schema);
    for v in vals {
        t.push_row(vec![Value::str(*v)]).unwrap();
    }
    t
}

/// `(params_hash, winner)` of the first `PolicyDecision` for `policy`.
fn first_decision(events: &[ProvenanceEvent], id: &str) -> (u64, String) {
    events
        .iter()
        .find_map(|e| match e {
            ProvenanceEvent::PolicyDecision {
                policy,
                params_hash,
                winner,
                ..
            } if policy == id => Some((*params_hash, winner.clone().unwrap_or_default())),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no `{id}` decision in the stream"))
}

fn union_flip() {
    println!("-- discovery.union_rank: identical twins, tie broken by policy --\n");
    let mut index = LakeIndex::new(LakeIndexConfig::default());
    let twin = keyed(&["a", "b", "c", "d"]);
    index.register("alpha", twin.clone(), 1.0).unwrap();
    index.register("beta", twin, 1.0).unwrap();
    let query = keyed(&["a", "b", "c"]);

    let run = |index: &mut LakeIndex, label: &str| {
        let ranked = index.union_top_k(&query, 2).unwrap();
        let events = index.drain_decisions();
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .map(|(name, s)| vec![name.clone(), rdi_bench::f3(*s)])
            .collect();
        print_table(label, &["table", "score"], &rows);
        for e in &events {
            println!("  {}", e.render());
        }
        println!();
        (ranked, first_decision(&events, "discovery.union_rank"))
    };

    let (default_rank, (default_hash, default_winner)) = run(&mut index, "default params");
    index.set_policy(
        PolicyId::UNION_RANK,
        PolicyParams::new().with("tie", "key_desc"),
    );
    let (flipped_rank, (flipped_hash, flipped_winner)) = run(&mut index, "tie=key_desc");

    assert_eq!(default_winner, "alpha", "default tie-break is name asc");
    assert_eq!(flipped_winner, "beta", "key_desc must flip the tie");
    assert_eq!(
        default_rank[0].1.to_bits(),
        flipped_rank[0].1.to_bits(),
        "the flip is pure tie-break: scores are untouched"
    );
    assert_ne!(
        default_hash, flipped_hash,
        "changed params must change the fingerprint"
    );
    println!(
        "winner flipped {default_winner} -> {flipped_winner}; params_hash \
         {default_hash:016x} -> {flipped_hash:016x}\n"
    );
}

fn redirect_flip() {
    println!("-- core.redirect: who absorbs a dead source's draws --\n");
    let problem = DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("a")]), 20),
            (GroupKey(vec![Value::str("b")]), 20),
        ],
    );
    let source = |name: &str, n: usize| {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive)
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::str(if i % 2 == 0 { "a" } else { "b" })])
                .unwrap();
        }
        TableSource::new(name, t, 1.0, &problem).unwrap()
    };
    let run = |label: &str, params: Option<PolicyParams>| {
        let mut sources = vec![
            FaultySource::new(source("dead", 500), FaultSpec::dead(), 9),
            FaultySource::new(source("near", 500), FaultSpec::none(), 10),
            FaultySource::new(source("far", 500), FaultSpec::none(), 11),
        ];
        let mut policy = RandomPolicy::new(3);
        let mut rng = StdRng::seed_from_u64(6);
        let mut builder = PipelineBuilder::new(problem.clone())
            .max_draws(1_000_000)
            .span_root("pipeline")
            .resilience(ResilienceConfig::default());
        if let Some(p) = params {
            builder = builder.with_policy(PolicyId::REDIRECT, p);
        }
        let result = builder
            .build()
            .run(&mut sources, &mut policy, &mut rng)
            .unwrap();
        let rows: Vec<Vec<String>> = result
            .health
            .iter()
            .map(|h| {
                vec![
                    h.name.clone(),
                    h.attempts.to_string(),
                    h.successes.to_string(),
                ]
            })
            .collect();
        print_table(label, &["source", "attempts", "successes"], &rows);
        let exemplar = result
            .provenance
            .iter()
            .find(|e| {
                matches!(e, ProvenanceEvent::PolicyDecision { policy, .. }
                    if policy == "core.redirect")
            })
            .expect("redirect exemplar emitted");
        println!("  {}\n", exemplar.render());
        first_decision(&result.provenance, "core.redirect")
    };

    let (default_hash, default_winner) = run("default params", None);
    let (flipped_hash, flipped_winner) =
        run("dir=min", Some(PolicyParams::new().with("dir", "min")));
    assert_eq!(default_winner, "near", "default: closest live source");
    assert_eq!(flipped_winner, "far", "dir=min: farthest live source");
    assert_ne!(default_hash, flipped_hash);
    println!(
        "absorber flipped {default_winner} -> {flipped_winner}; params_hash \
         {default_hash:016x} -> {flipped_hash:016x}\n"
    );
}

fn relax_flip() {
    println!("-- fairquery.relax: which frontier widens first --\n");
    let schema = Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("g", DataType::Str).with_role(Role::Sensitive),
    ]);
    let mut t = Table::new(schema);
    for (x, g) in [(1.0, "a"), (7.0, "b")] {
        t.push_row(vec![Value::Float(x), Value::str(g)]).unwrap();
    }
    let spec = GroupSpec::new(vec!["g"]);
    let run = |label: &str, params: &PolicyParams| {
        let (r, events) =
            relax_for_coverage_explained(&t, "x", &spec, 2.0, 4.0, 1, params).unwrap();
        println!(
            "{label}: [{}, {}] added={} steps={}",
            r.lo,
            r.hi,
            r.added_rows,
            events.len()
        );
        for e in &events {
            println!("  {}", e.render());
        }
        println!();
        first_decision(&events, "fairquery.relax")
    };
    let (default_hash, default_winner) = run("default params", &PolicyParams::new());
    let (flipped_hash, flipped_winner) = run("dir=min", &PolicyParams::new().with("dir", "min"));
    assert_eq!(
        default_winner, "left",
        "default widens toward the closer frontier"
    );
    assert_eq!(
        flipped_winner, "right",
        "dir=min inverts the frontier ranking"
    );
    assert_ne!(default_hash, flipped_hash);
    println!(
        "first widening flipped {default_winner} -> {flipped_winner}; params_hash \
         {default_hash:016x} -> {flipped_hash:016x}\n"
    );
}

fn main() {
    println!("== E23: auditable selection policies ==\n");
    union_flip();
    redirect_flip();
    relax_flip();
    rdi_bench::emit_metrics_snapshot();
}
