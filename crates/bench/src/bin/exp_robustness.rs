//! E18: graceful degradation under deterministic fault injection.
//!
//! Sweeps the per-draw fault rate from 0% to 50% over a fixed skewed
//! federation and runs the resilient executor at each rate. Expected
//! shape: coverage (collected / required) falls *smoothly* as the rate
//! rises — retries absorb moderate fault rates at the price of extra
//! attempts and cost, circuit breakers quarantine sources that fail
//! persistently, and the run always completes (degraded, never
//! panicked). At rate 0.0 the executor is bitwise identical to the
//! legacy fault-oblivious runner, which this harness asserts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{emit_metrics_snapshot, f1, f3, print_table};
use rdi_core::run_resilient;
use rdi_fault::{FaultSpec, FaultySource, ResilienceConfig};
use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Schema, Table, Value};
use rdi_tailor::{run_tailoring, DtProblem, RandomPolicy, TableSource};

const SEED: u64 = 1804;
const NEED: usize = 300;
const MAX_DRAWS: usize = 100_000;

fn source_table(frac_min: f64, n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str).with_role(Role::Sensitive)
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let g = if (i as f64) < frac_min * n as f64 {
            "min"
        } else {
            "maj"
        };
        t.push_row(vec![Value::str(g)]).unwrap();
    }
    t
}

fn problem() -> DtProblem {
    DtProblem::exact_counts(
        GroupSpec::new(vec!["g"]),
        vec![
            (GroupKey(vec![Value::str("maj")]), NEED),
            (GroupKey(vec![Value::str("min")]), NEED),
        ],
    )
}

fn bare_sources(p: &DtProblem) -> Vec<TableSource> {
    [0.30, 0.10, 0.05, 0.02]
        .iter()
        .enumerate()
        .map(|(i, &f)| TableSource::new(format!("s{i}"), source_table(f, 4_000), 1.0, p).unwrap())
        .collect()
}

fn main() {
    let p = problem();
    // A breaker threshold of 12 (vs the default 5) keeps flaky-but-alive
    // sources in play at high fault rates; the default is tuned for
    // failures that signal a dead source, not a 50% injection sweep.
    let config = ResilienceConfig {
        breaker_threshold: 12,
        ..ResilienceConfig::default()
    };
    let mut rows = Vec::new();

    // Rate-0 bitwise identity: resilient executor vs legacy runner.
    let identical = {
        let mut legacy = bare_sources(&p);
        let mut pol = RandomPolicy::new(legacy.len());
        let mut rng = StdRng::seed_from_u64(SEED);
        let legacy_out = run_tailoring(&mut legacy, &p, &mut pol, &mut rng, MAX_DRAWS).unwrap();

        let mut wrapped: Vec<FaultySource<TableSource>> = bare_sources(&p)
            .into_iter()
            .map(|s| FaultySource::new(s, FaultSpec::none(), SEED))
            .collect();
        let mut pol = RandomPolicy::new(wrapped.len());
        let mut rng = StdRng::seed_from_u64(SEED);
        let res = run_resilient(&mut wrapped, &p, &mut pol, &mut rng, MAX_DRAWS, &config).unwrap();
        res.tailor.collected == legacy_out.collected
            && res.tailor.draws == legacy_out.draws
            && res.tailor.total_cost == legacy_out.total_cost
            && res.tailor.per_source_draws == legacy_out.per_source_draws
    };
    assert!(
        identical,
        "rate 0.0 must be bitwise identical to the legacy runner"
    );
    println!("rate 0.0 vs legacy runner: bitwise identical = {identical}");

    for pct in [0u32, 10, 20, 30, 40, 50] {
        let rate = f64::from(pct) / 100.0;
        let mut sources: Vec<FaultySource<TableSource>> = bare_sources(&p)
            .into_iter()
            .enumerate()
            .map(|(i, s)| FaultySource::new(s, FaultSpec::uniform(rate), SEED + i as u64))
            .collect();
        let mut pol = RandomPolicy::new(sources.len());
        let mut rng = StdRng::seed_from_u64(SEED);
        let res = run_resilient(&mut sources, &p, &mut pol, &mut rng, MAX_DRAWS, &config)
            .expect("resilient run must not error on source faults");

        // requirement coverage: progress toward each group's `lo`,
        // surplus above it doesn't count
        let covered: usize = res.tailor.per_group.iter().map(|&c| c.min(NEED)).sum();
        let coverage = covered as f64 / (2 * NEED) as f64;
        let attempts: u64 = res.health.iter().map(|h| h.attempts).sum();
        let retries: u64 = res.health.iter().map(|h| h.retries).sum();
        let abandoned: u64 = res.health.iter().map(|h| h.abandoned_draws).sum();
        rows.push(vec![
            format!("{pct}%"),
            f3(coverage),
            res.tailor.draws.to_string(),
            attempts.to_string(),
            retries.to_string(),
            abandoned.to_string(),
            res.quarantined().len().to_string(),
            f1(res.tailor.total_cost),
            res.backoff_ticks.to_string(),
            if res.degraded { "yes" } else { "no" }.to_string(),
        ]);
    }

    print_table(
        "E18: coverage under injected faults (need 2×300 rows, 4 sources, seed fixed)",
        &[
            "fault rate",
            "coverage",
            "draws",
            "attempts",
            "retries",
            "abandoned",
            "quarantined",
            "cost",
            "backoff ticks",
            "degraded",
        ],
        &rows,
    );

    // Transient faults must be fully absorbed: coverage stays at 1.0
    // while cost scales like 1/(1-rate).
    let coverages: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
    let costs: Vec<f64> = rows.iter().map(|r| r[7].parse().unwrap()).collect();
    for (c, r) in coverages.iter().zip(&rows) {
        assert!(
            (*c - 1.0).abs() < 1e-9,
            "retries must absorb transient faults at {}: coverage {c}",
            r[0]
        );
    }
    assert!(
        costs.last().unwrap() > costs.first().unwrap(),
        "absorbing faults must cost attempts"
    );
    println!(
        "\ntransient faults absorbed at every rate (coverage 1.000 throughout); cost rose {} → {}",
        f1(costs[0]),
        f1(*costs.last().unwrap())
    );

    // Sweep 2: permanently dead sources under a fixed draw budget — the
    // regime where degradation, not retries, is the right answer.
    let budget = 6_000;
    let dead_cfg = ResilienceConfig::default();
    let mut dead_rows = Vec::new();
    for dead in 0..=4usize {
        let mut sources: Vec<FaultySource<TableSource>> = bare_sources(&p)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let spec = if i < dead {
                    FaultSpec::dead()
                } else {
                    FaultSpec::none()
                };
                FaultySource::new(s, spec, SEED + i as u64)
            })
            .collect();
        let mut pol = RandomPolicy::new(sources.len());
        let mut rng = StdRng::seed_from_u64(SEED);
        let res = run_resilient(&mut sources, &p, &mut pol, &mut rng, budget, &dead_cfg)
            .expect("resilient run must not error on dead sources");
        let covered: usize = res.tailor.per_group.iter().map(|&c| c.min(NEED)).sum();
        dead_rows.push(vec![
            dead.to_string(),
            f3(covered as f64 / (2 * NEED) as f64),
            res.tailor.draws.to_string(),
            res.quarantined().len().to_string(),
            if res.degraded { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        "E18b: dead sources under a 6k-draw budget (breaker threshold 5)",
        &[
            "dead sources",
            "coverage",
            "draws",
            "quarantined",
            "degraded",
        ],
        &dead_rows,
    );
    let dead_cov: Vec<f64> = dead_rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!((dead_cov[0] - 1.0).abs() < 1e-9);
    for w in dead_cov.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "coverage must fall monotonically as sources die: {dead_cov:?}"
        );
    }
    for (d, r) in dead_rows.iter().enumerate() {
        assert_eq!(
            r[3],
            d.to_string(),
            "every dead source must be quarantined, no live one may be"
        );
    }
    println!(
        "\ncoverage falls smoothly {} as sources die — every dead source quarantined, run always completes",
        dead_cov
            .iter()
            .map(|c| f3(*c))
            .collect::<Vec<_>>()
            .join(" → ")
    );

    emit_metrics_snapshot();
}
