//! E22: multi-tenant fairness-aware admission under adversarial load
//! (`rdi-serve::admit` × `rdi-datagen::tenants`).
//!
//! Runs the shared admission layer against two adversarial rosters and
//! proves the tentpole invariants **by exact counter arithmetic** on
//! the per-tenant `serve.tenant.{t}.*` families:
//!
//! * **No starvation** — with capacity 8 split among three honest
//!   tenants (2 requests/window each) and one flooder (24/window, same
//!   weight), every honest tenant is admitted its full demand every
//!   single window while the flooder is capped at exactly its fair
//!   share — and, because the flooder *receives* that share, it never
//!   banks aging credit it could use to crowd the honest tenants out.
//! * **Bounded blast radius** — victims sharing a session with a
//!   flooder, a poisoner (every request deterministically fails, so
//!   only *its* breaker trips), and a quota-limited tenant see zero
//!   sheds, keep their breakers closed, and produce **bitwise
//!   identical** responses to a run with every adversary removed —
//!   same admission config, same victim traffic, adversaries gone.
//! * **Typed sheds, per contract** — the flooder sheds only
//!   `QueueFull`, the quota tenant only `QuotaExceeded`, the poisoner
//!   `QueueFull` before its breaker trips and `CircuitOpen` after, and
//!   sheds never feed any breaker.
//! * **Path parity** — the actor-hosted session replays the entire
//!   adversarial stream bitwise identical to the serial session, with
//!   the same per-tenant breaker end states.
//!
//! Single-threaded by default (`RDI_THREADS=1` unless overridden) so
//! stdout is byte-stable for the golden replay in CI; the root
//! `admit_determinism` proptests sweep thread counts.

use std::collections::BTreeMap;

use rdi_actor::{Runtime, RuntimeConfig};
use rdi_bench::{emit_metrics_snapshot, print_table};
use rdi_datagen::tenants::{
    tenant_workload, TenantBehavior, TenantSpec, TenantWorkload, TenantWorkloadConfig,
};
use rdi_datagen::SessionOp;
use rdi_fault::RecoveryState;
use rdi_serve::{
    AdmitConfig, BatchReport, LakeActorGroup, LakeIndex, LakeIndexConfig, ServeError, ServeRequest,
    ServeResponse, ServeSession, SessionActor, SessionConfig, SessionMsg, TaggedRequest, TenantId,
    TenantPolicy,
};

const SEED: u64 = 2208;
const CAPACITY: usize = 8;
const WINDOWS: usize = 6;

fn counter(name: &str) -> u64 {
    rdi_obs::counter(name).get()
}

/// Bit-exact encoding of one response: float scores go through
/// `to_bits`, so equal strings ⇔ bitwise-identical responses.
fn fingerprint(r: &Result<ServeResponse, ServeError>) -> String {
    fn bits(pairs: &[(String, f64)]) -> String {
        pairs
            .iter()
            .map(|(id, s)| format!("{id}:{:016x}", s.to_bits()))
            .collect::<Vec<_>>()
            .join(",")
    }
    match r {
        Ok(ServeResponse::UnionTopK(v)) => format!("U[{}]", bits(v)),
        Ok(ServeResponse::JoinableTopK(v)) => format!("J[{}]", bits(v)),
        Ok(ServeResponse::Coverage(c)) => format!(
            "C[{} mups={:?} frac={:016x}]",
            c.table,
            c.mups,
            c.uncovered_fraction.to_bits()
        ),
        Ok(ServeResponse::Tailored(t)) => format!(
            "T[rows={} cost={:016x} degraded={} quarantined={:?} audit={}]",
            t.rows,
            t.total_cost.to_bits(),
            t.degraded,
            t.quarantined,
            t.audit_passed
        ),
        Err(e) => format!("E[{e:?}]"),
    }
}

/// FNV-1a over a string — a compact stable digest for report tables.
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Map a serve-agnostic workload op onto the serving request type.
fn to_request(op: &SessionOp) -> ServeRequest {
    match op {
        SessionOp::Union { query, k } => ServeRequest::UnionTopK {
            query: query.clone(),
            k: *k,
        },
        SessionOp::Joinable { query, column, k } => ServeRequest::JoinableTopK {
            query: query.clone(),
            column: column.clone(),
            k: *k,
        },
        SessionOp::Coverage {
            table,
            attributes,
            threshold,
        } => ServeRequest::CoverageProbe {
            table: table.clone(),
            attributes: attributes.clone(),
            threshold: *threshold,
        },
        SessionOp::Tailor {
            problem,
            sources,
            max_draws,
        } => ServeRequest::TailorRun {
            problem: problem.clone(),
            sources: sources.clone(),
            max_draws: *max_draws,
        },
    }
}

fn session_config() -> SessionConfig {
    SessionConfig {
        seed: 7,
        ..SessionConfig::default()
    }
}

/// Admission knobs for a roster: capacity 8, per-tenant breakers that
/// trip after 3 consecutive failures and cool down past the horizon.
fn admit_config(specs: &[TenantSpec]) -> AdmitConfig {
    let mut admit = AdmitConfig::from_session(&session_config());
    admit.queue_capacity = CAPACITY;
    admit.breaker_threshold = 3;
    admit.breaker_cooldown_ticks = 4;
    admit.with_tenants(
        specs
            .iter()
            .map(|s| {
                (
                    TenantId::new(&s.name),
                    TenantPolicy::limited(s.weight, s.quota_per_tick, s.burst),
                )
            })
            .collect(),
    )
}

/// Register the workload's lake tables into a fresh sharded index.
fn fresh_index(w: &TenantWorkload) -> LakeIndex {
    let mut index = LakeIndex::new(LakeIndexConfig::default());
    for (i, (id, t)) in w.tables.iter().enumerate() {
        index
            .register(id.clone(), t.clone(), 1.0 + i as f64 * 0.25)
            .unwrap();
    }
    index
}

/// One submitted batch per window, requests tagged with their tenants.
fn tagged_windows(w: &TenantWorkload) -> Vec<Vec<TaggedRequest>> {
    w.windows
        .iter()
        .map(|window| {
            window
                .iter()
                .map(|(t, op)| to_request(op).tagged(TenantId::new(t.clone())))
                .collect()
        })
        .collect()
}

/// Per-tenant deltas of the `serve.tenant.{t}.*` counter families over
/// one closure — the exact arithmetic the invariants are stated in.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct TenantDelta {
    requests: u64,
    admitted: u64,
    shed_quota: u64,
    shed_queue: u64,
    shed_breaker: u64,
    failed: u64,
}

fn tenant_deltas<T>(names: &[&str], run: impl FnOnce() -> T) -> (T, BTreeMap<String, TenantDelta>) {
    let read = |n: &str| TenantDelta {
        requests: counter(&format!("serve.tenant.{n}.requests")),
        admitted: counter(&format!("serve.tenant.{n}.admitted")),
        shed_quota: counter(&format!("serve.tenant.{n}.shed_quota")),
        shed_queue: counter(&format!("serve.tenant.{n}.shed_queue")),
        shed_breaker: counter(&format!("serve.tenant.{n}.shed_breaker")),
        failed: counter(&format!("serve.tenant.{n}.failed")),
    };
    let before: Vec<TenantDelta> = names.iter().map(|n| read(n)).collect();
    let out = run();
    let deltas = names
        .iter()
        .zip(before)
        .map(|(n, b)| {
            let a = read(n);
            (
                n.to_string(),
                TenantDelta {
                    requests: a.requests - b.requests,
                    admitted: a.admitted - b.admitted,
                    shed_quota: a.shed_quota - b.shed_quota,
                    shed_queue: a.shed_queue - b.shed_queue,
                    shed_breaker: a.shed_breaker - b.shed_breaker,
                    failed: a.failed - b.failed,
                },
            )
        })
        .collect();
    (out, deltas)
}

/// All of one tenant's response fingerprints across a run's reports,
/// in arrival order.
fn tenant_fingerprints(
    windows: &[Vec<TaggedRequest>],
    reports: &[BatchReport],
    tenant: &str,
) -> Vec<String> {
    windows
        .iter()
        .zip(reports)
        .flat_map(|(reqs, report)| {
            reqs.iter()
                .zip(&report.responses)
                .filter(|(r, _)| r.tenant.name() == tenant)
                .map(|(_, resp)| fingerprint(resp))
        })
        .collect()
}

/// Scenario 1 — a same-weight flooder against three honest tenants:
/// the queue share caps the flood at its fair slice, window after
/// window, with no aging leakage.
fn flood_scenario() {
    let honest = ["alice", "bob", "carol"];
    let specs = vec![
        TenantSpec::honest("alice", 0, 1, 2),
        TenantSpec::honest("bob", 1, 1, 2),
        TenantSpec::honest("carol", 2, 1, 2),
        TenantSpec::flooder("mallory", 8, 1, 24),
    ];
    let workload = tenant_workload(
        &TenantWorkloadConfig {
            windows: WINDOWS,
            tenants: specs.clone(),
            ..TenantWorkloadConfig::default()
        },
        SEED,
    );
    let windows = tagged_windows(&workload);
    let mut session = ServeSession::with_admission(
        fresh_index(&workload),
        session_config(),
        admit_config(&specs),
    );

    let names = ["alice", "bob", "carol", "mallory"];
    let mut rows = Vec::new();
    for (wi, batch) in windows.iter().enumerate() {
        let (report, d) = tenant_deltas(&names, || session.submit_batch_tagged(batch));
        // Exact arithmetic, every window: base share is capacity·w/Σw
        // = 2; honest demand 2 is fully admitted, the flood's 24
        // requests are capped at the same 2, and only the flood sheds.
        for t in honest {
            assert_eq!(d[t].admitted, 2, "window {wi}: {t} starved: {:?}", d[t]);
            assert_eq!(d[t].shed_queue + d[t].shed_quota + d[t].shed_breaker, 0);
        }
        assert_eq!(
            d["mallory"].admitted, 2,
            "window {wi}: flood over its share"
        );
        assert_eq!(d["mallory"].shed_queue, 22, "window {wi}");
        assert_eq!(report.admitted, CAPACITY, "window {wi} fills the queue");
        let aging = session.admitter().aging(&TenantId::new("mallory"));
        assert_eq!(aging, 0, "served share must never bank aging credit");
        rows.push(vec![
            wi.to_string(),
            d["alice"].admitted.to_string(),
            d["bob"].admitted.to_string(),
            d["carol"].admitted.to_string(),
            d["mallory"].admitted.to_string(),
            d["mallory"].shed_queue.to_string(),
            aging.to_string(),
        ]);
    }
    print_table(
        "flood: per-window admitted deltas (capacity 8, equal weights)",
        &[
            "window",
            "alice",
            "bob",
            "carol",
            "mallory",
            "mallory_shed_queue",
            "mallory_aging",
        ],
        &rows,
    );
}

/// The isolation roster: two weighted victims, one quota-limited
/// tenant, one flooder, one poisoner.
fn isolation_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::honest("alice", 0, 2, 2),
        TenantSpec::honest("bob", 1, 2, 2),
        TenantSpec::flooder("mallory", 8, 1, 16),
        TenantSpec::poisoner("petya", 9, 1, 2),
        TenantSpec::honest("quinn", 2, 1, 2).with_quota(1, 1),
    ]
}

fn isolation_workload(specs: &[TenantSpec]) -> TenantWorkload {
    tenant_workload(
        &TenantWorkloadConfig {
            windows: WINDOWS,
            tenants: specs.to_vec(),
            ..TenantWorkloadConfig::default()
        },
        SEED,
    )
}

fn run_serial(
    workload: &TenantWorkload,
    admit: AdmitConfig,
) -> (Vec<BatchReport>, ServeSession, Vec<Vec<TaggedRequest>>) {
    let windows = tagged_windows(workload);
    let mut session = ServeSession::with_admission(fresh_index(workload), session_config(), admit);
    let reports = windows
        .iter()
        .map(|b| session.submit_batch_tagged(b))
        .collect();
    (reports, session, windows)
}

/// Scenario 2 — bounded blast radius: victims are bitwise unaffected
/// by a flood, a poison stream, and a quota-capped neighbour; each
/// adversary is shed strictly against its own contract; and the actor
/// path replays the whole thing bitwise.
fn isolation_scenario() {
    let specs = isolation_specs();
    let names = ["alice", "bob", "mallory", "petya", "quinn"];
    let adversarial = isolation_workload(&specs);
    let ((reports, session, windows), totals) =
        tenant_deltas(&names, || run_serial(&adversarial, admit_config(&specs)));

    // Exact arithmetic over all 6 windows. Victims (weight 2, base
    // share 2) are fully served; quinn's 1-token bucket admits one of
    // its two requests per window and quota-sheds the other; mallory's
    // 16 requests are capped at its reserved slot + the one leftover
    // slot; petya lands one deterministic failure per window until its
    // breaker trips after window 3, then sheds `CircuitOpen` only.
    for t in ["alice", "bob"] {
        assert_eq!(totals[t].requests, 12, "{t}");
        assert_eq!(totals[t].admitted, 12, "victim starved: {:?}", totals[t]);
        assert_eq!(totals[t].failed, 0, "{t}");
    }
    assert_eq!(totals["quinn"].admitted, 6);
    assert_eq!(totals["quinn"].shed_quota, 6);
    assert_eq!(totals["mallory"].admitted, 12);
    assert_eq!(totals["mallory"].shed_queue, 84);
    assert_eq!(totals["petya"].admitted, 3);
    assert_eq!(totals["petya"].failed, 3, "poison fails deterministically");
    assert_eq!(totals["petya"].shed_queue, 3);
    assert_eq!(totals["petya"].shed_breaker, 6, "3 windows × 2 requests");
    let admitter = session.admitter();
    assert!(admitter.breaker_is_open(&TenantId::new("petya")));
    for t in ["alice", "bob", "mallory", "quinn"] {
        assert_eq!(
            admitter.breaker_state(&TenantId::new(t)),
            RecoveryState::Closed,
            "{t}'s breaker must be untouched by petya's poison"
        );
    }
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|t| {
            let d = &totals[*t];
            vec![
                (*t).to_string(),
                d.requests.to_string(),
                d.admitted.to_string(),
                d.shed_quota.to_string(),
                d.shed_queue.to_string(),
                d.shed_breaker.to_string(),
                d.failed.to_string(),
                format!("{:?}", admitter.breaker_state(&TenantId::new(*t))),
            ]
        })
        .collect();
    print_table(
        "isolation: per-tenant totals over 6 windows (typed sheds per contract)",
        &[
            "tenant",
            "requests",
            "admitted",
            "shed_quota",
            "shed_queue",
            "shed_breaker",
            "failed",
            "breaker",
        ],
        &rows,
    );

    // Adversary-free baseline: same admission config, same victim
    // streams (each tenant draws from its own explicit RNG stream, so
    // removing the adversaries does not shift a single victim byte).
    let victims_only: Vec<TenantSpec> = specs
        .iter()
        .filter(|s| s.behavior == TenantBehavior::Honest && s.quota_per_tick == u64::MAX)
        .cloned()
        .collect();
    let baseline_workload = isolation_workload(&victims_only);
    let (baseline_reports, _, baseline_windows) =
        run_serial(&baseline_workload, admit_config(&specs));
    let mut rows = Vec::new();
    for victim in ["alice", "bob"] {
        let with = tenant_fingerprints(&windows, &reports, victim);
        let without = tenant_fingerprints(&baseline_windows, &baseline_reports, victim);
        assert_eq!(with.len(), 12);
        assert_eq!(
            with, without,
            "{victim}'s responses must be bitwise identical without the adversaries"
        );
        rows.push(vec![
            victim.to_string(),
            format!("{:016x}", digest(&with.join(";"))),
            format!("{:016x}", digest(&without.join(";"))),
            "true".to_string(),
        ]);
    }
    print_table(
        "isolation: victim responses with vs without adversaries",
        &["victim", "digest_with", "digest_without", "bitwise_equal"],
        &rows,
    );

    // Actor-path parity: the hosted session runs the same adversarial
    // stream through the same shared admitter and must match the
    // serial run bitwise — including every tenant's breaker end state.
    let mut rt = Runtime::new(RuntimeConfig::default());
    let group = LakeActorGroup::host(&mut rt, fresh_index(&adversarial));
    let addr = group.spawn_session_with_admission(
        &mut rt,
        "tenants",
        session_config(),
        admit_config(&specs),
    );
    for batch in &windows {
        addr.send(SessionMsg::SubmitTagged(batch.clone())).unwrap();
    }
    rt.run_until_idle();
    let actor = rt.actor::<SessionActor>(addr.id()).unwrap();
    assert_eq!(actor.completed().len(), reports.len());
    for (got, want) in actor.completed().iter().zip(&reports) {
        assert_eq!(got.admitted, want.admitted);
        assert_eq!(got.shed, want.shed);
        assert_eq!(got.responses, want.responses, "actor != serial");
    }
    for t in names {
        assert_eq!(
            actor.admitter().breaker_state(&TenantId::new(t)),
            session.admitter().breaker_state(&TenantId::new(t)),
            "{t}"
        );
    }
    print_table(
        "actor parity: hosted session vs serial session",
        &[
            "windows",
            "responses_identical",
            "petya_breaker_serial",
            "petya_breaker_actor",
        ],
        &[vec![
            reports.len().to_string(),
            "true".to_string(),
            format!(
                "{:?}",
                session.admitter().breaker_state(&TenantId::new("petya"))
            ),
            format!(
                "{:?}",
                actor.admitter().breaker_state(&TenantId::new("petya"))
            ),
        ]],
    );
}

fn main() {
    // Golden-stability: outcomes are bitwise identical for any
    // RDI_THREADS, but stdout also embeds global counters, so pin the
    // thread count unless the caller overrides it.
    if std::env::var_os("RDI_THREADS").is_none() {
        std::env::set_var("RDI_THREADS", "1");
    }

    let flood_roster = 4usize;
    let iso_roster = isolation_specs().len();
    print_table(
        "E22 workload",
        &[
            "scenarios",
            "windows_each",
            "flood_roster",
            "isolation_roster",
        ],
        &[vec![
            "2".to_string(),
            WINDOWS.to_string(),
            flood_roster.to_string(),
            iso_roster.to_string(),
        ]],
    );

    flood_scenario();
    isolation_scenario();

    emit_metrics_snapshot();
}
