//! E4 (§2.4): incomplete/incorrect data hurts minorities more.
//!
//! Expected shape: at the same corruption/missingness *rate*, the
//! minority group's aggregate (AVG) error exceeds the majority's, and
//! the gap widens as the minority shrinks; row-dropping reduces minority
//! coverage disproportionately.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f3, mean, print_table};
use rdi_cleaning::{group_aggregate_error, impute, ImputeStrategy};
use rdi_datagen::{
    corrupt_numeric, inject_missing, CorruptSpec, Mechanism, MissingSpec, PopulationSpec,
};
use rdi_table::{GroupKey, GroupSpec, Value};

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let spec = GroupSpec::new(vec!["group"]);
    let runs = 15u64;

    // (a) AVG error per group vs corruption rate, minority at 5%
    let pop = PopulationSpec::two_group(0.05);
    let mut rows = Vec::new();
    for rate in [0.01, 0.05, 0.1, 0.2] {
        let mut min_err = Vec::new();
        let mut maj_err = Vec::new();
        for seed in 0..runs {
            let mut r = StdRng::seed_from_u64(500 + seed);
            let clean = pop.generate(10_000, &mut r);
            let (dirty, _) = corrupt_numeric(
                &clean,
                &CorruptSpec {
                    column: "x1".into(),
                    rate,
                    magnitude: 2.0,
                },
                &mut r,
            )
            .unwrap();
            let rep = group_aggregate_error(&clean, &dirty, "x1", &spec).unwrap();
            // group_errors sorted by size: minority first
            min_err.push(rep.group_errors[0].2);
            maj_err.push(rep.group_errors[1].2);
        }
        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            f3(mean(&maj_err)),
            f3(mean(&min_err)),
            format!("{:.1}×", mean(&min_err) / mean(&maj_err).max(1e-12)),
        ]);
    }
    print_table(
        "E4a — |AVG error| per group vs corruption rate (minority = 5%)",
        &[
            "corruption rate",
            "majority err",
            "minority err",
            "minority/majority",
        ],
        &rows,
    );

    // (b) same error rate, sweep minority size
    let mut rows = Vec::new();
    for frac in [0.25, 0.10, 0.05, 0.02] {
        let pop = PopulationSpec::two_group(frac);
        let mut min_err = Vec::new();
        let mut maj_err = Vec::new();
        for seed in 0..runs {
            let mut r = StdRng::seed_from_u64(600 + seed);
            let clean = pop.generate(10_000, &mut r);
            let (dirty, _) = corrupt_numeric(
                &clean,
                &CorruptSpec {
                    column: "x1".into(),
                    rate: 0.05,
                    magnitude: 2.0,
                },
                &mut r,
            )
            .unwrap();
            let rep = group_aggregate_error(&clean, &dirty, "x1", &spec).unwrap();
            min_err.push(rep.group_errors[0].2);
            maj_err.push(rep.group_errors[1].2);
        }
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            f3(mean(&maj_err)),
            f3(mean(&min_err)),
            format!("{:.1}×", mean(&min_err) / mean(&maj_err).max(1e-12)),
        ]);
    }
    print_table(
        "E4b — |AVG error| per group vs minority size (5% corruption)",
        &[
            "minority fraction",
            "majority err",
            "minority err",
            "minority/majority",
        ],
        &rows,
    );

    // (c) missing-value resolutions: drop vs mean vs group-mean — effect
    // on minority AVG and minority row count
    let pop = PopulationSpec::two_group(0.05);
    let clean = pop.generate(20_000, &mut rng);
    let (dirty, _) = inject_missing(
        &clean,
        &MissingSpec {
            column: "x2".into(),
            rate: 0.15,
            mechanism: Mechanism::Mar {
                condition_column: "group".into(),
                condition_value: Value::str("min"),
                boost: 4.0,
            },
        },
        &mut rng,
    )
    .unwrap();
    let min_key = GroupKey(vec![Value::str("min")]);
    let clean_stats = spec.stats(&clean, "x2").unwrap();
    let clean_min = clean_stats
        .iter()
        .find(|(k, _)| k == &min_key)
        .unwrap()
        .1
        .clone();
    let mut rows = Vec::new();
    for (name, strat) in [
        ("drop rows", ImputeStrategy::DropRows),
        ("global mean", ImputeStrategy::Mean),
        (
            "group mean",
            ImputeStrategy::GroupMean(GroupSpec::new(vec!["group"])),
        ),
    ] {
        let fixed = impute(&dirty, "x2", &strat).unwrap();
        let stats = spec.stats(&fixed, "x2").unwrap();
        let min_stats = &stats.iter().find(|(k, _)| k == &min_key).unwrap().1;
        rows.push(vec![
            name.to_string(),
            min_stats.count.to_string(),
            f3((min_stats.mean - clean_min.mean).abs()),
        ]);
    }
    rows.insert(
        0,
        vec![
            "(clean)".into(),
            clean_min.count.to_string(),
            "0.000".into(),
        ],
    );
    print_table(
        "E4c — minority group after MAR missingness resolution (true minority mean shift ≈ +1.0)",
        &["resolution", "minority rows kept", "|minority AVG error|"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
