//! E3 (§2.3, §5): unbiased & informative feature discovery.
//!
//! Expected shape: sketch-estimated (target-corr, sensitive-corr) pairs
//! track the planted truth, so ranking by `informativeness − λ·bias`
//! surfaces informative-yet-unbiased features first, and raising λ trades
//! a little informativeness for much less bias.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdi_bench::{f3, print_table};
use rdi_datagen::rng::normal;
use rdi_discovery::{discover_features, FeatureQuery};
use rdi_table::{DataType, Field, Schema, Table, Value};

/// Build a query table and candidates with planted (target-corr,
/// sensitive-corr) pairs: feat = a·y + b·s + noise (y ⊥ s).
fn build(n: usize, plan: &[(f64, f64)], rng: &mut StdRng) -> (Table, Vec<Table>) {
    let qschema = Schema::new(vec![
        Field::new("key", DataType::Str),
        Field::new("y", DataType::Float),
        Field::new("s", DataType::Float),
    ]);
    let mut q = Table::new(qschema);
    let mut ys = Vec::new();
    let mut ss = Vec::new();
    for i in 0..n {
        let y = normal(rng, 0.0, 1.0);
        let s = normal(rng, 0.0, 1.0);
        q.push_row(vec![
            Value::str(format!("k{i}")),
            Value::Float(y),
            Value::Float(s),
        ])
        .unwrap();
        ys.push(y);
        ss.push(s);
    }
    let cschema = Schema::new(vec![
        Field::new("key", DataType::Str),
        Field::new("feat", DataType::Float),
    ]);
    let cands = plan
        .iter()
        .map(|&(a, b)| {
            let noise_w = (1.0 - a * a - b * b).max(0.0).sqrt();
            let mut c = Table::new(cschema.clone());
            for i in 0..n {
                let f = a * ys[i] + b * ss[i] + noise_w * normal(rng, 0.0, 1.0);
                c.push_row(vec![Value::str(format!("k{i}")), Value::Float(f)])
                    .unwrap();
            }
            c
        })
        .collect();
    (q, cands)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(10);
    // (target weight a, sensitive weight b)
    let plan = [
        (0.85, 0.05), // informative & unbiased — the one we want
        (0.85, 0.50), // informative but biased proxy
        (0.30, 0.05), // weak but clean
        (0.05, 0.90), // pure proxy for the sensitive attribute
        (0.05, 0.05), // noise
    ];
    let names = [
        "clean-strong",
        "biased-strong",
        "clean-weak",
        "proxy",
        "noise",
    ];
    let (q, cands) = build(8_000, &plan, &mut rng);
    let fq = FeatureQuery {
        table: &q,
        key: "key",
        target: "y",
        sensitive: "s",
    };
    let cand_refs: Vec<(&str, &Table, &str, &str)> = cands
        .iter()
        .zip(names.iter())
        .map(|(t, n)| (*n, t, "key", "feat"))
        .collect();

    let mut rows = Vec::new();
    let result = discover_features(&fq, &cand_refs, 256, 50.0, 1.0).unwrap();
    for c in &result {
        let planted = names.iter().position(|n| *n == c.table).unwrap();
        rows.push(vec![
            c.table.clone(),
            f3(plan[planted].0),
            f3(c.informativeness),
            f3(plan[planted].1),
            f3(c.bias),
            f3(c.score(1.0)),
        ]);
    }
    print_table(
        "E3a — sketch estimates vs planted correlations (k=256), ranked at λ=1",
        &[
            "candidate",
            "planted target-corr",
            "estimated",
            "planted sensitive-corr",
            "estimated",
            "score",
        ],
        &rows,
    );
    assert_eq!(result[0].table, "clean-strong");

    // λ sweep: what tops the ranking
    let mut rows = Vec::new();
    for lambda in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let r = discover_features(&fq, &cand_refs, 256, 50.0, lambda).unwrap();
        rows.push(vec![
            format!("{lambda:.1}"),
            r[0].table.clone(),
            f3(r[0].informativeness),
            f3(r[0].bias),
        ]);
    }
    print_table(
        "E3b — top-ranked feature vs bias penalty λ",
        &["λ", "winner", "informativeness", "bias"],
        &rows,
    );
    rdi_bench::emit_metrics_snapshot();
}
