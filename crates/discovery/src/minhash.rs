//! MinHash signatures and Jaccard estimation.
//!
//! Two constructions live here:
//!
//! * [`MinHash`] — the immutable one-hash signature. Because every
//!   position is a *minimum* over per-value hashes, signatures are
//!   order-invariant, exactly mergeable ([`MinHash::merge`]), and can
//!   absorb appended values in place ([`MinHash::absorb_values`]) with
//!   results bitwise identical to a cold rebuild.
//! * [`UpdatableMinHash`] — the signature plus a value-multiplicity
//!   map, which is what makes **deletion** exact too: a removed value
//!   only matters once its multiplicity reaches zero, and then only
//!   the signature positions it actually held are recomputed (over the
//!   remaining distinct values), never the whole table.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

use crate::hash::{hash_value, splitmix64};

/// Golden-gamma increment perturbing the base hash per position.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The one-hash position hash: position `j`'s pseudorandom permutation
/// of a value's base hash.
#[inline]
fn position_hash(base: u64, j: usize) -> u64 {
    splitmix64(base ^ (j as u64).wrapping_mul(GAMMA))
}

/// A MinHash signature: `k` independent minimum hash values of a set.
///
/// `E[fraction of agreeing positions] = Jaccard(A, B)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHash {
    sig: Vec<u64>,
}

impl MinHash {
    /// Signature length.
    pub fn k(&self) -> usize {
        self.sig.len()
    }

    /// The raw signature values.
    pub fn signature(&self) -> &[u64] {
        &self.sig
    }

    /// Build from an iterator of set elements (borrowed or owned).
    ///
    /// Each value is hashed through its bytes exactly once
    /// (`hash_value(v, 0)`); the hash for position `j` is then derived
    /// by perturbing that base with the `j`-th multiple of the golden
    /// gamma and refinishing through splitmix64. Every position sees
    /// its own pseudorandom permutation of the base hashes — the
    /// standard one-hash MinHash construction — at O(bytes + k) per
    /// value instead of O(bytes × k).
    pub fn from_values<I>(values: I, k: usize) -> Self
    where
        I: IntoIterator,
        I::Item: Borrow<Value>,
    {
        assert!(k > 0);
        let mut m = MinHash {
            sig: vec![u64::MAX; k],
        };
        m.absorb_values(values);
        m
    }

    /// Absorb additional set elements in place.
    ///
    /// Positionwise minima are order-invariant, so absorbing appended
    /// values into an existing signature is **bitwise identical** to
    /// rebuilding from the full value stream — the warm path of
    /// incremental sketch maintenance costs O(appended × k), never
    /// O(table × k).
    pub fn absorb_values<I>(&mut self, values: I)
    where
        I: IntoIterator,
        I::Item: Borrow<Value>,
    {
        for v in values {
            let v = v.borrow();
            if v.is_null() {
                continue;
            }
            let base = hash_value(v, 0);
            for (j, s) in self.sig.iter_mut().enumerate() {
                let h = position_hash(base, j);
                if h < *s {
                    *s = h;
                }
            }
        }
    }

    /// The signature of the union of the two underlying sets
    /// (positionwise minimum). Exact: `a.merge(&b)` is bitwise
    /// identical to building one signature over both value streams.
    ///
    /// # Panics
    /// Panics when the signature lengths differ.
    pub fn merge(&self, other: &MinHash) -> MinHash {
        assert_eq!(self.k(), other.k(), "signatures must share k");
        MinHash {
            sig: self
                .sig
                .iter()
                .zip(&other.sig)
                .map(|(a, b)| *a.min(b))
                .collect(),
        }
    }

    /// Build from the values of a table column, streaming them one at
    /// a time (no intermediate `Vec<Value>`).
    pub fn from_column(table: &Table, column: &str, k: usize) -> rdi_table::Result<Self> {
        let col = table.column(column)?;
        Ok(MinHash::from_values(
            (0..table.num_rows()).map(|i| col.value(i)),
            k,
        ))
    }

    /// Estimated Jaccard similarity with another signature of equal `k`.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.k(), other.k(), "signatures must share k");
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.k() as f64
    }
}

/// A MinHash signature that supports **exact deletion**, backed by a
/// value-multiplicity map.
///
/// The signature always equals `MinHash::from_values` over the current
/// multiset, to the bit:
///
/// * **insert** — bump the value's multiplicity; on a 0 → 1 transition
///   lower the affected signature positions (a positionwise min can
///   only decrease on insert).
/// * **remove** — decrement the multiplicity; only a 1 → 0 transition
///   can raise a minimum, and then only at positions the removed value
///   actually held, which are recomputed over the remaining *distinct*
///   values. Work is O(k) per touched row plus O(distinct) per
///   repaired position — proportional to the delta, not the table.
///
/// Both operations count `sketch.incremental_updates` (one per
/// non-null value applied), the work counter the E20 harness audits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatableMinHash {
    sig: Vec<u64>,
    /// Multiplicity of every non-null value currently in the multiset.
    counts: BTreeMap<Value, u64>,
}

impl UpdatableMinHash {
    /// An empty signature of length `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        UpdatableMinHash {
            sig: vec![u64::MAX; k],
            counts: BTreeMap::new(),
        }
    }

    /// Build over an initial value stream (the cold path; not counted
    /// as incremental work).
    pub fn build<I>(values: I, k: usize) -> Self
    where
        I: IntoIterator,
        I::Item: Borrow<Value>,
    {
        let mut m = UpdatableMinHash::new(k);
        for v in values {
            m.absorb(v.borrow());
        }
        m
    }

    /// Signature length.
    pub fn k(&self) -> usize {
        self.sig.len()
    }

    /// Exact number of distinct non-null values currently present.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The current signature as an immutable [`MinHash`].
    pub fn minhash(&self) -> MinHash {
        MinHash {
            sig: self.sig.clone(),
        }
    }

    /// Fold one value in without counting it as incremental work
    /// (cold-build path).
    fn absorb(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        let fresh = {
            let c = self.counts.entry(v.clone()).or_insert(0);
            *c += 1;
            *c == 1
        };
        if fresh {
            let base = hash_value(v, 0);
            for (j, s) in self.sig.iter_mut().enumerate() {
                let h = position_hash(base, j);
                if h < *s {
                    *s = h;
                }
            }
        }
    }

    /// Insert one value (nulls are ignored, as in
    /// [`MinHash::from_values`]). Counts `sketch.incremental_updates`.
    pub fn insert(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        rdi_obs::counter("sketch.incremental_updates").inc();
        self.absorb(v);
    }

    /// Remove one occurrence of a value. Returns `false` (and changes
    /// nothing) when the value is not present — the caller's multiset
    /// bookkeeping has diverged and a rebuild is in order. Counts
    /// `sketch.incremental_updates`.
    pub fn remove(&mut self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        let Some(c) = self.counts.get_mut(v) else {
            return false;
        };
        rdi_obs::counter("sketch.incremental_updates").inc();
        *c -= 1;
        if *c > 0 {
            return true;
        }
        self.counts.remove(v);
        // Only positions whose minimum was held by the departed value
        // can change; recompute those over the surviving distinct set.
        let base = hash_value(v, 0);
        for j in 0..self.sig.len() {
            if position_hash(base, j) == self.sig[j] {
                self.sig[j] = self
                    .counts
                    .keys()
                    .map(|w| position_hash(hash_value(w, 0), j))
                    .min()
                    .unwrap_or(u64::MAX);
            }
        }
        true
    }
}

/// Exact Jaccard of two columns' distinct value sets (ground truth for
/// sketch evaluation).
pub fn exact_jaccard(a: &Table, ca: &str, b: &Table, cb: &str) -> rdi_table::Result<f64> {
    let sa: std::collections::BTreeSet<Value> = a.distinct(ca)?.into_iter().collect();
    let sb: std::collections::BTreeSet<Value> = b.distinct(cb)?.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return Ok(0.0);
    }
    let inter = sa.intersection(&sb).count();
    Ok(inter as f64 / (sa.len() + sb.len() - inter) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|s| Value::str(*s)).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = set(&["x", "y", "z"]);
        let ma = MinHash::from_values(a.iter(), 64);
        let mb = MinHash::from_values(a.iter(), 64);
        assert_eq!(ma.jaccard(&mb), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let a: Vec<Value> = (0..100).map(|i| Value::str(format!("a{i}"))).collect();
        let b: Vec<Value> = (0..100).map(|i| Value::str(format!("b{i}"))).collect();
        let ma = MinHash::from_values(a.iter(), 128);
        let mb = MinHash::from_values(b.iter(), 128);
        assert!(ma.jaccard(&mb) < 0.05);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // |A| = 100, |B| = 150, |A∩B| = 50, |A∪B| = 200 → J = 1/4
        let a: Vec<Value> = (0..100).map(|i| Value::str(format!("v{i}"))).collect();
        let b: Vec<Value> = (50..200).map(|i| Value::str(format!("v{i}"))).collect();
        let ma = MinHash::from_values(a.iter(), 256);
        let mb = MinHash::from_values(b.iter(), 256);
        let est = ma.jaccard(&mb);
        assert!((est - 0.25).abs() < 0.08, "est={est}");
        // and the estimate agrees with the exact Jaccard of the sets
        let sa: std::collections::BTreeSet<&Value> = a.iter().collect();
        let sb: std::collections::BTreeSet<&Value> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = (sa.len() + sb.len()) as f64 - inter;
        let exact = inter / union;
        assert!((est - exact).abs() < 0.08, "est={est} exact={exact}");
    }

    #[test]
    fn duplicates_and_nulls_ignored() {
        let a = [Value::str("x"), Value::str("x"), Value::Null];
        let b = [Value::str("x")];
        let ma = MinHash::from_values(a.iter(), 32);
        let mb = MinHash::from_values(b.iter(), 32);
        assert_eq!(ma.jaccard(&mb), 1.0);
    }

    #[test]
    #[should_panic(expected = "share k")]
    fn mismatched_k_panics() {
        let a = MinHash::from_values(set(&["x"]).iter(), 8);
        let b = MinHash::from_values(set(&["x"]).iter(), 16);
        a.jaccard(&b);
    }

    #[test]
    fn absorb_and_merge_equal_cold_build() {
        let a = set(&["p", "q", "r"]);
        let b = set(&["r", "s"]);
        let all: Vec<Value> = a.iter().chain(b.iter()).cloned().collect();
        let cold = MinHash::from_values(all.iter(), 64);
        // absorb appended values into a warm signature
        let mut warm = MinHash::from_values(a.iter(), 64);
        warm.absorb_values(b.iter());
        assert_eq!(warm, cold);
        // merge two independent signatures
        let merged = MinHash::from_values(a.iter(), 64).merge(&MinHash::from_values(b.iter(), 64));
        assert_eq!(merged, cold);
    }

    #[test]
    fn updatable_tracks_cold_build_under_churn() {
        let k = 64;
        let vals: Vec<Value> = (0..40).map(|i| Value::str(format!("v{i}"))).collect();
        let mut u = UpdatableMinHash::build(vals.iter(), k);
        assert_eq!(u.minhash(), MinHash::from_values(vals.iter(), k));
        assert_eq!(u.distinct(), 40);

        // inserts (including a duplicate) stay exact
        let extra = [Value::str("v7"), Value::str("new_a"), Value::str("new_b")];
        for v in &extra {
            u.insert(v);
        }
        let mut now: Vec<Value> = vals.clone();
        now.extend(extra.iter().cloned());
        assert_eq!(u.minhash(), MinHash::from_values(now.iter(), k));
        assert_eq!(u.distinct(), 42);

        // removals stay exact — including removing a value that held
        // signature minima, which forces position repair
        for v in [Value::str("v7"), Value::str("v0"), Value::str("v1")] {
            assert!(u.remove(&v));
        }
        // multiset now: v7 still present once (was duplicated), v0/v1
        // gone entirely — the signature only sees the distinct set
        let mut reference: Vec<Value> = now
            .iter()
            .filter(|v| **v != Value::str("v0") && **v != Value::str("v1"))
            .cloned()
            .collect();
        reference.sort();
        reference.dedup();
        assert_eq!(u.minhash(), MinHash::from_values(reference.iter(), k));
        assert_eq!(u.distinct(), reference.len());

        // removing an absent value reports divergence
        assert!(!u.remove(&Value::str("never_seen")));
        // nulls are ignored on both paths
        u.insert(&Value::Null);
        assert!(u.remove(&Value::Null));
    }

    #[test]
    fn updatable_drains_to_empty_signature() {
        let vals = set(&["x", "y"]);
        let mut u = UpdatableMinHash::build(vals.iter(), 16);
        assert!(u.remove(&Value::str("x")));
        assert!(u.remove(&Value::str("y")));
        assert_eq!(u.distinct(), 0);
        assert_eq!(u.minhash().signature(), vec![u64::MAX; 16].as_slice());
    }

    #[test]
    fn exact_jaccard_reference() {
        use rdi_table::{DataType, Field, Schema};
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]);
        let mut ta = Table::new(schema.clone());
        let mut tb = Table::new(schema);
        for v in ["x", "y"] {
            ta.push_row(vec![Value::str(v)]).unwrap();
        }
        for v in ["y", "z"] {
            tb.push_row(vec![Value::str(v)]).unwrap();
        }
        assert!((exact_jaccard(&ta, "c", &tb, "c").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }
}
