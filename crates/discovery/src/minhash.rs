//! MinHash signatures and Jaccard estimation.

use std::borrow::Borrow;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

use crate::hash::{hash_value, splitmix64};

/// A MinHash signature: `k` independent minimum hash values of a set.
///
/// `E[fraction of agreeing positions] = Jaccard(A, B)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHash {
    sig: Vec<u64>,
}

impl MinHash {
    /// Signature length.
    pub fn k(&self) -> usize {
        self.sig.len()
    }

    /// The raw signature values.
    pub fn signature(&self) -> &[u64] {
        &self.sig
    }

    /// Build from an iterator of set elements (borrowed or owned).
    ///
    /// Each value is hashed through its bytes exactly once
    /// (`hash_value(v, 0)`); the hash for position `j` is then derived
    /// by perturbing that base with the `j`-th multiple of the golden
    /// gamma and refinishing through splitmix64. Every position sees
    /// its own pseudorandom permutation of the base hashes — the
    /// standard one-hash MinHash construction — at O(bytes + k) per
    /// value instead of O(bytes × k).
    pub fn from_values<I>(values: I, k: usize) -> Self
    where
        I: IntoIterator,
        I::Item: Borrow<Value>,
    {
        assert!(k > 0);
        let mut sig = vec![u64::MAX; k];
        for v in values {
            let v = v.borrow();
            if v.is_null() {
                continue;
            }
            let base = hash_value(v, 0);
            let mut gamma = 0u64;
            for s in sig.iter_mut() {
                let h = splitmix64(base ^ gamma);
                if h < *s {
                    *s = h;
                }
                gamma = gamma.wrapping_add(0x9E37_79B9_7F4A_7C15);
            }
        }
        MinHash { sig }
    }

    /// Build from the values of a table column, streaming them one at
    /// a time (no intermediate `Vec<Value>`).
    pub fn from_column(table: &Table, column: &str, k: usize) -> rdi_table::Result<Self> {
        let col = table.column(column)?;
        Ok(MinHash::from_values(
            (0..table.num_rows()).map(|i| col.value(i)),
            k,
        ))
    }

    /// Estimated Jaccard similarity with another signature of equal `k`.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.k(), other.k(), "signatures must share k");
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.k() as f64
    }
}

/// Exact Jaccard of two columns' distinct value sets (ground truth for
/// sketch evaluation).
pub fn exact_jaccard(a: &Table, ca: &str, b: &Table, cb: &str) -> rdi_table::Result<f64> {
    let sa: std::collections::BTreeSet<Value> = a.distinct(ca)?.into_iter().collect();
    let sb: std::collections::BTreeSet<Value> = b.distinct(cb)?.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return Ok(0.0);
    }
    let inter = sa.intersection(&sb).count();
    Ok(inter as f64 / (sa.len() + sb.len() - inter) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|s| Value::str(*s)).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = set(&["x", "y", "z"]);
        let ma = MinHash::from_values(a.iter(), 64);
        let mb = MinHash::from_values(a.iter(), 64);
        assert_eq!(ma.jaccard(&mb), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let a: Vec<Value> = (0..100).map(|i| Value::str(format!("a{i}"))).collect();
        let b: Vec<Value> = (0..100).map(|i| Value::str(format!("b{i}"))).collect();
        let ma = MinHash::from_values(a.iter(), 128);
        let mb = MinHash::from_values(b.iter(), 128);
        assert!(ma.jaccard(&mb) < 0.05);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // |A| = 100, |B| = 150, |A∩B| = 50, |A∪B| = 200 → J = 1/4
        let a: Vec<Value> = (0..100).map(|i| Value::str(format!("v{i}"))).collect();
        let b: Vec<Value> = (50..200).map(|i| Value::str(format!("v{i}"))).collect();
        let ma = MinHash::from_values(a.iter(), 256);
        let mb = MinHash::from_values(b.iter(), 256);
        let est = ma.jaccard(&mb);
        assert!((est - 0.25).abs() < 0.08, "est={est}");
        // and the estimate agrees with the exact Jaccard of the sets
        let sa: std::collections::BTreeSet<&Value> = a.iter().collect();
        let sb: std::collections::BTreeSet<&Value> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = (sa.len() + sb.len()) as f64 - inter;
        let exact = inter / union;
        assert!((est - exact).abs() < 0.08, "est={est} exact={exact}");
    }

    #[test]
    fn duplicates_and_nulls_ignored() {
        let a = [Value::str("x"), Value::str("x"), Value::Null];
        let b = [Value::str("x")];
        let ma = MinHash::from_values(a.iter(), 32);
        let mb = MinHash::from_values(b.iter(), 32);
        assert_eq!(ma.jaccard(&mb), 1.0);
    }

    #[test]
    #[should_panic(expected = "share k")]
    fn mismatched_k_panics() {
        let a = MinHash::from_values(set(&["x"]).iter(), 8);
        let b = MinHash::from_values(set(&["x"]).iter(), 16);
        a.jaccard(&b);
    }

    #[test]
    fn exact_jaccard_reference() {
        use rdi_table::{DataType, Field, Schema};
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]);
        let mut ta = Table::new(schema.clone());
        let mut tb = Table::new(schema);
        for v in ["x", "y"] {
            ta.push_row(vec![Value::str(v)]).unwrap();
        }
        for v in ["y", "z"] {
            tb.push_row(vec![Value::str(v)]).unwrap();
        }
        assert!((exact_jaccard(&ta, "c", &tb, "c").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }
}
