//! # rdi-discovery
//!
//! Dataset and feature discovery over data lakes (tutorial §3.1), built
//! from scratch:
//!
//! * [`hash`] — the splittable 64-bit hashing primitives every sketch uses;
//! * [`minhash`] — MinHash signatures and Jaccard estimation;
//! * [`lsh`] — banded MinHash-LSH index for Jaccard threshold queries;
//! * [`ensemble`] — **LSH Ensemble** (Zhu et al., VLDB 2016):
//!   containment-threshold search by size-partitioning the candidates;
//! * [`keyword`] — BM25 keyword search over table names/columns/content
//!   (the IR-style search modality of §3.1);
//! * [`kmv`] — KMV distinct-count sketches and **correlation sketches**
//!   (Santos et al., SIGMOD 2021) for approximate join-correlation
//!   queries;
//! * [`overlap`] — exact set-overlap search via an inverted index
//!   (JOSIE-style top-k joinability);
//! * [`union_search`] — table union search: attribute and table
//!   unionability scores (Nargesian et al., VLDB 2018);
//! * [`navigate`] — RONIN-style lake organization: agglomerative
//!   unionability hierarchy with medoid-guided navigation;
//! * [`schema_match`] — name + instance schema matching and table
//!   alignment, so heterogeneous sources can feed one tailoring run;
//! * [`feature`] — *unbiased feature discovery* (tutorial §5): rank
//!   joinable features by correlation with the target **and** independence
//!   from sensitive attributes.

//!
//! ```
//! use rdi_discovery::MinHash;
//! use rdi_table::Value;
//!
//! let a: Vec<Value> = (0..100).map(|i| Value::str(format!("v{i}"))).collect();
//! let b: Vec<Value> = (50..150).map(|i| Value::str(format!("v{i}"))).collect();
//! let sa = MinHash::from_values(a.iter(), 256);
//! let sb = MinHash::from_values(b.iter(), 256);
//! // true Jaccard is 50/150 = 1/3; the sketch estimate is close
//! assert!((sa.jaccard(&sb) - 1.0 / 3.0).abs() < 0.1);
//! ```
#![warn(missing_docs)]

pub mod ensemble;
pub mod feature;
pub mod hash;
pub mod keyword;
pub mod kmv;
pub mod lsh;
pub mod minhash;
pub mod navigate;
pub mod overlap;
pub mod schema_match;
pub mod union_search;

pub use ensemble::LshEnsemble;
pub use feature::{discover_features, discover_features_with, FeatureCandidate, FeatureQuery};
pub use keyword::KeywordIndex;
pub use kmv::{CorrelationSketch, KmvSketch, UpdatableKmv};
pub use lsh::MinHashLsh;
pub use minhash::{MinHash, UpdatableMinHash};
pub use navigate::{symmetric_unionability, Navigator};
pub use overlap::OverlapIndex;
pub use schema_match::{align_table, match_schemas, ColumnMatch};
pub use union_search::{
    column_matching, column_matching_indices, rank_scored, table_unionability, TableSignature,
    UnionSearchIndex,
};
