//! Data-lake organization for navigation (§3.1's third discovery
//! modality, after RONIN / "Organizing Data Lakes for Navigation",
//! Nargesian et al. SIGMOD 2020 — simplified).
//!
//! Instead of point queries, the user *explores*: the lake's tables are
//! organized bottom-up into a hierarchy by (symmetrized) unionability,
//! each internal node summarized by a medoid table, and a query descends
//! the tree comparing only against medoids — touching O(branching × depth)
//! tables instead of all of them.

use crate::union_search::{table_unionability, TableSignature};

/// Symmetrized unionability (plain [`table_unionability`] normalizes by
/// the query's column count, so it is asymmetric).
pub fn symmetric_unionability(a: &TableSignature, b: &TableSignature) -> f64 {
    0.5 * (table_unionability(a, b) + table_unionability(b, a))
}

/// A node of the navigation hierarchy.
#[derive(Debug)]
pub enum NavNode {
    /// A single table (index into the builder's signature list).
    Leaf(usize),
    /// A cluster: children plus the medoid member summarizing it.
    Internal {
        /// Child node ids.
        children: Vec<usize>,
        /// All member table indices.
        members: Vec<usize>,
        /// The medoid member (maximum average similarity to the rest).
        medoid: usize,
    },
}

/// The navigation tree over a set of table signatures.
pub struct Navigator {
    signatures: Vec<TableSignature>,
    nodes: Vec<NavNode>,
    root: usize,
}

impl Navigator {
    /// Build by average-link agglomerative clustering (O(n³), intended
    /// for lakes of up to a few hundred tables — larger lakes would
    /// sample or pre-partition first).
    ///
    /// # Panics
    /// Panics on an empty signature list.
    pub fn build(signatures: Vec<TableSignature>) -> Self {
        assert!(!signatures.is_empty(), "cannot organize an empty lake");
        let n = signatures.len();
        // pairwise similarity matrix
        let mut sim = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let s = symmetric_unionability(&signatures[i], &signatures[j]);
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
        let mut nodes: Vec<NavNode> = (0..n).map(NavNode::Leaf).collect();
        // active cluster list: (node id, members)
        let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
        while active.len() > 1 {
            // find the closest pair by average linkage
            let mut best = (f64::NEG_INFINITY, 0usize, 1usize);
            for a in 0..active.len() {
                for b in a + 1..active.len() {
                    let mut s = 0.0;
                    for &i in &active[a].1 {
                        for &j in &active[b].1 {
                            s += sim[i][j];
                        }
                    }
                    s /= (active[a].1.len() * active[b].1.len()) as f64;
                    if s > best.0 {
                        best = (s, a, b);
                    }
                }
            }
            let (_, a, b) = best;
            let (node_b, members_b) = active.remove(b);
            let (node_a, members_a) = active.remove(a);
            let mut members = members_a;
            members.extend(members_b);
            // medoid: member with max average similarity to the others
            let medoid = *members
                .iter()
                .max_by(|&&i, &&j| {
                    let avg = |x: usize| {
                        members
                            .iter()
                            .filter(|&&y| y != x)
                            .map(|&y| sim[x][y])
                            .sum::<f64>()
                    };
                    avg(i).total_cmp(&avg(j)).then(j.cmp(&i))
                })
                // rdi-lint: allow(R5): merged clusters hold ≥ 2 members by construction, so max_by always yields a medoid
                .expect("non-empty cluster");
            let id = nodes.len();
            nodes.push(NavNode::Internal {
                children: vec![node_a, node_b],
                members: members.clone(),
                medoid,
            });
            active.push((id, members));
        }
        let root = active[0].0;
        Navigator {
            signatures,
            nodes,
            root,
        }
    }

    /// Number of organized tables.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True iff the navigator is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The signature of table `idx`.
    pub fn signature(&self, idx: usize) -> &TableSignature {
        &self.signatures[idx]
    }

    /// Descend from the root toward `query`, at each internal node
    /// following the child whose medoid is most unionable with the query.
    /// Returns `(reached table index, medoids compared)` — the comparison
    /// count is what navigation saves versus scanning all tables.
    pub fn navigate(&self, query: &TableSignature) -> (usize, usize) {
        let mut node = self.root;
        let mut comparisons = 0;
        loop {
            match &self.nodes[node] {
                NavNode::Leaf(idx) => return (*idx, comparisons),
                NavNode::Internal { children, .. } => {
                    let mut best = (f64::NEG_INFINITY, children[0]);
                    for &c in children {
                        let rep = match &self.nodes[c] {
                            NavNode::Leaf(idx) => *idx,
                            NavNode::Internal { medoid, .. } => *medoid,
                        };
                        comparisons += 1;
                        let s = table_unionability(query, &self.signatures[rep]);
                        if s > best.0 {
                            best = (s, c);
                        }
                    }
                    node = best.1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema, Table, Value};

    fn table(col: &str, vals: &[String]) -> Table {
        let schema = Schema::new(vec![Field::new(col, DataType::Str)]);
        let mut t = Table::new(schema);
        for v in vals {
            t.push_row(vec![Value::str(v.clone())]).unwrap();
        }
        t
    }

    /// Two planted domains: "city*" tables share city names, "gene*"
    /// tables share gene names.
    fn lake() -> Vec<TableSignature> {
        let cities: Vec<String> = (0..40).map(|i| format!("city{i}")).collect();
        let genes: Vec<String> = (0..40).map(|i| format!("gene{i}")).collect();
        let mut sigs = Vec::new();
        for t in 0..4 {
            let vals: Vec<String> = cities[t * 5..t * 5 + 25].to_vec();
            sigs.push(
                TableSignature::build(format!("city_{t}"), &table("name", &vals), 64).unwrap(),
            );
        }
        for t in 0..4 {
            let vals: Vec<String> = genes[t * 5..t * 5 + 25].to_vec();
            sigs.push(
                TableSignature::build(format!("gene_{t}"), &table("name", &vals), 64).unwrap(),
            );
        }
        sigs
    }

    #[test]
    fn clusters_separate_planted_domains() {
        let nav = Navigator::build(lake());
        // the root's two children should split city tables from gene tables
        let NavNode::Internal { children, .. } = &nav.nodes[nav.root] else {
            panic!("root must be internal");
        };
        let members = |id: usize| -> Vec<String> {
            match &nav.nodes[id] {
                NavNode::Leaf(i) => vec![nav.signature(*i).name.clone()],
                NavNode::Internal { members, .. } => members
                    .iter()
                    .map(|&i| nav.signature(i).name.clone())
                    .collect(),
            }
        };
        let a = members(children[0]);
        let b = members(children[1]);
        let pure = |ms: &[String]| {
            ms.iter().all(|n| n.starts_with("city")) || ms.iter().all(|n| n.starts_with("gene"))
        };
        assert!(pure(&a) && pure(&b), "a={a:?} b={b:?}");
    }

    #[test]
    fn navigation_reaches_the_right_domain_cheaply() {
        let sigs = lake();
        let n = sigs.len();
        let nav = Navigator::build(sigs);
        // query: a fresh city table overlapping the city domain
        let vals: Vec<String> = (10..35).map(|i| format!("city{i}")).collect();
        let q = TableSignature::build("q", &table("name", &vals), 64).unwrap();
        let (reached, comparisons) = nav.navigate(&q);
        assert!(
            nav.signature(reached).name.starts_with("city"),
            "reached {}",
            nav.signature(reached).name
        );
        // navigation must not scan everything
        assert!(comparisons < 2 * n, "comparisons={comparisons}");
    }

    #[test]
    fn single_table_lake() {
        let sigs =
            vec![TableSignature::build("only", &table("c", &["x".to_string()]), 16).unwrap()];
        let nav = Navigator::build(sigs);
        let q = TableSignature::build("q", &table("c", &["x".to_string()]), 16).unwrap();
        let (reached, comparisons) = nav.navigate(&q);
        assert_eq!(reached, 0);
        assert_eq!(comparisons, 0);
    }
}
