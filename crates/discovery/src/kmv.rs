//! KMV sketches and correlation sketches.
//!
//! A **KMV** (k-minimum-values) sketch keeps the `k` smallest hash values
//! of a set; the k-th smallest value `u_k` estimates the distinct count as
//! `(k − 1)/u_k`. Because hashing is *coordinated* (same hash function on
//! both sides), the keys surviving into two tables' sketches coincide —
//! which is exactly what **correlation sketches** (Santos, Bessa,
//! Chirigati, Musco, Freire; SIGMOD 2021) exploit: keep, with each
//! sampled join key, the associated numeric values from each table; the
//! intersection of two sketches is a (nearly) uniform sample of the joined
//! pairs, so any correlation measure evaluated on it approximates the true
//! join-correlation.

use std::collections::BTreeMap;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

use crate::hash::{hash_value, to_unit};

/// Seed for the shared (coordinated) key-hash function.
const KEY_SEED: u64 = 0x5eed_cafe;

/// A k-minimum-values sketch of a key set, with an optional payload value
/// per retained key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmvSketch {
    k: usize,
    /// (unit-interval hash, key, payload), sorted by hash ascending.
    entries: Vec<(f64, Value, f64)>,
}

impl KmvSketch {
    /// Build over a table's key column, storing the mean of `payload`
    /// column per key (keys may repeat; the correlation-sketch payload is
    /// the per-key aggregate).
    ///
    /// Null and non-numeric payload values are excluded from the
    /// per-key mean — folding them in as `0.0` would drag sparse
    /// columns' payloads toward zero. A key whose payload is *never*
    /// numeric is dropped entirely (it has no feature value to
    /// correlate); without a payload column every non-null key is kept.
    pub fn build(
        table: &Table,
        key: &str,
        payload: Option<&str>,
        k: usize,
    ) -> rdi_table::Result<Self> {
        assert!(k > 0);
        let kidx = table.schema().index_of(key)?;
        let pidx = payload.map(|p| table.schema().index_of(p)).transpose()?;
        // per key: (payload sum over numeric rows, numeric row count);
        // sorted map so the entries vec is built in key order (R1)
        let mut agg: BTreeMap<Value, (f64, usize)> = BTreeMap::new();
        for i in 0..table.num_rows() {
            let kv = table.column_at(kidx).value(i);
            if kv.is_null() {
                continue;
            }
            let e = agg.entry(kv).or_insert((0.0, 0));
            match pidx {
                Some(p) => {
                    if let Some(v) = table.column_at(p).value(i).as_f64() {
                        e.0 += v;
                        e.1 += 1;
                    }
                }
                None => e.1 += 1,
            }
        }
        let mut entries: Vec<(f64, Value, f64)> = agg
            .into_iter()
            .filter_map(|(kv, (sum, n))| {
                if n == 0 {
                    // payload requested but never numeric for this key
                    return None;
                }
                let u = to_unit(hash_value(&kv, KEY_SEED));
                Some((u, kv, sum / n as f64))
            })
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        entries.truncate(k);
        rdi_obs::counter("discovery.kmv_sketches_built").inc();
        Ok(KmvSketch { k, entries })
    }

    /// Number of retained keys (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the sketch retains no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained `(unit hash, key, mean payload)` entries in
    /// ascending hash order — exposed read-only so harnesses can check
    /// bitwise identity between cold-built and incrementally-maintained
    /// sketches.
    pub fn entries(&self) -> &[(f64, Value, f64)] {
        &self.entries
    }

    /// Estimated number of distinct keys: `(k−1)/u_k` when full, exact
    /// count otherwise.
    pub fn distinct_estimate(&self) -> f64 {
        if self.entries.len() < self.k {
            return self.entries.len() as f64;
        }
        // full sketch with k > 0 ⇒ entries non-empty; 0.0 is unreachable
        let u_k = self.entries.last().map_or(0.0, |e| e.0);
        if u_k <= 0.0 {
            return self.entries.len() as f64;
        }
        (self.k as f64 - 1.0) / u_k
    }

    /// Keys shared by both sketches *within the joint sketch region* —
    /// a coordinated uniform sample of the join keys — with both payloads.
    pub fn intersect<'a>(&'a self, other: &'a KmvSketch) -> Vec<(&'a Value, f64, f64)> {
        // restrict to the common retained-hash region to keep uniformity
        let bound = match (self.entries.last(), other.entries.last()) {
            (Some(a), Some(b)) => a.0.min(b.0),
            _ => return Vec::new(),
        };
        let map: BTreeMap<&Value, f64> = other
            .entries
            .iter()
            .filter(|(u, _, _)| *u <= bound)
            .map(|(_, k, p)| (k, *p))
            .collect();
        self.entries
            .iter()
            .filter(|(u, _, _)| *u <= bound)
            .filter_map(|(_, k, p)| map.get(k).map(|q| (k, *p, *q)))
            .collect()
    }
}

/// One key tracked by an [`UpdatableKmv`]: its coordinated hash, the
/// running payload fold, and row multiplicities.
#[derive(Debug, Clone)]
struct Tracked {
    u: f64,
    key: Value,
    /// Left-fold of numeric payload values in row order — appended rows
    /// extend the same fold a cold build would compute.
    sum: f64,
    /// Rows whose payload was numeric (the mean's denominator).
    numeric_rows: u64,
    /// Total rows carrying this key (entry dropped when it hits 0).
    rows: u64,
}

/// Ordering of tracked entries: by hash, ties by key — identical to the
/// cold build's stable sort over key-ascending aggregation order.
fn entry_order(au: f64, ak: &Value, bu: f64, bk: &Value) -> std::cmp::Ordering {
    au.total_cmp(&bu).then_with(|| ak.cmp(bk))
}

/// A KMV/correlation sketch that absorbs appended rows **exactly** and
/// absorbs deletions under a tracked **deletion debt**.
///
/// Internally the sketch retains the `k + slack` smallest-hash keys and
/// a `horizon`: the smallest hash it has ever discarded. The invariant
/// "every retained hash ≤ horizon ≤ every discarded hash" makes the
/// exposed top-`k` ([`UpdatableKmv::sketch`]) bitwise identical to a
/// cold [`KmvSketch::build`] of the current table under *any append
/// stream*: an appended key below the horizon is inserted (possibly
/// displacing the largest retained entry), one at or beyond it can
/// never reach the top-`k` while at least `k` exposable entries remain.
///
/// Deletions are absorbed, not replayed: a deleted row decrements its
/// key's multiplicity (the key vanishes from the sketch when it hits
/// zero) but the payload mean of a partially-deleted key goes *stale*
/// — a sum cannot be un-folded exactly in floating point. Every
/// deleted row therefore adds one unit of **debt**; when
/// `debt > debt_threshold`, or when deletions have eaten the slack
/// (`truncated` with fewer than `k` exposable entries),
/// [`UpdatableKmv::needs_rebuild`] turns true and the owner performs a
/// counted rebuild (`sketch.rebuilds`) — the only O(table) step, paid
/// once per threshold crossing instead of once per delta.
///
/// Every absorbed row counts `sketch.incremental_updates`.
#[derive(Debug, Clone)]
pub struct UpdatableKmv {
    k: usize,
    slack: usize,
    debt_threshold: u64,
    has_payload: bool,
    /// Retained entries, sorted by (hash, key).
    entries: Vec<Tracked>,
    /// True once any key has been discarded (build-time truncation,
    /// capacity displacement, or beyond-horizon arrival).
    truncated: bool,
    /// Smallest hash ever discarded (`f64::INFINITY` until truncated).
    horizon: f64,
    debt: u64,
}

impl UpdatableKmv {
    /// Build over a table's key (and optional payload) column, exactly
    /// like [`KmvSketch::build`] but retaining `k + slack` keys so
    /// later deletions have room to consume.
    pub fn build(
        table: &Table,
        key: &str,
        payload: Option<&str>,
        k: usize,
        slack: usize,
        debt_threshold: u64,
    ) -> rdi_table::Result<Self> {
        assert!(k > 0);
        let kidx = table.schema().index_of(key)?;
        let pidx = payload.map(|p| table.schema().index_of(p)).transpose()?;
        let mut agg: BTreeMap<Value, (f64, u64, u64)> = BTreeMap::new();
        for i in 0..table.num_rows() {
            let kv = table.column_at(kidx).value(i);
            if kv.is_null() {
                continue;
            }
            let e = agg.entry(kv).or_insert((0.0, 0, 0));
            e.2 += 1;
            match pidx {
                Some(p) => {
                    if let Some(v) = table.column_at(p).value(i).as_f64() {
                        e.0 += v;
                        e.1 += 1;
                    }
                }
                None => e.1 += 1,
            }
        }
        let mut entries: Vec<Tracked> = agg
            .into_iter()
            .map(|(kv, (sum, n, m))| Tracked {
                u: to_unit(hash_value(&kv, KEY_SEED)),
                key: kv,
                sum,
                numeric_rows: n,
                rows: m,
            })
            .collect();
        entries.sort_by(|a, b| entry_order(a.u, &a.key, b.u, &b.key));
        let cap = k + slack;
        let mut truncated = false;
        let mut horizon = f64::INFINITY;
        if entries.len() > cap {
            truncated = true;
            horizon = entries[cap].u;
            entries.truncate(cap);
        }
        rdi_obs::counter("discovery.kmv_sketches_built").inc();
        Ok(UpdatableKmv {
            k,
            slack,
            debt_threshold,
            has_payload: payload.is_some(),
            entries,
            truncated,
            horizon,
            debt: 0,
        })
    }

    /// Absorb one appended row. Exact: after any sequence of appends,
    /// [`UpdatableKmv::sketch`] equals a cold build of the grown table
    /// to the bit. Null keys are skipped, as in the cold build.
    pub fn append_row(&mut self, key: &Value, payload: Option<&Value>) {
        if key.is_null() {
            return;
        }
        rdi_obs::counter("sketch.incremental_updates").inc();
        let u = to_unit(hash_value(key, KEY_SEED));
        match self
            .entries
            .binary_search_by(|e| entry_order(e.u, &e.key, u, key))
        {
            Ok(i) => {
                let e = &mut self.entries[i];
                e.rows += 1;
                if self.has_payload {
                    if let Some(v) = payload.and_then(Value::as_f64) {
                        e.sum += v;
                        e.numeric_rows += 1;
                    }
                } else {
                    e.numeric_rows += 1;
                }
            }
            Err(i) => {
                if self.truncated && u >= self.horizon {
                    // A key at or beyond the horizon may have been seen
                    // (and discarded) before; re-admitting it with a
                    // fresh payload fold would be silently wrong.
                    return;
                }
                let (sum, n) = match (self.has_payload, payload.and_then(Value::as_f64)) {
                    (true, Some(v)) => (v, 1),
                    (true, None) => (0.0, 0),
                    (false, _) => (0.0, 1),
                };
                self.entries.insert(
                    i,
                    Tracked {
                        u,
                        key: key.clone(),
                        sum,
                        numeric_rows: n,
                        rows: 1,
                    },
                );
                if self.entries.len() > self.k + self.slack {
                    // rdi-lint: allow(R5): len > k + slack ≥ 1, so pop returns an entry
                    let popped = self.entries.pop().expect("len checked above");
                    self.truncated = true;
                    self.horizon = self.horizon.min(popped.u);
                }
            }
        }
    }

    /// Absorb one deleted row of `key`. Adds one unit of deletion debt;
    /// the key's multiplicity drops (the entry vanishes at zero) but a
    /// partially-deleted key's payload mean goes stale until the next
    /// rebuild.
    pub fn delete_row(&mut self, key: &Value) {
        if key.is_null() {
            return;
        }
        rdi_obs::counter("sketch.incremental_updates").inc();
        self.debt += 1;
        let u = to_unit(hash_value(key, KEY_SEED));
        if let Ok(i) = self
            .entries
            .binary_search_by(|e| entry_order(e.u, &e.key, u, key))
        {
            let e = &mut self.entries[i];
            e.rows = e.rows.saturating_sub(1);
            if e.rows == 0 {
                self.entries.remove(i);
            }
        }
    }

    /// Entries that a cold build would expose (keys with at least one
    /// numeric payload row when a payload column is profiled).
    fn exposable(&self) -> impl Iterator<Item = &Tracked> {
        let has_payload = self.has_payload;
        self.entries
            .iter()
            .filter(move |e| !has_payload || e.numeric_rows > 0)
    }

    /// Accumulated deletion debt since the last (re)build.
    pub fn debt(&self) -> u64 {
        self.debt
    }

    /// True when the sketch can no longer vouch for exactness-on-append
    /// or bounded staleness: deletion debt crossed the threshold, or
    /// deletions consumed the slack of a truncated sketch.
    pub fn needs_rebuild(&self) -> bool {
        self.debt > self.debt_threshold || (self.truncated && self.exposable().count() < self.k)
    }

    /// Rebuild from the current table, resetting debt. The one O(table)
    /// maintenance step — counted under `sketch.rebuilds`.
    pub fn rebuild(
        &mut self,
        table: &Table,
        key: &str,
        payload: Option<&str>,
    ) -> rdi_table::Result<()> {
        *self = UpdatableKmv::build(table, key, payload, self.k, self.slack, self.debt_threshold)?;
        rdi_obs::counter("sketch.rebuilds").inc();
        Ok(())
    }

    /// The exposed k-minimum-values sketch (top `k` of the retained
    /// entries; per-key payload mean).
    pub fn sketch(&self) -> KmvSketch {
        let entries: Vec<(f64, Value, f64)> = self
            .exposable()
            .take(self.k)
            .map(|e| (e.u, e.key.clone(), e.sum / e.numeric_rows as f64))
            .collect();
        KmvSketch { k: self.k, entries }
    }

    /// The exposed sketch wrapped as a [`CorrelationSketch`].
    pub fn correlation_sketch(&self) -> CorrelationSketch {
        CorrelationSketch {
            sketch: self.sketch(),
        }
    }
}

/// A correlation sketch: a KMV sketch whose payload is the numeric feature
/// to correlate, plus the estimation entry points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationSketch {
    sketch: KmvSketch,
}

impl CorrelationSketch {
    /// Build over `(key, feature)` of a table.
    pub fn build(table: &Table, key: &str, feature: &str, k: usize) -> rdi_table::Result<Self> {
        Ok(CorrelationSketch {
            sketch: KmvSketch::build(table, key, Some(feature), k)?,
        })
    }

    /// The underlying KMV sketch.
    pub fn kmv(&self) -> &KmvSketch {
        &self.sketch
    }

    /// Estimated Pearson correlation between this sketch's feature and
    /// `other`'s feature over the (sampled) join keys; `None` when fewer
    /// than 3 sampled keys coincide.
    pub fn correlation(&self, other: &CorrelationSketch) -> Option<f64> {
        let pairs = self.sketch.intersect(&other.sketch);
        if pairs.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|(_, x, _)| *x).collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, _, y)| *y).collect();
        Some(rdi_fairness::pearson(&xs, &ys))
    }

    /// Estimated join size |keys(self) ∩ keys(other)| via the coordinated
    /// sample: overlap fraction × distinct estimate.
    ///
    /// The overlap fraction is taken over the entries inside the *joint
    /// bound region* (hash ≤ min of the two k-th minimums) — the same
    /// region [`KmvSketch::intersect`] samples from. Dividing by the
    /// total sketch lengths instead would shrink the fraction whenever
    /// the two sketches' k-th minimum hashes differ (e.g. different key
    /// cardinalities), underestimating the join size.
    pub fn join_key_estimate(&self, other: &CorrelationSketch) -> f64 {
        let a = &self.sketch;
        let b = &other.sketch;
        let bound = match (a.entries.last(), b.entries.last()) {
            (Some(x), Some(y)) => x.0.min(y.0),
            _ => return 0.0,
        };
        let in_bound = |s: &KmvSketch| s.entries.iter().filter(|(u, _, _)| *u <= bound).count();
        let denom = in_bound(a).min(in_bound(b)) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let pairs = a.intersect(b).len() as f64;
        (pairs / denom) * a.distinct_estimate().min(b.distinct_estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    fn keyed_table(n: usize, f: impl Fn(usize) -> f64) -> Table {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::str(format!("k{i}")), Value::Float(f(i))])
                .unwrap();
        }
        t
    }

    #[test]
    fn distinct_estimate_accuracy() {
        let t = keyed_table(10_000, |i| i as f64);
        let s = KmvSketch::build(&t, "key", None, 256).unwrap();
        let est = s.distinct_estimate();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.15, "est={est}");
    }

    #[test]
    fn small_sets_are_exact() {
        let t = keyed_table(10, |i| i as f64);
        let s = KmvSketch::build(&t, "key", None, 256).unwrap();
        assert_eq!(s.distinct_estimate(), 10.0);
    }

    #[test]
    fn coordinated_sketches_share_keys() {
        let a = keyed_table(5_000, |i| i as f64);
        let b = keyed_table(5_000, |i| (i * 2) as f64);
        let sa = KmvSketch::build(&a, "key", Some("x"), 128).unwrap();
        let sb = KmvSketch::build(&b, "key", Some("x"), 128).unwrap();
        let inter = sa.intersect(&sb);
        // identical key sets → intersection is (almost) the whole joint region
        assert!(inter.len() > 100, "len={}", inter.len());
        // payloads line up: y = 2x
        for (_, x, y) in inter {
            assert_eq!(y, 2.0 * x);
        }
    }

    #[test]
    fn correlation_estimate_positive_and_negative() {
        let n = 20_000;
        let a = keyed_table(n, |i| i as f64);
        let pos = keyed_table(n, |i| i as f64 * 3.0 + 1.0);
        let neg = keyed_table(n, |i| -(i as f64));
        let sa = CorrelationSketch::build(&a, "key", "x", 256).unwrap();
        let sp = CorrelationSketch::build(&pos, "key", "x", 256).unwrap();
        let sn = CorrelationSketch::build(&neg, "key", "x", 256).unwrap();
        assert!((sa.correlation(&sp).unwrap() - 1.0).abs() < 0.02);
        assert!((sa.correlation(&sn).unwrap() + 1.0).abs() < 0.02);
    }

    #[test]
    fn disjoint_keys_give_none() {
        let a = keyed_table(100, |i| i as f64);
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut b = Table::new(schema);
        for i in 0..100 {
            b.push_row(vec![Value::str(format!("z{i}")), Value::Float(0.0)])
                .unwrap();
        }
        let sa = CorrelationSketch::build(&a, "key", "x", 64).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 64).unwrap();
        assert!(sa.correlation(&sb).is_none());
    }

    #[test]
    fn null_payloads_are_excluded_from_the_mean() {
        // regression: nulls used to fold into the mean as 0.0, biasing
        // sparse payload columns toward zero (10.0 + null → mean 5.0)
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("k"), Value::Float(10.0)])
            .unwrap();
        t.push_row(vec![Value::str("k"), Value::Null]).unwrap();
        t.push_row(vec![Value::str("k"), Value::Float(30.0)])
            .unwrap();
        t.push_row(vec![Value::str("k"), Value::Null]).unwrap();
        let s = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries[0].2, 20.0, "mean over numeric rows only");
    }

    #[test]
    fn keys_without_numeric_payload_drop_only_when_payload_requested() {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        // neither key ever has a numeric payload (null / string)
        t.push_row(vec![Value::str("only_null"), Value::Null])
            .unwrap();
        t.push_row(vec![Value::str("text"), Value::str("n/a")])
            .unwrap();
        // with a payload column requested, neither key has a numeric
        // payload → both are dropped
        let with_payload = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert!(with_payload.is_empty());
        // without a payload column, both keys are retained
        let keys_only = KmvSketch::build(&t, "key", None, 8).unwrap();
        assert_eq!(keys_only.len(), 2);
    }

    #[test]
    fn join_estimate_unbiased_when_kth_minimums_differ() {
        // A's keys ⊂ B's keys but |B| = 10 × |A|, so the two sketches'
        // k-th minimum hashes differ by ~10×. The joint bound region
        // holds only ~k/10 of each sketch's entries; dividing the
        // intersection size by the full sketch lengths (the old
        // formula) underestimated the join size ~10×.
        let a = keyed_table(1_000, |i| i as f64);
        let b = keyed_table(10_000, |i| i as f64);
        let sa = CorrelationSketch::build(&a, "key", "x", 256).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 256).unwrap();
        let truth = 1_000.0; // |keys(A) ∩ keys(B)|
        let est = sa.join_key_estimate(&sb);
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est={est} truth={truth}"
        );
        // the old denominator put the estimate near truth/10; make the
        // bias regression explicit
        assert!(est > 0.5 * truth, "old formula gave ~{:.0}", truth / 10.0);
        // symmetric call agrees
        let est_rev = sb.join_key_estimate(&sa);
        assert!((est_rev - truth).abs() / truth < 0.25, "est_rev={est_rev}");
    }

    #[test]
    fn join_estimate_with_differing_sketch_sizes() {
        // different k on the two sides (64 vs 256) — entry counts and
        // bound regions differ; the estimator must still track truth
        let a = keyed_table(5_000, |i| i as f64);
        let b = keyed_table(5_000, |i| i as f64);
        let sa = CorrelationSketch::build(&a, "key", "x", 64).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 256).unwrap();
        let est = sa.join_key_estimate(&sb);
        assert!(
            (est - 5_000.0).abs() / 5_000.0 < 0.3,
            "est={est} truth=5000"
        );
    }

    /// Bitwise comparison of two sketches (f64s compared by bits, not
    /// tolerance — the incremental path must be *identical*, not close).
    fn assert_bitwise_eq(a: &KmvSketch, b: &KmvSketch) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "hash differs");
            assert_eq!(x.1, y.1, "key differs");
            assert_eq!(x.2.to_bits(), y.2.to_bits(), "payload differs");
        }
    }

    #[test]
    fn updatable_kmv_appends_match_cold_build_bitwise() {
        // repeating keys → per-key payload folds span multiple rows, so
        // any deviation from row-order accumulation breaks bit equality
        let full = {
            let schema = Schema::new(vec![
                Field::new("key", DataType::Str),
                Field::new("x", DataType::Float),
            ]);
            let mut t = Table::new(schema);
            for i in 0..90 {
                t.push_row(vec![
                    Value::str(format!("k{}", i % 37)),
                    Value::Float(0.1 * i as f64 + 0.37),
                ])
                .unwrap();
            }
            t
        };
        let seed = full.take(&(0..40).collect::<Vec<_>>());
        let mut upd = UpdatableKmv::build(&seed, "key", Some("x"), 16, 8, 64).unwrap();
        let before = rdi_obs::counter("sketch.incremental_updates").get();
        for i in 40..90 {
            let row = full.row(i).unwrap();
            upd.append_row(&row[0], Some(&row[1]));
        }
        assert_eq!(
            rdi_obs::counter("sketch.incremental_updates").get() - before,
            50,
            "one counted update per appended row"
        );
        let cold = KmvSketch::build(&full, "key", Some("x"), 16).unwrap();
        assert_bitwise_eq(&upd.sketch(), &cold);
        // keys-only variant (no payload column)
        let mut upd2 = UpdatableKmv::build(&seed, "key", None, 16, 8, 64).unwrap();
        for i in 40..90 {
            let row = full.row(i).unwrap();
            upd2.append_row(&row[0], None);
        }
        assert_bitwise_eq(
            &upd2.sketch(),
            &KmvSketch::build(&full, "key", None, 16).unwrap(),
        );
        // the correlation wrapper rides the same path
        let corr_cold = CorrelationSketch::build(&full, "key", "x", 16).unwrap();
        assert_bitwise_eq(&upd.correlation_sketch().sketch, &corr_cold.sketch);
    }

    #[test]
    fn updatable_kmv_deletions_accrue_debt_and_rebuild_restores_exactness() {
        let mut live = keyed_table(200, |i| i as f64);
        let mut upd = UpdatableKmv::build(&live, "key", Some("x"), 32, 16, 8).unwrap();
        assert_eq!(upd.debt(), 0);
        assert!(!upd.needs_rebuild());
        // delete 8 rows (≤ threshold): debt accrues, no rebuild demanded
        for i in 0..8 {
            let row = live.row(i).unwrap();
            upd.delete_row(&row[0]);
        }
        live.delete_rows(&(0..8).collect::<Vec<_>>()).unwrap();
        assert_eq!(upd.debt(), 8);
        assert!(!upd.needs_rebuild(), "debt == threshold is still fine");
        // one more crosses the threshold
        let row = live.row(0).unwrap();
        upd.delete_row(&row[0]);
        live.delete_rows(&[0]).unwrap();
        assert!(upd.needs_rebuild());
        let rebuilds = rdi_obs::counter("sketch.rebuilds").get();
        upd.rebuild(&live, "key", Some("x")).unwrap();
        assert_eq!(rdi_obs::counter("sketch.rebuilds").get(), rebuilds + 1);
        assert_eq!(upd.debt(), 0);
        assert!(!upd.needs_rebuild());
        assert_bitwise_eq(
            &upd.sketch(),
            &KmvSketch::build(&live, "key", Some("x"), 32).unwrap(),
        );
    }

    #[test]
    fn updatable_kmv_fully_deleted_keys_vanish_exactly() {
        // deleting *all* rows of a key removes it from the sketch — the
        // exposed entries match a cold build even before any rebuild
        let t = keyed_table(30, |i| i as f64);
        let mut upd = UpdatableKmv::build(&t, "key", Some("x"), 64, 8, 100).unwrap();
        let mut live = t.clone();
        // remove keys k0..k9 entirely (one row each in keyed_table)
        for i in 0..10 {
            let row = live.row(0).unwrap();
            upd.delete_row(&row[0]);
            live.delete_rows(&[0]).unwrap();
            let _ = i;
        }
        assert_eq!(upd.debt(), 10);
        assert_bitwise_eq(
            &upd.sketch(),
            &KmvSketch::build(&live, "key", Some("x"), 64).unwrap(),
        );
    }

    #[test]
    fn updatable_kmv_truncation_keeps_topk_exact_and_guards_the_horizon() {
        // many more keys than k + slack → the internal store truncates;
        // the exposed top-k must still match a cold build under appends
        let full = keyed_table(2_000, |i| i as f64);
        let seed = full.take(&(0..1_200).collect::<Vec<_>>());
        let mut upd = UpdatableKmv::build(&seed, "key", Some("x"), 64, 16, 50).unwrap();
        for i in 1_200..2_000 {
            let row = full.row(i).unwrap();
            upd.append_row(&row[0], Some(&row[1]));
        }
        assert_bitwise_eq(
            &upd.sketch(),
            &KmvSketch::build(&full, "key", Some("x"), 64).unwrap(),
        );
        // deleting retained keys eats the slack; once fewer than k
        // exposable entries remain, the sketch demands a rebuild rather
        // than serving a silently-short top-k
        let retained: Vec<Value> = upd.entries.iter().map(|e| e.key.clone()).collect();
        for key in &retained {
            upd.delete_row(key);
        }
        assert!(upd.needs_rebuild(), "slack exhausted on a truncated sketch");
    }

    #[test]
    fn repeated_keys_aggregate_payload() {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for v in [1.0, 3.0] {
            t.push_row(vec![Value::str("same"), Value::Float(v)])
                .unwrap();
        }
        let s = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries[0].2, 2.0); // mean of 1 and 3
    }
}
