//! KMV sketches and correlation sketches.
//!
//! A **KMV** (k-minimum-values) sketch keeps the `k` smallest hash values
//! of a set; the k-th smallest value `u_k` estimates the distinct count as
//! `(k − 1)/u_k`. Because hashing is *coordinated* (same hash function on
//! both sides), the keys surviving into two tables' sketches coincide —
//! which is exactly what **correlation sketches** (Santos, Bessa,
//! Chirigati, Musco, Freire; SIGMOD 2021) exploit: keep, with each
//! sampled join key, the associated numeric values from each table; the
//! intersection of two sketches is a (nearly) uniform sample of the joined
//! pairs, so any correlation measure evaluated on it approximates the true
//! join-correlation.

use std::collections::BTreeMap;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

use crate::hash::{hash_value, to_unit};

/// Seed for the shared (coordinated) key-hash function.
const KEY_SEED: u64 = 0x5eed_cafe;

/// A k-minimum-values sketch of a key set, with an optional payload value
/// per retained key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmvSketch {
    k: usize,
    /// (unit-interval hash, key, payload), sorted by hash ascending.
    entries: Vec<(f64, Value, f64)>,
}

impl KmvSketch {
    /// Build over a table's key column, storing the mean of `payload`
    /// column per key (keys may repeat; the correlation-sketch payload is
    /// the per-key aggregate).
    ///
    /// Null and non-numeric payload values are excluded from the
    /// per-key mean — folding them in as `0.0` would drag sparse
    /// columns' payloads toward zero. A key whose payload is *never*
    /// numeric is dropped entirely (it has no feature value to
    /// correlate); without a payload column every non-null key is kept.
    pub fn build(
        table: &Table,
        key: &str,
        payload: Option<&str>,
        k: usize,
    ) -> rdi_table::Result<Self> {
        assert!(k > 0);
        let kidx = table.schema().index_of(key)?;
        let pidx = payload.map(|p| table.schema().index_of(p)).transpose()?;
        // per key: (payload sum over numeric rows, numeric row count);
        // sorted map so the entries vec is built in key order (R1)
        let mut agg: BTreeMap<Value, (f64, usize)> = BTreeMap::new();
        for i in 0..table.num_rows() {
            let kv = table.column_at(kidx).value(i);
            if kv.is_null() {
                continue;
            }
            let e = agg.entry(kv).or_insert((0.0, 0));
            match pidx {
                Some(p) => {
                    if let Some(v) = table.column_at(p).value(i).as_f64() {
                        e.0 += v;
                        e.1 += 1;
                    }
                }
                None => e.1 += 1,
            }
        }
        let mut entries: Vec<(f64, Value, f64)> = agg
            .into_iter()
            .filter_map(|(kv, (sum, n))| {
                if n == 0 {
                    // payload requested but never numeric for this key
                    return None;
                }
                let u = to_unit(hash_value(&kv, KEY_SEED));
                Some((u, kv, sum / n as f64))
            })
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        entries.truncate(k);
        rdi_obs::counter("discovery.kmv_sketches_built").inc();
        Ok(KmvSketch { k, entries })
    }

    /// Number of retained keys (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the sketch retains no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated number of distinct keys: `(k−1)/u_k` when full, exact
    /// count otherwise.
    pub fn distinct_estimate(&self) -> f64 {
        if self.entries.len() < self.k {
            return self.entries.len() as f64;
        }
        // full sketch with k > 0 ⇒ entries non-empty; 0.0 is unreachable
        let u_k = self.entries.last().map_or(0.0, |e| e.0);
        if u_k <= 0.0 {
            return self.entries.len() as f64;
        }
        (self.k as f64 - 1.0) / u_k
    }

    /// Keys shared by both sketches *within the joint sketch region* —
    /// a coordinated uniform sample of the join keys — with both payloads.
    pub fn intersect<'a>(&'a self, other: &'a KmvSketch) -> Vec<(&'a Value, f64, f64)> {
        // restrict to the common retained-hash region to keep uniformity
        let bound = match (self.entries.last(), other.entries.last()) {
            (Some(a), Some(b)) => a.0.min(b.0),
            _ => return Vec::new(),
        };
        let map: BTreeMap<&Value, f64> = other
            .entries
            .iter()
            .filter(|(u, _, _)| *u <= bound)
            .map(|(_, k, p)| (k, *p))
            .collect();
        self.entries
            .iter()
            .filter(|(u, _, _)| *u <= bound)
            .filter_map(|(_, k, p)| map.get(k).map(|q| (k, *p, *q)))
            .collect()
    }
}

/// A correlation sketch: a KMV sketch whose payload is the numeric feature
/// to correlate, plus the estimation entry points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationSketch {
    sketch: KmvSketch,
}

impl CorrelationSketch {
    /// Build over `(key, feature)` of a table.
    pub fn build(table: &Table, key: &str, feature: &str, k: usize) -> rdi_table::Result<Self> {
        Ok(CorrelationSketch {
            sketch: KmvSketch::build(table, key, Some(feature), k)?,
        })
    }

    /// The underlying KMV sketch.
    pub fn kmv(&self) -> &KmvSketch {
        &self.sketch
    }

    /// Estimated Pearson correlation between this sketch's feature and
    /// `other`'s feature over the (sampled) join keys; `None` when fewer
    /// than 3 sampled keys coincide.
    pub fn correlation(&self, other: &CorrelationSketch) -> Option<f64> {
        let pairs = self.sketch.intersect(&other.sketch);
        if pairs.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|(_, x, _)| *x).collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, _, y)| *y).collect();
        Some(rdi_fairness::pearson(&xs, &ys))
    }

    /// Estimated join size |keys(self) ∩ keys(other)| via the coordinated
    /// sample: overlap fraction × distinct estimate.
    ///
    /// The overlap fraction is taken over the entries inside the *joint
    /// bound region* (hash ≤ min of the two k-th minimums) — the same
    /// region [`KmvSketch::intersect`] samples from. Dividing by the
    /// total sketch lengths instead would shrink the fraction whenever
    /// the two sketches' k-th minimum hashes differ (e.g. different key
    /// cardinalities), underestimating the join size.
    pub fn join_key_estimate(&self, other: &CorrelationSketch) -> f64 {
        let a = &self.sketch;
        let b = &other.sketch;
        let bound = match (a.entries.last(), b.entries.last()) {
            (Some(x), Some(y)) => x.0.min(y.0),
            _ => return 0.0,
        };
        let in_bound = |s: &KmvSketch| s.entries.iter().filter(|(u, _, _)| *u <= bound).count();
        let denom = in_bound(a).min(in_bound(b)) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let pairs = a.intersect(b).len() as f64;
        (pairs / denom) * a.distinct_estimate().min(b.distinct_estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    fn keyed_table(n: usize, f: impl Fn(usize) -> f64) -> Table {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::str(format!("k{i}")), Value::Float(f(i))])
                .unwrap();
        }
        t
    }

    #[test]
    fn distinct_estimate_accuracy() {
        let t = keyed_table(10_000, |i| i as f64);
        let s = KmvSketch::build(&t, "key", None, 256).unwrap();
        let est = s.distinct_estimate();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.15, "est={est}");
    }

    #[test]
    fn small_sets_are_exact() {
        let t = keyed_table(10, |i| i as f64);
        let s = KmvSketch::build(&t, "key", None, 256).unwrap();
        assert_eq!(s.distinct_estimate(), 10.0);
    }

    #[test]
    fn coordinated_sketches_share_keys() {
        let a = keyed_table(5_000, |i| i as f64);
        let b = keyed_table(5_000, |i| (i * 2) as f64);
        let sa = KmvSketch::build(&a, "key", Some("x"), 128).unwrap();
        let sb = KmvSketch::build(&b, "key", Some("x"), 128).unwrap();
        let inter = sa.intersect(&sb);
        // identical key sets → intersection is (almost) the whole joint region
        assert!(inter.len() > 100, "len={}", inter.len());
        // payloads line up: y = 2x
        for (_, x, y) in inter {
            assert_eq!(y, 2.0 * x);
        }
    }

    #[test]
    fn correlation_estimate_positive_and_negative() {
        let n = 20_000;
        let a = keyed_table(n, |i| i as f64);
        let pos = keyed_table(n, |i| i as f64 * 3.0 + 1.0);
        let neg = keyed_table(n, |i| -(i as f64));
        let sa = CorrelationSketch::build(&a, "key", "x", 256).unwrap();
        let sp = CorrelationSketch::build(&pos, "key", "x", 256).unwrap();
        let sn = CorrelationSketch::build(&neg, "key", "x", 256).unwrap();
        assert!((sa.correlation(&sp).unwrap() - 1.0).abs() < 0.02);
        assert!((sa.correlation(&sn).unwrap() + 1.0).abs() < 0.02);
    }

    #[test]
    fn disjoint_keys_give_none() {
        let a = keyed_table(100, |i| i as f64);
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut b = Table::new(schema);
        for i in 0..100 {
            b.push_row(vec![Value::str(format!("z{i}")), Value::Float(0.0)])
                .unwrap();
        }
        let sa = CorrelationSketch::build(&a, "key", "x", 64).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 64).unwrap();
        assert!(sa.correlation(&sb).is_none());
    }

    #[test]
    fn null_payloads_are_excluded_from_the_mean() {
        // regression: nulls used to fold into the mean as 0.0, biasing
        // sparse payload columns toward zero (10.0 + null → mean 5.0)
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("k"), Value::Float(10.0)])
            .unwrap();
        t.push_row(vec![Value::str("k"), Value::Null]).unwrap();
        t.push_row(vec![Value::str("k"), Value::Float(30.0)])
            .unwrap();
        t.push_row(vec![Value::str("k"), Value::Null]).unwrap();
        let s = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries[0].2, 20.0, "mean over numeric rows only");
    }

    #[test]
    fn keys_without_numeric_payload_drop_only_when_payload_requested() {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        // neither key ever has a numeric payload (null / string)
        t.push_row(vec![Value::str("only_null"), Value::Null])
            .unwrap();
        t.push_row(vec![Value::str("text"), Value::str("n/a")])
            .unwrap();
        // with a payload column requested, neither key has a numeric
        // payload → both are dropped
        let with_payload = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert!(with_payload.is_empty());
        // without a payload column, both keys are retained
        let keys_only = KmvSketch::build(&t, "key", None, 8).unwrap();
        assert_eq!(keys_only.len(), 2);
    }

    #[test]
    fn join_estimate_unbiased_when_kth_minimums_differ() {
        // A's keys ⊂ B's keys but |B| = 10 × |A|, so the two sketches'
        // k-th minimum hashes differ by ~10×. The joint bound region
        // holds only ~k/10 of each sketch's entries; dividing the
        // intersection size by the full sketch lengths (the old
        // formula) underestimated the join size ~10×.
        let a = keyed_table(1_000, |i| i as f64);
        let b = keyed_table(10_000, |i| i as f64);
        let sa = CorrelationSketch::build(&a, "key", "x", 256).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 256).unwrap();
        let truth = 1_000.0; // |keys(A) ∩ keys(B)|
        let est = sa.join_key_estimate(&sb);
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est={est} truth={truth}"
        );
        // the old denominator put the estimate near truth/10; make the
        // bias regression explicit
        assert!(est > 0.5 * truth, "old formula gave ~{:.0}", truth / 10.0);
        // symmetric call agrees
        let est_rev = sb.join_key_estimate(&sa);
        assert!((est_rev - truth).abs() / truth < 0.25, "est_rev={est_rev}");
    }

    #[test]
    fn join_estimate_with_differing_sketch_sizes() {
        // different k on the two sides (64 vs 256) — entry counts and
        // bound regions differ; the estimator must still track truth
        let a = keyed_table(5_000, |i| i as f64);
        let b = keyed_table(5_000, |i| i as f64);
        let sa = CorrelationSketch::build(&a, "key", "x", 64).unwrap();
        let sb = CorrelationSketch::build(&b, "key", "x", 256).unwrap();
        let est = sa.join_key_estimate(&sb);
        assert!(
            (est - 5_000.0).abs() / 5_000.0 < 0.3,
            "est={est} truth=5000"
        );
    }

    #[test]
    fn repeated_keys_aggregate_payload() {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for v in [1.0, 3.0] {
            t.push_row(vec![Value::str("same"), Value::Float(v)])
                .unwrap();
        }
        let s = KmvSketch::build(&t, "key", Some("x"), 8).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries[0].2, 2.0); // mean of 1 and 3
    }
}
