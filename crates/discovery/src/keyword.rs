//! IR-style keyword search over table metadata and content (§3.1's first
//! discovery modality, à la Google Dataset Search).
//!
//! Each registered table becomes a "document" — its name, column names,
//! and (a sample of) its string cell values — scored against keyword
//! queries with BM25.

use std::collections::BTreeMap;

use rdi_table::Table;

/// Tokenize: lowercase, split on non-alphanumeric, drop empties.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

/// A BM25 keyword index over registered tables.
#[derive(Debug, Default)]
pub struct KeywordIndex {
    /// token → (doc id → term frequency); BTreeMaps so score accumulation
    /// visits documents in a deterministic order (lint rule R1).
    postings: BTreeMap<String, BTreeMap<usize, usize>>,
    /// per-document token counts
    doc_len: Vec<usize>,
    names: Vec<String>,
}

impl KeywordIndex {
    /// BM25 k1 parameter.
    const K1: f64 = 1.2;
    /// BM25 b parameter.
    const B: f64 = 0.75;

    /// Create an empty index.
    pub fn new() -> Self {
        KeywordIndex::default()
    }

    /// Register a table: its name, column names, and up to
    /// `sample_rows` rows of string-cell content become its document.
    pub fn insert(&mut self, name: impl Into<String>, table: &Table, sample_rows: usize) -> usize {
        let name = name.into();
        let mut tokens = tokenize(&name);
        for f in table.schema().fields() {
            tokens.extend(tokenize(&f.name));
        }
        for i in 0..table.num_rows().min(sample_rows) {
            for j in 0..table.num_columns() {
                let v = table.column_at(j).value(i);
                if let Some(s) = v.as_str() {
                    tokens.extend(tokenize(s));
                }
            }
        }
        let id = self.doc_len.len();
        self.doc_len.push(tokens.len());
        self.names.push(name);
        for t in tokens {
            *self.postings.entry(t).or_default().entry(id).or_insert(0) += 1;
        }
        id
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// True iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Name of a registered table.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Top-k tables for a keyword query, as `(id, BM25 score)` descending.
    pub fn search(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        let n = self.doc_len.len();
        if n == 0 {
            return Vec::new();
        }
        let avg_len: f64 = self.doc_len.iter().sum::<usize>() as f64 / n as f64;
        let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
        for term in tokenize(query) {
            let Some(docs) = self.postings.get(&term) else {
                continue;
            };
            let df = docs.len() as f64;
            let idf = ((n as f64 - df + 0.5) / (df + 0.5) + 1.0).ln();
            for (&doc, &tf) in docs {
                let tf = tf as f64;
                let dl = self.doc_len[doc] as f64;
                let norm = tf * (Self::K1 + 1.0)
                    / (tf + Self::K1 * (1.0 - Self::B + Self::B * dl / avg_len.max(1e-9)));
                *scores.entry(doc).or_insert(0.0) += idf * norm;
            }
        }
        let mut v: Vec<(usize, f64)> = scores.into_iter().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema, Value};

    fn table(cols: &[(&str, &[&str])]) -> Table {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, _)| Field::new(*n, DataType::Str))
                .collect(),
        );
        let rows = cols[0].1.len();
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.push_row(cols.iter().map(|(_, vs)| Value::str(vs[i])).collect())
                .unwrap();
        }
        t
    }

    fn demo_index() -> KeywordIndex {
        let mut idx = KeywordIndex::new();
        idx.insert(
            "chicago_hospitals",
            &table(&[
                ("hospital", &["Northwestern Memorial", "Rush Medical"]),
                ("neighborhood", &["Streeterville", "Near West Side"]),
            ]),
            10,
        );
        idx.insert(
            "breast_cancer_screening",
            &table(&[
                ("patient_race", &["white", "black"]),
                ("diagnosis", &["positive", "negative"]),
            ]),
            10,
        );
        idx.insert(
            "gene_expression",
            &table(&[
                ("gene", &["brca1", "tp53"]),
                ("tissue", &["breast", "lung"]),
            ]),
            10,
        );
        idx
    }

    #[test]
    fn tokenizer_splits_and_lowercases() {
        assert_eq!(
            tokenize("Breast-Cancer  Screening!"),
            vec!["breast", "cancer", "screening"]
        );
        assert!(tokenize("--- ").is_empty());
    }

    #[test]
    fn finds_by_table_name_and_columns() {
        let idx = demo_index();
        let hits = idx.search("cancer screening", 3);
        assert_eq!(idx.name(hits[0].0), "breast_cancer_screening");
    }

    #[test]
    fn finds_by_cell_content() {
        let idx = demo_index();
        let hits = idx.search("streeterville", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.name(hits[0].0), "chicago_hospitals");
    }

    #[test]
    fn shared_terms_rank_by_relevance() {
        let idx = demo_index();
        // "breast" appears in both screening (name) and gene table (cell)
        let hits = idx.search("breast diagnosis", 3);
        assert!(hits.len() >= 2);
        assert_eq!(idx.name(hits[0].0), "breast_cancer_screening");
    }

    #[test]
    fn unknown_terms_return_empty() {
        let idx = demo_index();
        assert!(idx.search("zebra quantum", 5).is_empty());
        assert!(KeywordIndex::new().search("anything", 5).is_empty());
    }
}
