//! LSH Ensemble: containment-threshold search (Zhu, Nargesian, Pu,
//! Miller; VLDB 2016).
//!
//! Joinability search asks for sets `X` with high **containment**
//! `C(Q, X) = |Q ∩ X| / |Q|`, not high Jaccard. Containment converts to
//! Jaccard through the sizes, `J = C·|Q| / (|Q| + |X| − C·|Q|)`, so one
//! global Jaccard threshold cannot serve candidates of wildly different
//! sizes. LSH Ensemble partitions the candidates by set size and gives
//! each partition its own banded index tuned with that partition's upper
//! size bound — the classic trick this module reproduces.

use crate::lsh::MinHashLsh;
use crate::minhash::MinHash;

/// One size partition.
#[derive(Debug)]
struct Partition {
    /// Upper bound (inclusive) on member set sizes.
    upper: usize,
    lsh: Option<MinHashLsh>,
    /// (global id, signature, size) for members, buffered until `build`.
    members: Vec<(usize, MinHash, usize)>,
}

/// An LSH Ensemble index over (signature, set-size) pairs.
#[derive(Debug)]
pub struct LshEnsemble {
    k: usize,
    threshold: f64,
    partitions: Vec<Partition>,
    built: bool,
}

impl LshEnsemble {
    /// Create an ensemble for signatures of length `k`, a containment
    /// threshold, and geometric size-partition boundaries up to
    /// `max_size`.
    pub fn new(k: usize, threshold: f64, num_partitions: usize, max_size: usize) -> Self {
        assert!(k > 0 && num_partitions > 0 && max_size > 0);
        assert!((0.0..=1.0).contains(&threshold));
        // geometric boundaries: max_size^(i/num_partitions)
        let mut partitions = Vec::with_capacity(num_partitions);
        for i in 1..=num_partitions {
            let upper = (max_size as f64)
                .powf(i as f64 / num_partitions as f64)
                .ceil() as usize;
            partitions.push(Partition {
                upper: upper.max(1),
                lsh: None,
                members: Vec::new(),
            });
        }
        LshEnsemble {
            k,
            threshold,
            partitions,
            built: false,
        }
    }

    /// Insert a candidate set's signature and its exact distinct size.
    pub fn insert(&mut self, id: usize, sig: MinHash, size: usize) {
        assert_eq!(sig.k(), self.k);
        assert!(!self.built, "insert before build");
        let p = self
            .partitions
            .iter_mut()
            .find(|p| size <= p.upper)
            // rdi-lint: allow(R5): caller-contract guard, same class as the asserts above — `new` documents partitions cover sizes up to max_size
            .unwrap_or_else(|| panic!("size {size} exceeds max partition"));
        p.members.push((id, sig, size));
    }

    /// Freeze the index: tune and populate each partition's banded LSH.
    ///
    /// `query_size_hint` sets the |Q| used to convert the containment
    /// threshold into each partition's Jaccard threshold.
    pub fn build(&mut self, query_size_hint: usize) {
        let q = query_size_hint.max(1) as f64;
        for p in &mut self.partitions {
            if p.members.is_empty() {
                continue;
            }
            let x = p.upper as f64;
            // containment → jaccard at the partition's upper size bound
            let j = (self.threshold * q) / (q + x - self.threshold * q);
            let mut lsh = MinHashLsh::tuned(self.k, j.clamp(0.01, 1.0));
            // Keep ids aligned: MinHashLsh assigns its own dense ids, so
            // record the mapping order.
            for (_, sig, _) in &p.members {
                lsh.insert(sig.clone());
            }
            p.lsh = Some(lsh);
        }
        self.built = true;
    }

    /// Candidate ids whose containment of the query likely exceeds the
    /// threshold. `query_size` is |Q| (distinct values).
    pub fn query(&self, sig: &MinHash, query_size: usize) -> Vec<usize> {
        assert!(self.built, "call build() first");
        let q = query_size.max(1) as f64;
        let mut out = Vec::new();
        for p in &self.partitions {
            let Some(lsh) = &p.lsh else { continue };
            let x = p.upper as f64;
            let j = (self.threshold * q) / (q + x - self.threshold * q);
            for local in lsh.query_filtered(sig, (j * 0.5).clamp(0.0, 1.0)) {
                out.push(p.members[local].0);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Estimated containment of the query in a candidate from their
    /// signatures and sizes: `Ĉ = Ĵ·(q + x)/(q·(1 + Ĵ))`.
    pub fn estimate_containment(
        sig_q: &MinHash,
        q_size: usize,
        sig_x: &MinHash,
        x_size: usize,
    ) -> f64 {
        let j = sig_q.jaccard(sig_x);
        if j == 0.0 {
            return 0.0;
        }
        let q = q_size.max(1) as f64;
        let x = x_size as f64;
        (j * (q + x) / (q * (1.0 + j))).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::Value;

    fn sig_of(range: std::ops::Range<usize>, k: usize) -> (MinHash, usize) {
        let vs: Vec<Value> = range.clone().map(|i| Value::str(format!("v{i}"))).collect();
        (MinHash::from_values(vs.iter(), k), range.len())
    }

    #[test]
    fn finds_high_containment_candidates_across_sizes() {
        let k = 128;
        let mut ens = LshEnsemble::new(k, 0.7, 4, 100_000);
        // candidate 0: small superset of the query (high containment)
        let (s0, n0) = sig_of(0..120, k);
        // candidate 1: huge set containing the query (high containment, low jaccard)
        let (s1, n1) = sig_of(0..20_000, k);
        // candidate 2: disjoint
        let (s2, n2) = sig_of(500_000..500_300, k);
        ens.insert(0, s0, n0);
        ens.insert(1, s1, n1);
        ens.insert(2, s2, n2);
        ens.build(100);
        let (q, qn) = sig_of(0..100, k);
        let hits = ens.query(&q, qn);
        assert!(hits.contains(&0), "small superset missed: {hits:?}");
        assert!(hits.contains(&1), "large superset missed: {hits:?}");
        assert!(!hits.contains(&2), "disjoint set returned: {hits:?}");
    }

    #[test]
    fn containment_estimate_tracks_truth() {
        let k = 256;
        let (q, qn) = sig_of(0..200, k);
        // candidate contains 150 of the 200 query values + 350 others
        let mut vals: Vec<Value> = (0..150).map(|i| Value::str(format!("v{i}"))).collect();
        vals.extend((1000..1350).map(|i| Value::str(format!("v{i}"))));
        let cx = MinHash::from_values(vals.iter(), k);
        let est = LshEnsemble::estimate_containment(&q, qn, &cx, vals.len());
        assert!((est - 0.75).abs() < 0.12, "est={est}");
    }

    #[test]
    fn empty_partitions_are_fine() {
        let k = 64;
        let mut ens = LshEnsemble::new(k, 0.5, 8, 1_000);
        let (s, n) = sig_of(0..10, k);
        ens.insert(42, s, n);
        ens.build(10);
        let (q, qn) = sig_of(0..10, k);
        assert_eq!(ens.query(&q, qn), vec![42]);
    }

    #[test]
    #[should_panic(expected = "build() first")]
    fn query_before_build_panics() {
        let ens = LshEnsemble::new(8, 0.5, 2, 100);
        let (q, qn) = sig_of(0..5, 8);
        ens.query(&q, qn);
    }
}
