//! Seeded 64-bit hashing primitives shared by all sketches.
//!
//! Sketch coordination (KMV, MinHash) requires that the *same* value hash
//! identically across tables and processes, so we use an explicit
//! splitmix64-based construction rather than `std`'s randomized hasher.

use rdi_table::Value;

/// splitmix64 finalizer — good avalanche, cheap, stable.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash raw bytes with a seed (FNV-1a folded through splitmix64).
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ splitmix64(seed);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

/// Hash a [`Value`] canonically: numerics through their `f64` bits (so
/// `Int(2)` and `Float(2.0)` collide, consistent with `Value::eq`),
/// strings through their bytes, nulls to a fixed tag.
pub fn hash_value(v: &Value, seed: u64) -> u64 {
    match v {
        Value::Null => splitmix64(seed ^ 0x6e75_6c6c),
        Value::Int(i) => hash_bytes(&(*i as f64).to_bits().to_le_bytes(), seed),
        Value::Float(f) => hash_bytes(&f.to_bits().to_le_bytes(), seed),
        Value::Bool(b) => hash_bytes(
            &(if *b { 1.0f64 } else { 0.0 }).to_bits().to_le_bytes(),
            seed,
        ),
        Value::Str(s) => hash_bytes(s.as_bytes(), seed),
    }
}

/// Map a hash to the unit interval `[0, 1)`.
pub fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_bytes(b"abc", 7), hash_bytes(b"abc", 7));
        assert_ne!(hash_bytes(b"abc", 7), hash_bytes(b"abc", 8));
        assert_ne!(hash_bytes(b"abc", 7), hash_bytes(b"abd", 7));
    }

    #[test]
    fn value_hash_consistent_with_eq() {
        assert_eq!(
            hash_value(&Value::Int(2), 3),
            hash_value(&Value::Float(2.0), 3)
        );
        assert_ne!(
            hash_value(&Value::str("2"), 3),
            hash_value(&Value::Int(2), 3)
        );
    }

    #[test]
    fn unit_mapping_in_range_and_spread() {
        let mut lo = 0;
        let mut hi = 0;
        for i in 0..1000u64 {
            let u = to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!((lo as i64 - hi as i64).abs() < 150, "lo={lo} hi={hi}");
    }

    #[test]
    fn avalanche_changes_many_bits() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        let diff = (a ^ b).count_ones();
        assert!(diff > 10, "diff={diff}");
    }
}
