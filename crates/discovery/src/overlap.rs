//! Exact set-overlap search (JOSIE-style top-k joinability).
//!
//! An inverted index from value → posting list of column ids answers
//! "which lake columns share the most values with my query column". This
//! is the exact counterpart the sketch-based searches are benchmarked
//! against (precision/recall and latency).

use std::collections::BTreeMap;

use rdi_table::{Table, Value};

/// Inverted index over registered columns' distinct value sets.
#[derive(Debug, Default)]
pub struct OverlapIndex {
    postings: BTreeMap<Value, Vec<usize>>,
    sizes: Vec<usize>,
    names: Vec<String>,
}

impl OverlapIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        OverlapIndex::default()
    }

    /// Register a column's distinct values; returns its id.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        table: &Table,
        column: &str,
    ) -> rdi_table::Result<usize> {
        let id = self.sizes.len();
        let distinct = table.distinct(column)?;
        self.sizes.push(distinct.len());
        self.names.push(name.into());
        for v in distinct {
            self.postings.entry(v).or_default().push(id);
        }
        Ok(id)
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Name of a registered column.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Distinct size of a registered column.
    pub fn size(&self, id: usize) -> usize {
        self.sizes[id]
    }

    /// Exact overlap |Q ∩ X| for every candidate with non-zero overlap,
    /// as `(id, overlap)` sorted by overlap descending (ties by id).
    pub fn overlaps(&self, table: &Table, column: &str) -> rdi_table::Result<Vec<(usize, usize)>> {
        let mut acc: BTreeMap<usize, usize> = BTreeMap::new();
        for v in table.distinct(column)? {
            if let Some(ids) = self.postings.get(&v) {
                for &id in ids {
                    *acc.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(usize, usize)> = acc.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(out)
    }

    /// Top-k candidates by exact containment `|Q ∩ X| / |Q|`, as
    /// `(id, containment)`.
    pub fn top_k_containment(
        &self,
        table: &Table,
        column: &str,
        k: usize,
    ) -> rdi_table::Result<Vec<(usize, f64)>> {
        let q = table.distinct(column)?.len().max(1) as f64;
        let mut v: Vec<(usize, f64)> = self
            .overlaps(table, column)?
            .into_iter()
            .map(|(id, o)| (id, o as f64 / q))
            .collect();
        v.truncate(k);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    fn col(vals: &[&str]) -> Table {
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]);
        let mut t = Table::new(schema);
        for v in vals {
            t.push_row(vec![Value::str(*v)]).unwrap();
        }
        t
    }

    #[test]
    fn overlap_counts_and_ranking() {
        let mut idx = OverlapIndex::new();
        idx.insert("a", &col(&["x", "y", "z"]), "c").unwrap();
        idx.insert("b", &col(&["x", "q"]), "c").unwrap();
        idx.insert("c", &col(&["q", "r"]), "c").unwrap();
        let q = col(&["x", "y", "w"]);
        let res = idx.overlaps(&q, "c").unwrap();
        assert_eq!(res, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn containment_normalizes_by_query() {
        let mut idx = OverlapIndex::new();
        idx.insert("a", &col(&["x", "y", "z", "w"]), "c").unwrap();
        let q = col(&["x", "y"]);
        let top = idx.top_k_containment(&q, "c", 5).unwrap();
        assert_eq!(top.len(), 1);
        assert!((top[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_in_inputs_do_not_inflate() {
        let mut idx = OverlapIndex::new();
        idx.insert("a", &col(&["x", "x", "y"]), "c").unwrap();
        let q = col(&["x", "x"]);
        let res = idx.overlaps(&q, "c").unwrap();
        assert_eq!(res, vec![(0, 1)]);
    }

    #[test]
    fn metadata_accessors() {
        let mut idx = OverlapIndex::new();
        let id = idx.insert("col_a", &col(&["x", "y"]), "c").unwrap();
        assert_eq!(idx.name(id), "col_a");
        assert_eq!(idx.size(id), 2);
        assert_eq!(idx.len(), 1);
    }
}
