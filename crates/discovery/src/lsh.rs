//! Banded MinHash-LSH index for Jaccard threshold queries.
//!
//! Signatures are split into `b` bands of `r` rows; two sets collide when
//! any band matches exactly, which happens with probability
//! `1 − (1 − J^r)^b` — an S-curve whose inflection is tuned to the query
//! threshold.

use std::collections::{BTreeMap, BTreeSet};

use rdi_par::{par_map, Threads};

use crate::hash::hash_bytes;
use crate::minhash::MinHash;

/// An LSH index over MinHash signatures.
#[derive(Debug, Clone)]
pub struct MinHashLsh {
    bands: usize,
    rows: usize,
    /// per-band bucket maps: band-hash → member ids
    tables: Vec<BTreeMap<u64, Vec<usize>>>,
    /// stored signatures for optional post-filtering
    signatures: Vec<MinHash>,
}

impl MinHashLsh {
    /// Create an index with `bands × rows` = signature length.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0);
        MinHashLsh {
            bands,
            rows,
            tables: vec![BTreeMap::new(); bands],
            signatures: Vec::new(),
        }
    }

    /// Choose `(bands, rows)` for a total signature length `k` whose
    /// S-curve inflection `(1/b)^(1/r)` is closest to `threshold`.
    pub fn tuned(k: usize, threshold: f64) -> Self {
        assert!(k > 0 && (0.0..=1.0).contains(&threshold));
        let mut best = (1, k, f64::INFINITY);
        for r in 1..=k {
            if !k.is_multiple_of(r) {
                continue;
            }
            let b = k / r;
            let inflection = (1.0 / b as f64).powf(1.0 / r as f64);
            let d = (inflection - threshold).abs();
            if d < best.2 {
                best = (b, r, d);
            }
        }
        MinHashLsh::new(best.0, best.1)
    }

    /// Required signature length.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True iff no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Insert a signature, returning its id.
    pub fn insert(&mut self, sig: MinHash) -> usize {
        assert_eq!(sig.k(), self.signature_len(), "signature length mismatch");
        let id = self.signatures.len();
        for (band, table) in self.tables.iter_mut().enumerate() {
            let h = band_hash(&sig, band, self.rows);
            table.entry(h).or_default().push(id);
        }
        self.signatures.push(sig);
        id
    }

    /// Insert many signatures at once, returning their ids in input
    /// order. Band hashes are computed in parallel on `threads`;
    /// bucket insertion then replays them in input order, so the index
    /// state is identical to repeated [`MinHashLsh::insert`] calls for
    /// any thread count.
    pub fn insert_batch(&mut self, sigs: Vec<MinHash>, threads: Threads) -> Vec<usize> {
        for sig in &sigs {
            assert_eq!(sig.k(), self.signature_len(), "signature length mismatch");
        }
        let rows = self.rows;
        let bands = self.bands;
        let band_hashes: Vec<Vec<u64>> = par_map(threads.min_len(8), &sigs, |sig| {
            (0..bands).map(|b| band_hash(sig, b, rows)).collect()
        });
        let mut ids = Vec::with_capacity(sigs.len());
        for (sig, hashes) in sigs.into_iter().zip(band_hashes) {
            let id = self.signatures.len();
            for (table, h) in self.tables.iter_mut().zip(hashes) {
                table.entry(h).or_default().push(id);
            }
            self.signatures.push(sig);
            ids.push(id);
        }
        ids
    }

    /// Ids of items colliding with the query in at least one band,
    /// sorted ascending.
    pub fn query(&self, sig: &MinHash) -> Vec<usize> {
        assert_eq!(sig.k(), self.signature_len(), "signature length mismatch");
        // every query probes one bucket per band
        rdi_obs::counter("discovery.lsh_probes").add(self.bands as u64);
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for (band, table) in self.tables.iter().enumerate() {
            let h = band_hash(sig, band, self.rows);
            if let Some(ids) = table.get(&h) {
                out.extend(ids.iter().copied());
            }
        }
        // BTreeSet iteration is already sorted ascending.
        out.into_iter().collect()
    }

    /// Query then drop candidates whose *estimated* Jaccard is below
    /// `threshold` (cheap post-filter on the stored signatures).
    pub fn query_filtered(&self, sig: &MinHash, threshold: f64) -> Vec<usize> {
        self.query(sig)
            .into_iter()
            .filter(|&id| self.signatures[id].jaccard(sig) >= threshold)
            .collect()
    }
}

fn band_hash(sig: &MinHash, band: usize, rows: usize) -> u64 {
    let slice = &sig.signature()[band * rows..(band + 1) * rows];
    let mut bytes = Vec::with_capacity(rows * 8);
    for v in slice {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    hash_bytes(&bytes, band as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::Value;

    fn sig(vals: std::ops::Range<usize>, k: usize) -> MinHash {
        let vs: Vec<Value> = vals.map(|i| Value::str(format!("v{i}"))).collect();
        MinHash::from_values(vs.iter(), k)
    }

    #[test]
    fn near_duplicates_collide() {
        let mut lsh = MinHashLsh::new(16, 4);
        let a = sig(0..100, 64);
        let b = sig(0..98, 64); // J ≈ 0.98
        let id = lsh.insert(a);
        let hits = lsh.query(&b);
        assert_eq!(hits, vec![id]);
    }

    #[test]
    fn dissimilar_items_rarely_collide() {
        let mut lsh = MinHashLsh::new(8, 8);
        for t in 0..50 {
            lsh.insert(sig(t * 1000..t * 1000 + 100, 64));
        }
        let q = sig(900_000..900_100, 64);
        assert!(lsh.query(&q).len() <= 2);
    }

    #[test]
    fn tuned_inflection_near_threshold() {
        let lsh = MinHashLsh::tuned(128, 0.5);
        let b = lsh.bands as f64;
        let r = lsh.rows as f64;
        let inflection = (1.0 / b).powf(1.0 / r);
        assert!((inflection - 0.5).abs() < 0.15, "inflection={inflection}");
        assert_eq!(lsh.signature_len(), 128);
    }

    #[test]
    fn query_filtered_prunes_false_positives() {
        let mut lsh = MinHashLsh::new(32, 2); // aggressive banding → FPs
        for t in 0..30 {
            lsh.insert(sig(t * 50..t * 50 + 60, 64)); // overlapping ranges
        }
        let q = sig(0..60, 64);
        let raw = lsh.query(&q);
        let filtered = lsh.query_filtered(&q, 0.8);
        assert!(filtered.len() <= raw.len());
        assert!(filtered.contains(&0));
    }

    #[test]
    fn recall_precision_tradeoff_with_bands() {
        // many bands/few rows = high recall; few bands/many rows = high precision
        let a = sig(0..100, 64);
        let b = sig(30..130, 64); // J ≈ 0.54
        let mut recall_oriented = MinHashLsh::new(32, 2);
        let mut precision_oriented = MinHashLsh::new(2, 32);
        recall_oriented.insert(a.clone());
        precision_oriented.insert(a);
        assert_eq!(
            recall_oriented.query(&b).len(),
            1,
            "should find moderate match"
        );
        assert_eq!(
            precision_oriented.query(&b).len(),
            0,
            "should reject moderate match"
        );
    }

    #[test]
    fn batch_insert_matches_sequential() {
        let sigs: Vec<MinHash> = (0..40).map(|t| sig(t * 50..t * 50 + 60, 64)).collect();
        let mut seq = MinHashLsh::new(16, 4);
        for s in &sigs {
            seq.insert(s.clone());
        }
        for threads in [1usize, 2, 8] {
            let mut batch = MinHashLsh::new(16, 4);
            let ids = batch.insert_batch(sigs.clone(), Threads::fixed(threads));
            assert_eq!(ids, (0..sigs.len()).collect::<Vec<usize>>());
            let q = sig(0..60, 64);
            assert_eq!(seq.query(&q), batch.query(&q), "threads={threads}");
            assert_eq!(seq.query_filtered(&q, 0.5), batch.query_filtered(&q, 0.5));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_signature_length_panics() {
        let mut lsh = MinHashLsh::new(4, 4);
        lsh.insert(sig(0..10, 8));
    }
}
