//! Unbiased feature discovery (tutorial §2.3 + §5).
//!
//! Given a query table with a join key, a prediction target, and a
//! sensitive attribute, search a lake of candidate tables for joinable
//! feature columns that are **informative** (high |corr(feature, target)|)
//! yet **unbiased** (low |corr(feature, sensitive)|). Correlations are
//! estimated from coordinated [`CorrelationSketch`]es, so no candidate is
//! ever fully joined during search.

use rdi_par::{par_map, Threads};
use rdi_table::Table;
use serde::{Deserialize, Serialize};

use crate::kmv::CorrelationSketch;

/// The discovery query.
#[derive(Debug)]
pub struct FeatureQuery<'a> {
    /// The query table.
    pub table: &'a Table,
    /// Join-key column.
    pub key: &'a str,
    /// Target (label) column — numeric or boolean.
    pub target: &'a str,
    /// Sensitive attribute column, numerically encoded (e.g. group index);
    /// correlation against it measures feature bias.
    pub sensitive: &'a str,
}

/// One scored candidate feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureCandidate {
    /// Candidate table name.
    pub table: String,
    /// Feature column name.
    pub column: String,
    /// Estimated |corr(feature, target)| over the join.
    pub informativeness: f64,
    /// Estimated |corr(feature, sensitive)| over the join.
    pub bias: f64,
    /// Estimated number of joinable keys.
    pub join_keys: f64,
}

impl FeatureCandidate {
    /// The selection score: informativeness − λ·bias (λ=1 by default in
    /// [`discover_features`]).
    pub fn score(&self, lambda: f64) -> f64 {
        self.informativeness - lambda * self.bias
    }
}

/// Sketch the query and all candidates and return scored features, best
/// score first. `candidates` supplies `(table name, table, key column,
/// feature column)` tuples; `k` is the sketch size; `min_join_keys` prunes
/// candidates whose estimated join is too small for a stable estimate.
pub fn discover_features(
    query: &FeatureQuery<'_>,
    candidates: &[(&str, &Table, &str, &str)],
    k: usize,
    min_join_keys: f64,
    lambda: f64,
) -> rdi_table::Result<Vec<FeatureCandidate>> {
    discover_features_with(query, candidates, k, min_join_keys, lambda, Threads::auto())
}

/// [`discover_features`] on an explicit thread configuration. Every
/// candidate is sketched and scored independently; results are
/// collected in candidate order before the final rank sort, so the
/// output is identical for any thread count.
pub fn discover_features_with(
    query: &FeatureQuery<'_>,
    candidates: &[(&str, &Table, &str, &str)],
    k: usize,
    min_join_keys: f64,
    lambda: f64,
    threads: Threads,
) -> rdi_table::Result<Vec<FeatureCandidate>> {
    let target_sketch = CorrelationSketch::build(query.table, query.key, query.target, k)?;
    let sensitive_sketch = CorrelationSketch::build(query.table, query.key, query.sensitive, k)?;
    let scored = par_map(
        threads.min_len(2),
        candidates,
        |(name, table, key, feature)| -> rdi_table::Result<Option<FeatureCandidate>> {
            let fs = CorrelationSketch::build(table, key, feature, k)?;
            let join_keys = fs.join_key_estimate(&target_sketch);
            if join_keys < min_join_keys {
                return Ok(None);
            }
            let (Some(it), Some(bs)) = (
                fs.correlation(&target_sketch),
                fs.correlation(&sensitive_sketch),
            ) else {
                return Ok(None);
            };
            Ok(Some(FeatureCandidate {
                table: name.to_string(),
                column: feature.to_string(),
                informativeness: it.abs(),
                bias: bs.abs(),
                join_keys,
            }))
        },
    );
    let mut out = Vec::new();
    for c in scored {
        if let Some(c) = c? {
            out.push(c);
        }
    }
    out.sort_by(|a, b| {
        b.score(lambda)
            .total_cmp(&a.score(lambda))
            .then(a.table.cmp(&b.table))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema, Value};

    /// Query table: key, target t(i), sensitive s(i).
    fn query_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("y", DataType::Float),
            Field::new("s", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            // target: alternating-ish signal; sensitive: block structure
            let y = ((i * 7919) % 1000) as f64 / 1000.0;
            let s = if i % 2 == 0 { 1.0 } else { 0.0 };
            t.push_row(vec![
                Value::str(format!("k{i}")),
                Value::Float(y),
                Value::Float(s),
            ])
            .unwrap();
        }
        t
    }

    fn cand(n: usize, f: impl Fn(usize) -> f64) -> Table {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("f", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::str(format!("k{i}")), Value::Float(f(i))])
                .unwrap();
        }
        t
    }

    #[test]
    fn ranks_informative_unbiased_feature_first() {
        let n = 8_000;
        let q = query_table(n);
        let query = FeatureQuery {
            table: &q,
            key: "key",
            target: "y",
            sensitive: "s",
        };
        // good: tracks target, ignores sensitive
        let good = cand(n, |i| ((i * 7919) % 1000) as f64 / 1000.0 * 2.0 + 0.3);
        // biased: tracks the sensitive attribute exactly
        let biased = cand(n, |i| if i % 2 == 0 { 5.0 } else { -5.0 });
        // noise: unrelated to both
        let noise = cand(n, |i| ((i * 104729) % 997) as f64);
        let res = discover_features(
            &query,
            &[
                ("good", &good, "key", "f"),
                ("biased", &biased, "key", "f"),
                ("noise", &noise, "key", "f"),
            ],
            256,
            10.0,
            1.0,
        )
        .unwrap();
        assert_eq!(res[0].table, "good");
        assert!(res[0].informativeness > 0.9);
        assert!(res[0].bias < 0.2);
        let biased_entry = res.iter().find(|c| c.table == "biased").unwrap();
        assert!(biased_entry.bias > 0.8, "bias={}", biased_entry.bias);
    }

    #[test]
    fn unjoinable_candidates_are_pruned() {
        let q = query_table(2_000);
        let query = FeatureQuery {
            table: &q,
            key: "key",
            target: "y",
            sensitive: "s",
        };
        let schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("f", DataType::Float),
        ]);
        let mut alien = Table::new(schema);
        for i in 0..2_000 {
            alien
                .push_row(vec![Value::str(format!("z{i}")), Value::Float(i as f64)])
                .unwrap();
        }
        let res =
            discover_features(&query, &[("alien", &alien, "key", "f")], 128, 10.0, 1.0).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn lambda_trades_bias_for_informativeness() {
        let c = FeatureCandidate {
            table: "t".into(),
            column: "c".into(),
            informativeness: 0.6,
            bias: 0.5,
            join_keys: 100.0,
        };
        assert!(c.score(0.0) > c.score(2.0));
        assert!((c.score(1.0) - 0.1).abs() < 1e-12);
    }
}
