//! Schema matching and table alignment.
//!
//! Tailoring, union, and cleaning all require sources to share one
//! schema, but real sources name the same attribute differently
//! (`race` vs `patient_race`). This module scores candidate column
//! correspondences by combining **name similarity** (character-bigram
//! Jaccard) with **instance similarity** (MinHash Jaccard of value sets),
//! picks a greedy one-to-one matching, and can then *align* a source
//! table to a target schema so downstream code sees uniform columns —
//! the classic instance-based schema matching recipe, scoped to what the
//! RDI pipeline needs.

use rdi_table::{Column, Schema, Table, TableError};
use serde::{Deserialize, Serialize};

use crate::minhash::MinHash;

/// One proposed column correspondence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMatch {
    /// Column in the target (query) schema.
    pub target: String,
    /// Matching column in the source table.
    pub source: String,
    /// Combined score in `[0, 1]`.
    pub score: f64,
    /// Name-similarity component.
    pub name_score: f64,
    /// Value-overlap component.
    pub value_score: f64,
}

/// Character-bigram Jaccard of two (lowercased) identifiers.
fn name_similarity(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::BTreeSet<(char, char)> {
        let cs: Vec<char> = s.to_lowercase().chars().collect();
        cs.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return if a.eq_ignore_ascii_case(b) { 1.0 } else { 0.0 };
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Match the columns of `source` against `target`'s schema.
///
/// `name_weight ∈ [0, 1]` balances name vs instance evidence (0.5 is a
/// good default); `k` is the MinHash size for instance similarity.
/// Greedy one-to-one: highest scores first, each column used once, pairs
/// scoring below `min_score` dropped. Types must be compatible (equal, or
/// Int/Float interchangeable).
pub fn match_schemas(
    target: &Table,
    source: &Table,
    name_weight: f64,
    k: usize,
    min_score: f64,
) -> rdi_table::Result<Vec<ColumnMatch>> {
    assert!((0.0..=1.0).contains(&name_weight));
    let compatible = |a: rdi_table::DataType, b: rdi_table::DataType| -> bool {
        use rdi_table::DataType::*;
        a == b || matches!((a, b), (Int, Float) | (Float, Int))
    };
    // sketch every column once
    let sketch = |t: &Table, name: &str| MinHash::from_column(t, name, k);
    let mut pairs: Vec<ColumnMatch> = Vec::new();
    for tf in target.schema().fields() {
        let tsig = sketch(target, &tf.name)?;
        for sf in source.schema().fields() {
            if !compatible(tf.dtype, sf.dtype) {
                continue;
            }
            let ssig = sketch(source, &sf.name)?;
            let name_score = name_similarity(&tf.name, &sf.name);
            let value_score = tsig.jaccard(&ssig);
            let score = name_weight * name_score + (1.0 - name_weight) * value_score;
            if score >= min_score {
                pairs.push(ColumnMatch {
                    target: tf.name.clone(),
                    source: sf.name.clone(),
                    score,
                    name_score,
                    value_score,
                });
            }
        }
    }
    pairs.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.target.cmp(&b.target))
            .then(a.source.cmp(&b.source))
    });
    let mut used_t = std::collections::BTreeSet::new();
    let mut used_s = std::collections::BTreeSet::new();
    Ok(pairs
        .into_iter()
        .filter(|m| used_t.insert(m.target.clone()) && used_s.insert(m.source.clone()))
        .collect())
}

/// Project and rename `source` onto `target_schema` using a matching:
/// every target column must be matched; source values are carried over
/// (Int→Float widened). The result has exactly the target schema, so it
/// can be appended to / tailored with the target's data.
pub fn align_table(
    source: &Table,
    target_schema: &Schema,
    matching: &[ColumnMatch],
) -> rdi_table::Result<Table> {
    let mut columns = Vec::with_capacity(target_schema.len());
    for tf in target_schema.fields() {
        let m = matching
            .iter()
            .find(|m| m.target == tf.name)
            .ok_or_else(|| {
                TableError::SchemaMismatch(format!("no source column matched target `{}`", tf.name))
            })?;
        let src = source.column(&m.source)?;
        // copy through the dynamic interface so Int→Float widening applies
        let mut col = Column::with_capacity(tf.dtype, source.num_rows());
        for i in 0..source.num_rows() {
            col.push(src.value(i), &tf.name)?;
        }
        columns.push(col);
    }
    Table::from_columns(target_schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Value};

    fn hospital_a() -> Table {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("age", DataType::Int),
            Field::new("score", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (r, a, s) in [("white", 30, 0.5), ("black", 40, 0.8), ("asian", 50, 0.2)] {
            t.push_row(vec![Value::str(r), Value::Int(a), Value::Float(s)])
                .unwrap();
        }
        t
    }

    /// Same data, different column names and order, age as Float.
    fn hospital_b() -> Table {
        let schema = Schema::new(vec![
            Field::new("risk_score", DataType::Float),
            Field::new("patient_race", DataType::Str),
            Field::new("patient_age", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (s, r, a) in [(0.9, "white", 25.0), (0.1, "black", 61.0)] {
            t.push_row(vec![Value::Float(s), Value::str(r), Value::Float(a)])
                .unwrap();
        }
        t
    }

    #[test]
    fn matches_renamed_columns() {
        let a = hospital_a();
        let b = hospital_b();
        let m = match_schemas(&a, &b, 0.5, 64, 0.1).unwrap();
        let find = |t: &str| m.iter().find(|x| x.target == t).map(|x| x.source.clone());
        assert_eq!(find("race").as_deref(), Some("patient_race"));
        assert_eq!(find("age").as_deref(), Some("patient_age"));
        assert_eq!(find("score").as_deref(), Some("risk_score"));
    }

    #[test]
    fn value_overlap_breaks_name_ties() {
        // two source columns with similar names; only one shares values
        let tschema = Schema::new(vec![Field::new("city", DataType::Str)]);
        let mut target = Table::new(tschema);
        for c in ["chicago", "detroit", "boston"] {
            target.push_row(vec![Value::str(c)]).unwrap();
        }
        let sschema = Schema::new(vec![
            Field::new("city_a", DataType::Str),
            Field::new("city_b", DataType::Str),
        ]);
        let mut source = Table::new(sschema);
        for (x, y) in [("chicago", "tokyo"), ("boston", "osaka")] {
            source.push_row(vec![Value::str(x), Value::str(y)]).unwrap();
        }
        let m = match_schemas(&target, &source, 0.3, 64, 0.0).unwrap();
        assert_eq!(m[0].target, "city");
        assert_eq!(m[0].source, "city_a");
    }

    #[test]
    fn incompatible_types_never_match() {
        let tschema = Schema::new(vec![Field::new("x", DataType::Str)]);
        let mut target = Table::new(tschema);
        target.push_row(vec![Value::str("1")]).unwrap();
        let sschema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut source = Table::new(sschema);
        source.push_row(vec![Value::Int(1)]).unwrap();
        let m = match_schemas(&target, &source, 0.5, 16, 0.0).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn align_produces_target_schema_with_widening() {
        let a = hospital_a();
        let b = hospital_b();
        let m = match_schemas(&a, &b, 0.5, 64, 0.1).unwrap();
        // target wants age as Int but source has Float — make the target
        // schema Float-typed for age via a compatible variant:
        let target_schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("age", DataType::Float),
            Field::new("score", DataType::Float),
        ]);
        let aligned = align_table(&b, &target_schema, &m).unwrap();
        assert_eq!(aligned.schema(), &target_schema);
        assert_eq!(aligned.num_rows(), 2);
        assert_eq!(aligned.value(0, "race").unwrap(), Value::str("white"));
        assert_eq!(aligned.value(1, "age").unwrap(), Value::Float(61.0));
        // aligned source can now be appended to (a float-age version of) the target
    }

    #[test]
    fn align_requires_full_matching() {
        let a = hospital_a();
        let b = hospital_b();
        let m = match_schemas(&a, &b, 0.5, 64, 0.95).unwrap(); // too strict
        assert!(align_table(&b, a.schema(), &m).is_err());
    }

    #[test]
    fn name_similarity_behaviour() {
        assert!(name_similarity("race", "patient_race") > 0.2);
        assert!(name_similarity("age", "AGE") > 0.99);
        assert!(name_similarity("xy", "zq") < 0.01);
    }
}
