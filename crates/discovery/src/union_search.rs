//! Table union search (Nargesian, Zhu, Pu, Miller; VLDB 2018 — simplified).
//!
//! Two tables are *unionable* when their columns can be matched so that
//! matched columns draw from the same value domain. We score attribute
//! unionability by (MinHash-estimated) Jaccard of value sets, build the
//! best greedy column matching, and define table unionability as the mean
//! matched-column score over the query's columns.

use rdi_obs::ProvenanceEvent;
use rdi_par::{par_map, Threads};
use rdi_policy::{Candidate, PolicyId, PolicyParams, RankByScore, Score, SelectionPolicy};
use rdi_table::Table;

use crate::minhash::MinHash;

/// Rank scored `(name, score)` candidates through the workspace policy
/// engine and truncate to `k`, returning the ranking plus the
/// `PolicyDecision` audit event (already counted, built *before* the
/// ranking is returned to the caller).
///
/// Under the default params this is bitwise-identical to the historic
/// inline sort — score descending, name ascending — because
/// [`RankByScore`]'s default tie-break chain is exactly that rule.
/// `rdi-serve`'s execute phase reuses this for warm-path rankings so
/// the cold and warm paths share one decision site per [`PolicyId`].
pub fn rank_scored(
    id: PolicyId,
    scored: &[(String, f64)],
    k: usize,
    params: &PolicyParams,
) -> (Vec<(String, f64)>, ProvenanceEvent) {
    let candidates: Vec<Candidate> = scored
        .iter()
        .map(|(name, s)| Candidate::new(name.clone(), Score::F64(*s)))
        .collect();
    let decision = RankByScore::new(id).choose(&candidates, params);
    let event = rdi_obs::policy_decision_event(&decision.rationale(&candidates, params));
    let ranked = decision
        .ranking
        .iter()
        .take(k)
        .map(|&i| scored[i].clone())
        .collect();
    (ranked, event)
}

/// Signature set for one table: one MinHash per column.
#[derive(Debug, Clone)]
pub struct TableSignature {
    /// Table name.
    pub name: String,
    /// (column name, signature) pairs.
    pub columns: Vec<(String, MinHash)>,
}

impl TableSignature {
    /// Sketch every column of a table, using [`Threads::auto`] workers.
    pub fn build(name: impl Into<String>, table: &Table, k: usize) -> rdi_table::Result<Self> {
        TableSignature::build_with(name, table, k, Threads::auto())
    }

    /// Sketch every column of a table on an explicit thread
    /// configuration. Columns are sketched independently and collected
    /// in schema order, so the result is identical for any thread
    /// count.
    pub fn build_with(
        name: impl Into<String>,
        table: &Table,
        k: usize,
        threads: Threads,
    ) -> rdi_table::Result<Self> {
        let fields = table.schema().fields();
        let columns = par_map(threads.min_len(2), fields, |f| {
            MinHash::from_column(table, &f.name, k).map(|m| (f.name.clone(), m))
        })
        .into_iter()
        .collect::<rdi_table::Result<Vec<_>>>()?;
        // one increment per call, sized by the work — schedule-independent
        rdi_obs::counter("discovery.sketches_built").add(columns.len() as u64);
        Ok(TableSignature {
            name: name.into(),
            columns,
        })
    }
}

/// Greedy best column matching between two signatures, as
/// `(query column index, candidate column index, score)` triples (each
/// column used at most once, highest scores first). This is the
/// allocation-free core of [`column_matching`]: no column names are
/// cloned, so scoring loops can run over indices alone.
pub fn column_matching_indices(q: &TableSignature, x: &TableSignature) -> Vec<(usize, usize, f64)> {
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (i, (_, qs)) in q.columns.iter().enumerate() {
        for (j, (_, xs)) in x.columns.iter().enumerate() {
            if qs.k() == xs.k() {
                pairs.push((i, j, qs.jaccard(xs)));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut used_q = vec![false; q.columns.len()];
    let mut used_x = vec![false; x.columns.len()];
    let mut out = Vec::new();
    for (i, j, s) in pairs {
        if !used_q[i] && !used_x[j] && s > 0.0 {
            used_q[i] = true;
            used_x[j] = true;
            out.push((i, j, s));
        }
    }
    out
}

/// Greedy best column matching between two signatures; returns
/// `(query column, candidate column, score)` triples (each column used at
/// most once, highest scores first).
pub fn column_matching(q: &TableSignature, x: &TableSignature) -> Vec<(String, String, f64)> {
    column_matching_indices(q, x)
        .into_iter()
        .map(|(i, j, s)| (q.columns[i].0.clone(), x.columns[j].0.clone(), s))
        .collect()
}

/// Table unionability: mean matched score over the query's columns
/// (unmatched query columns contribute 0).
pub fn table_unionability(q: &TableSignature, x: &TableSignature) -> f64 {
    if q.columns.is_empty() {
        return 0.0;
    }
    let matched = column_matching_indices(q, x);
    matched.iter().map(|(_, _, s)| s).sum::<f64>() / q.columns.len() as f64
}

/// A ranked union-search index over table signatures.
#[derive(Debug, Default)]
pub struct UnionSearchIndex {
    tables: Vec<TableSignature>,
}

impl UnionSearchIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        UnionSearchIndex::default()
    }

    /// Register a table signature.
    pub fn insert(&mut self, sig: TableSignature) {
        self.tables.push(sig);
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Top-k unionable tables for a query, as `(name, score)` descending.
    pub fn top_k(&self, query: &TableSignature, k: usize) -> Vec<(String, f64)> {
        self.top_k_with(query, k, Threads::auto())
    }

    /// [`UnionSearchIndex::top_k`] on an explicit thread
    /// configuration. Candidates are scored independently and the final
    /// ranking is chosen by the `discovery.union_rank` policy (default
    /// params: score desc, name asc), so the result is identical for
    /// any thread count.
    pub fn top_k_with(
        &self,
        query: &TableSignature,
        k: usize,
        threads: Threads,
    ) -> Vec<(String, f64)> {
        self.top_k_explained(query, k, threads, &PolicyParams::new())
            .0
    }

    /// [`UnionSearchIndex::top_k_with`] plus the `PolicyDecision` audit
    /// event explaining the ranking. Callers with a provenance stream
    /// (e.g. `rdi-serve` sessions) attach the event; one-shot callers
    /// may drop it — the `policy.*` counters are recorded either way.
    pub fn top_k_explained(
        &self,
        query: &TableSignature,
        k: usize,
        threads: Threads,
        params: &PolicyParams,
    ) -> (Vec<(String, f64)>, ProvenanceEvent) {
        rdi_obs::counter("discovery.candidates_scored").add(self.tables.len() as u64);
        let scored: Vec<(String, f64)> = par_map(threads.min_len(4), &self.tables, |t| {
            (t.name.clone(), table_unionability(query, t))
        });
        rank_scored(PolicyId::UNION_RANK, &scored, k, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema, Value};

    fn table(cols: &[(&str, &[&str])]) -> Table {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, _)| Field::new(*n, DataType::Str))
                .collect(),
        );
        let n = cols[0].1.len();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(cols.iter().map(|(_, vs)| Value::str(vs[i])).collect())
                .unwrap();
        }
        t
    }

    fn cities() -> Table {
        table(&[
            ("city", &["chicago", "detroit", "nyc", "boston"]),
            ("state", &["il", "mi", "ny", "ma"]),
        ])
    }

    #[test]
    fn identical_tables_score_one() {
        let q = TableSignature::build("q", &cities(), 64).unwrap();
        let x = TableSignature::build("x", &cities(), 64).unwrap();
        assert!((table_unionability(&q, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_pairs_same_domain_columns() {
        let q = TableSignature::build("q", &cities(), 64).unwrap();
        // same domains, different column order and names
        let other = table(&[
            ("st", &["il", "mi", "ny", "ma"]),
            ("town", &["chicago", "detroit", "nyc", "boston"]),
        ]);
        let x = TableSignature::build("x", &other, 64).unwrap();
        let m = column_matching(&q, &x);
        assert_eq!(m.len(), 2);
        let city_match = m.iter().find(|(a, _, _)| a == "city").unwrap();
        assert_eq!(city_match.1, "town");
    }

    #[test]
    fn unrelated_tables_score_near_zero() {
        let q = TableSignature::build("q", &cities(), 128).unwrap();
        let other = table(&[
            ("gene", &["brca1", "tp53", "egfr", "kras"]),
            ("chrom", &["17", "17b", "7", "12"]),
        ]);
        let x = TableSignature::build("x", &other, 128).unwrap();
        assert!(table_unionability(&q, &x) < 0.05);
    }

    #[test]
    fn index_ranks_by_unionability() {
        let mut idx = UnionSearchIndex::new();
        idx.insert(TableSignature::build("twin", &cities(), 64).unwrap());
        let partial = table(&[
            ("city", &["chicago", "detroit", "nyc", "boston"]),
            ("mayor", &["a", "b", "c", "d"]),
        ]);
        idx.insert(TableSignature::build("partial", &partial, 64).unwrap());
        let unrelated = table(&[("gene", &["brca1", "tp53", "egfr", "kras"])]);
        idx.insert(TableSignature::build("unrelated", &unrelated, 64).unwrap());

        let q = TableSignature::build("q", &cities(), 64).unwrap();
        let top = idx.top_k(&q, 3);
        assert_eq!(top[0].0, "twin");
        assert_eq!(top[1].0, "partial");
        assert!(top[0].1 > top[1].1 && top[1].1 > top[2].1);
    }
}
