//! Property tests: sketch estimates track exact set statistics on random
//! inputs.

use proptest::prelude::*;
use rdi_discovery::{KmvSketch, MinHash};
use rdi_table::{DataType, Field, Schema, Table, Value};

fn set_table(ids: &[u16]) -> Table {
    let schema = Schema::new(vec![Field::new("v", DataType::Str)]);
    let mut t = Table::new(schema);
    for &i in ids {
        t.push_row(vec![Value::str(format!("x{i}"))]).unwrap();
    }
    t
}

fn exact_jaccard(a: &[u16], b: &[u16]) -> f64 {
    let sa: std::collections::HashSet<u16> = a.iter().copied().collect();
    let sb: std::collections::HashSet<u16> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / (sa.len() + sb.len() - inter) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MinHash estimate within a Chernoff-ish band of true Jaccard.
    #[test]
    fn minhash_tracks_exact_jaccard(
        a in prop::collection::vec(0u16..300, 1..150),
        b in prop::collection::vec(0u16..300, 1..150))
    {
        let ta = set_table(&a);
        let tb = set_table(&b);
        let k = 512;
        let ma = MinHash::from_column(&ta, "v", k).unwrap();
        let mb = MinHash::from_column(&tb, "v", k).unwrap();
        let est = ma.jaccard(&mb);
        let truth = exact_jaccard(&a, &b);
        // se = sqrt(J(1-J)/k) ≤ 0.5/sqrt(k) ≈ 0.022; allow 6σ
        prop_assert!((est - truth).abs() < 0.14, "est={est} truth={truth}");
    }

    /// Identical multisets always sketch identically (duplicates ignored).
    #[test]
    fn minhash_is_multiset_invariant(a in prop::collection::vec(0u16..50, 1..60)) {
        let mut doubled = a.clone();
        doubled.extend_from_slice(&a);
        let ma = MinHash::from_column(&set_table(&a), "v", 64).unwrap();
        let md = MinHash::from_column(&set_table(&doubled), "v", 64).unwrap();
        prop_assert_eq!(ma.jaccard(&md), 1.0);
    }

    /// KMV distinct estimate: exact below k, within 3·(d/√k) above.
    #[test]
    fn kmv_distinct_estimate_is_sane(ids in prop::collection::vec(0u16..2000, 1..400)) {
        let t = set_table(&ids);
        let k = 128;
        let s = KmvSketch::build(&t, "v", None, k).unwrap();
        let truth = ids.iter().collect::<std::collections::HashSet<_>>().len() as f64;
        let est = s.distinct_estimate();
        if truth < k as f64 {
            // sketch not full → count is exact
            prop_assert_eq!(est, truth);
        } else {
            // full sketch → (k−1)/u_k estimator with ~truth/√k std error
            let band = 4.0 * truth / (k as f64).sqrt();
            prop_assert!((est - truth).abs() < band, "est={est} truth={truth}");
        }
    }
}
