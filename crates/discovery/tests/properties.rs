//! Property tests: sketch estimates track exact set statistics on random
//! inputs.

use proptest::prelude::*;
use rdi_discovery::{KmvSketch, MinHash, TableSignature, UnionSearchIndex};
use rdi_par::Threads;
use rdi_table::{DataType, Field, Schema, Table, Value};

fn set_table(ids: &[u16]) -> Table {
    let schema = Schema::new(vec![Field::new("v", DataType::Str)]);
    let mut t = Table::new(schema);
    for &i in ids {
        t.push_row(vec![Value::str(format!("x{i}"))]).unwrap();
    }
    t
}

/// Random multi-column string table (1–4 columns, 1–40 rows).
fn arb_multicol_table() -> impl Strategy<Value = Table> {
    (1usize..=4).prop_flat_map(|d| {
        let row = prop::collection::vec(0u16..150, d);
        prop::collection::vec(row, 1..40).prop_map(move |rows| {
            let fields = (0..d)
                .map(|i| Field::new(format!("c{i}"), DataType::Str))
                .collect();
            let mut t = Table::new(Schema::new(fields));
            for r in rows {
                t.push_row(r.into_iter().map(|v| Value::str(format!("x{v}"))).collect())
                    .unwrap();
            }
            t
        })
    })
}

fn exact_jaccard(a: &[u16], b: &[u16]) -> f64 {
    let sa: std::collections::HashSet<u16> = a.iter().copied().collect();
    let sb: std::collections::HashSet<u16> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / (sa.len() + sb.len() - inter) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MinHash estimate within a Chernoff-ish band of true Jaccard.
    #[test]
    fn minhash_tracks_exact_jaccard(
        a in prop::collection::vec(0u16..300, 1..150),
        b in prop::collection::vec(0u16..300, 1..150))
    {
        let ta = set_table(&a);
        let tb = set_table(&b);
        let k = 512;
        let ma = MinHash::from_column(&ta, "v", k).unwrap();
        let mb = MinHash::from_column(&tb, "v", k).unwrap();
        let est = ma.jaccard(&mb);
        let truth = exact_jaccard(&a, &b);
        // se = sqrt(J(1-J)/k) ≤ 0.5/sqrt(k) ≈ 0.022; allow 6σ
        prop_assert!((est - truth).abs() < 0.14, "est={est} truth={truth}");
    }

    /// Identical multisets always sketch identically (duplicates ignored).
    #[test]
    fn minhash_is_multiset_invariant(a in prop::collection::vec(0u16..50, 1..60)) {
        let mut doubled = a.clone();
        doubled.extend_from_slice(&a);
        let ma = MinHash::from_column(&set_table(&a), "v", 64).unwrap();
        let md = MinHash::from_column(&set_table(&doubled), "v", 64).unwrap();
        prop_assert_eq!(ma.jaccard(&md), 1.0);
    }

    /// Parallel column sketching and union search are byte-identical to
    /// their single-thread runs for every thread count.
    #[test]
    fn par_sketching_and_search_are_thread_invariant(
        tables in prop::collection::vec(arb_multicol_table(), 2..5))
    {
        let k = 64;
        let serial: Vec<TableSignature> = tables
            .iter()
            .enumerate()
            .map(|(i, t)| TableSignature::build_with(format!("t{i}"), t, k, Threads::serial()).unwrap())
            .collect();
        for threads in [2usize, 8] {
            for (i, t) in tables.iter().enumerate() {
                let sig =
                    TableSignature::build_with(format!("t{i}"), t, k, Threads::fixed(threads)).unwrap();
                prop_assert_eq!(&sig.columns, &serial[i].columns, "threads={}", threads);
            }
        }
        let mut index = UnionSearchIndex::new();
        for s in serial.iter().skip(1) {
            index.insert(s.clone());
        }
        let base = index.top_k_with(&serial[0], 3, Threads::serial());
        for threads in [2usize, 8] {
            let got = index.top_k_with(&serial[0], 3, Threads::fixed(threads));
            prop_assert_eq!(&got, &base, "threads={}", threads);
        }
    }

    /// KMV distinct estimate: exact below k, within 3·(d/√k) above.
    #[test]
    fn kmv_distinct_estimate_is_sane(ids in prop::collection::vec(0u16..2000, 1..400)) {
        let t = set_table(&ids);
        let k = 128;
        let s = KmvSketch::build(&t, "v", None, k).unwrap();
        let truth = ids.iter().collect::<std::collections::HashSet<_>>().len() as f64;
        let est = s.distinct_estimate();
        if truth < k as f64 {
            // sketch not full → count is exact
            prop_assert_eq!(est, truth);
        } else {
            // full sketch → (k−1)/u_k estimator with ~truth/√k std error
            let band = 4.0 * truth / (k as f64).sqrt();
            prop_assert!((est - truth).abs() < band, "est={est} truth={truth}");
        }
    }
}
