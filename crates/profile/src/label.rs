//! Nutritional labels (MithraLabel style).

use rdi_coverage::CoverageAnalyzer;
use rdi_fairness::association::{entropy, table_association};
use rdi_table::{GroupSpec, Role, Table};
use serde::{Deserialize, Serialize};

use crate::fd::fd_violation_rate;
use crate::stats::{profile_table, ColumnProfile};

/// Knobs for label generation.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Coverage threshold τ for the MUP widget.
    pub coverage_threshold: usize,
    /// Association above which a feature is flagged as *biased* (against a
    /// sensitive attribute).
    pub bias_flag: f64,
    /// FD violation rate below which `sensitive → target` is flagged.
    pub fd_flag: f64,
    /// Lift above which a sensitive→target association rule is listed.
    pub rule_lift: f64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            coverage_threshold: 10,
            bias_flag: 0.5,
            fd_flag: 0.05,
            rule_lift: 1.3,
        }
    }
}

/// A dataset nutritional label: the §2 requirements, measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NutritionalLabel {
    /// Rows in the data set.
    pub num_rows: usize,
    /// Per-column profiles.
    pub columns: Vec<ColumnProfile>,
    /// Group fractions per sensitive attribute combination.
    pub group_fractions: Vec<(String, f64)>,
    /// Max − min group fraction (0 = perfect demographic parity of
    /// representation).
    pub representation_disparity: f64,
    /// Normalized entropy of the group distribution (1 = perfectly
    /// diverse).
    pub diversity: f64,
    /// Maximal uncovered patterns at the configured threshold, rendered.
    pub uncovered_patterns: Vec<String>,
    /// Feature associations: (feature, |assoc with target|, max |assoc
    /// with a sensitive attribute|).
    pub feature_associations: Vec<(String, f64, f64)>,
    /// FD violation rate of `sensitive attrs → target` (low = target
    /// nearly determined by group).
    pub sensitive_target_fd_violation: Option<f64>,
    /// High-lift sensitive→target association rules (rendered).
    pub bias_rules: Vec<String>,
    /// Per-attribute diversity over the demographic groups: for each
    /// non-sensitive categorical attribute, the normalized entropy of
    /// group membership *within* its value slices, averaged over values
    /// (1 = every value slice is demographically balanced). MithraLabel's
    /// "most diverse attributes" widget, sorted most diverse first.
    pub attribute_diversity: Vec<(String, f64)>,
    /// Differential missingness: (column, group, group null fraction,
    /// overall null fraction) for every column whose missingness in some
    /// group is at least double the overall rate — the §2.4 signal that a
    /// cleaning choice will hit that group hardest.
    pub differential_missingness: Vec<(String, String, f64, f64)>,
    /// Auto-generated fitness warnings.
    pub warnings: Vec<String>,
    /// Free-form scope-of-use notes supplied by the data collector.
    pub scope_notes: Vec<String>,
}

impl NutritionalLabel {
    /// Generate a label for a table whose schema carries
    /// [`Role::Sensitive`] / [`Role::Target`] annotations.
    pub fn generate(table: &Table, config: &LabelConfig) -> rdi_table::Result<Self> {
        let columns = profile_table(table)?;
        let sensitive = table.schema().sensitive();
        let targets = table.schema().targets();

        // group representation
        let (group_fractions, representation_disparity, diversity) = if sensitive.is_empty() {
            (Vec::new(), 0.0, 0.0)
        } else {
            let spec = GroupSpec::from_sensitive(table);
            let fr = spec.fractions(table)?;
            let rendered: Vec<(String, f64)> =
                fr.iter().map(|(k, f)| (k.render(&spec), *f)).collect();
            let max = fr.iter().map(|(_, f)| *f).fold(f64::NEG_INFINITY, f64::max);
            let min = fr.iter().map(|(_, f)| *f).fold(f64::INFINITY, f64::min);
            let labels: Vec<String> = (0..table.num_rows())
                .map(|i| spec.key_of(table, i).map(|k| k.to_string()))
                .collect::<rdi_table::Result<_>>()?;
            let h = entropy(&labels);
            let hmax = (fr.len() as f64).ln();
            let diversity = if hmax > 0.0 { h / hmax } else { 1.0 };
            (rendered, max - min, diversity)
        };

        // coverage
        let uncovered_patterns = if sensitive.is_empty() {
            Vec::new()
        } else {
            let analyzer = CoverageAnalyzer::new(table, &sensitive, config.coverage_threshold)?;
            let mups = analyzer.maximal_uncovered_patterns();
            mups.iter().map(|m| analyzer.describe(m)).collect()
        };

        // associations of plain features with target / sensitive
        let mut feature_associations = Vec::new();
        if let Some(target) = targets.first() {
            for f in table.schema().fields() {
                if f.role != Role::Feature {
                    continue;
                }
                let with_target = table_association(table, &f.name, target)?;
                let mut with_sensitive: f64 = 0.0;
                for s in &sensitive {
                    with_sensitive = with_sensitive.max(table_association(table, &f.name, s)?);
                }
                feature_associations.push((f.name.clone(), with_target, with_sensitive));
            }
        }

        // sensitive → target FD
        let sensitive_target_fd_violation = match (sensitive.is_empty(), targets.first()) {
            (false, Some(t)) => Some(fd_violation_rate(table, &sensitive, t)?),
            _ => None,
        };

        // sensitive→target association rules above the lift threshold
        // (only meaningful for low-cardinality targets)
        let target_is_categorical = targets
            .first()
            .map(|t| table.distinct(t).map(|d| d.len() <= 10))
            .transpose()?
            .unwrap_or(false);
        let bias_rules = if sensitive.is_empty() || !target_is_categorical {
            Vec::new()
        } else {
            // gate on statistical significance: high-lift rules on tiny
            // samples are noise, not findings
            let significant = {
                let target = targets[0];
                let xs: Vec<String> = (0..table.num_rows())
                    .map(|i| table.value(i, sensitive[0]).map(|v| v.to_string()))
                    .collect::<rdi_table::Result<_>>()?;
                let ys: Vec<String> = (0..table.num_rows())
                    .map(|i| table.value(i, target).map(|v| v.to_string()))
                    .collect::<rdi_table::Result<_>>()?;
                rdi_fairness::chi_square_test(&xs, &ys).is_some_and(|t| t.p_value < 0.05)
            };
            if significant {
                crate::rules::mine_rules(table, &sensitive, &targets, 0.01, 0.0, config.rule_lift)?
                    .into_iter()
                    .take(5)
                    .map(|r| r.render())
                    .collect()
            } else {
                Vec::new()
            }
        };

        // per-attribute demographic diversity
        let mut attribute_diversity: Vec<(String, f64)> = Vec::new();
        if !sensitive.is_empty() && table.num_rows() > 0 {
            let spec = GroupSpec::from_sensitive(table);
            let num_groups = spec.keys(table)?.len();
            if num_groups > 1 {
                let hmax = (num_groups as f64).ln();
                for f in table.schema().fields() {
                    if f.role != Role::Feature || f.dtype != rdi_table::DataType::Str {
                        continue;
                    }
                    // group-label entropy within each value slice
                    let col = table.column(&f.name)?;
                    let mut by_value: std::collections::HashMap<String, Vec<String>> =
                        std::collections::HashMap::new();
                    for i in 0..table.num_rows() {
                        let v = col.value(i);
                        if v.is_null() {
                            continue;
                        }
                        by_value
                            .entry(v.to_string())
                            .or_default()
                            .push(spec.key_of(table, i)?.to_string());
                    }
                    if by_value.is_empty() || by_value.len() > 50 {
                        continue; // high-cardinality attributes are not "slices"
                    }
                    let n_total: usize = by_value.values().map(Vec::len).sum();
                    let avg: f64 = by_value
                        .values()
                        .map(|groups| {
                            let w = groups.len() as f64 / n_total as f64;
                            w * entropy(groups) / hmax
                        })
                        .sum();
                    attribute_diversity.push((f.name.clone(), avg));
                }
                attribute_diversity.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            }
        }

        // differential missingness per group
        let mut differential_missingness = Vec::new();
        if !sensitive.is_empty() && table.num_rows() > 0 {
            let spec = GroupSpec::from_sensitive(table);
            let parts = spec.partition(table)?;
            for f in table.schema().fields() {
                let col = table.column(&f.name)?;
                let overall = col.null_count() as f64 / table.num_rows() as f64;
                if overall == 0.0 {
                    continue;
                }
                let mut keys: Vec<_> = parts.keys().cloned().collect();
                keys.sort();
                for k in keys {
                    let idxs = &parts[&k];
                    let nulls = idxs.iter().filter(|&&i| col.value(i).is_null()).count();
                    let frac = nulls as f64 / idxs.len().max(1) as f64;
                    if frac >= 2.0 * overall && frac > 0.05 {
                        differential_missingness.push((
                            f.name.clone(),
                            k.render(&spec),
                            frac,
                            overall,
                        ));
                    }
                }
            }
        }

        let mut label = NutritionalLabel {
            num_rows: table.num_rows(),
            columns,
            group_fractions,
            representation_disparity,
            diversity,
            uncovered_patterns,
            feature_associations,
            sensitive_target_fd_violation,
            bias_rules,
            attribute_diversity,
            differential_missingness,
            warnings: Vec::new(),
            scope_notes: Vec::new(),
        };
        label.warnings = label.derive_warnings(config);
        Ok(label)
    }

    fn derive_warnings(&self, config: &LabelConfig) -> Vec<String> {
        let mut w = Vec::new();
        if !self.uncovered_patterns.is_empty() {
            w.push(format!(
                "{} group pattern(s) lack coverage at τ={}: {}",
                self.uncovered_patterns.len(),
                config.coverage_threshold,
                self.uncovered_patterns.join("; ")
            ));
        }
        for (f, _, with_s) in &self.feature_associations {
            if *with_s >= config.bias_flag {
                w.push(format!(
                    "feature `{f}` is strongly associated with a sensitive attribute ({with_s:.2})"
                ));
            }
        }
        if let Some(v) = self.sensitive_target_fd_violation {
            if v <= config.fd_flag {
                w.push(format!(
                    "target is (nearly) functionally determined by sensitive attributes (violation rate {v:.3})"
                ));
            }
        }
        for c in &self.columns {
            let frac = if c.count > 0 {
                c.nulls as f64 / c.count as f64
            } else {
                0.0
            };
            if frac > 0.2 {
                w.push(format!(
                    "column `{}` is {:.0}% missing",
                    c.name,
                    frac * 100.0
                ));
            }
        }
        for rule in &self.bias_rules {
            w.push(format!(
                "association rule links group membership to the target: {rule}"
            ));
        }
        for (col, group, frac, overall) in &self.differential_missingness {
            w.push(format!(
                "column `{col}` is {:.0}% missing for {group} vs {:.0}% overall — cleaning will hit that group hardest",
                frac * 100.0,
                overall * 100.0
            ));
        }
        w
    }

    /// Add a scope-of-use note (collection process, known limitations…).
    pub fn add_scope_note(&mut self, note: impl Into<String>) {
        self.scope_notes.push(note.into());
    }

    /// Render as JSON.
    pub fn to_json(&self) -> String {
        // rdi-lint: allow(R5): serializing an in-memory label of plain scalars cannot fail
        serde_json::to_string_pretty(self).expect("label serializes")
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str(&format!("# Nutritional Label ({} rows)\n\n", self.num_rows));
        if !self.scope_notes.is_empty() {
            md.push_str("## Scope of use\n");
            for n in &self.scope_notes {
                md.push_str(&format!("- {n}\n"));
            }
            md.push('\n');
        }
        if !self.warnings.is_empty() {
            md.push_str("## ⚠ Warnings\n");
            for w in &self.warnings {
                md.push_str(&format!("- {w}\n"));
            }
            md.push('\n');
        }
        if !self.group_fractions.is_empty() {
            md.push_str("## Group representation\n");
            md.push_str(&format!(
                "disparity: {:.3}, diversity: {:.3}\n\n",
                self.representation_disparity, self.diversity
            ));
            md.push_str("| group | fraction |\n|---|---|\n");
            for (g, f) in &self.group_fractions {
                md.push_str(&format!("| {g} | {f:.4} |\n"));
            }
            md.push('\n');
        }
        if !self.bias_rules.is_empty() {
            md.push_str("## Bias rules (statistically significant)\n");
            for r in &self.bias_rules {
                md.push_str(&format!("- {r}\n"));
            }
            md.push('\n');
        }
        if !self.attribute_diversity.is_empty() {
            md.push_str("## Attribute diversity over groups\n");
            md.push_str("| attribute | diversity |\n|---|---|\n");
            for (a, d) in &self.attribute_diversity {
                md.push_str(&format!("| {a} | {d:.3} |\n"));
            }
            md.push('\n');
        }
        if !self.feature_associations.is_empty() {
            md.push_str("## Feature associations\n");
            md.push_str("| feature | with target | with sensitive |\n|---|---|---|\n");
            for (f, t, s) in &self.feature_associations {
                md.push_str(&format!("| {f} | {t:.3} | {s:.3} |\n"));
            }
            md.push('\n');
        }
        md.push_str("## Columns\n");
        md.push_str("| column | type | nulls | distinct |\n|---|---|---|---|\n");
        for c in &self.columns {
            md.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                c.name, c.dtype, c.nulls, c.distinct
            ));
        }
        md
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema, Value};

    fn labeled_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let race = if i < 90 { "w" } else { "b" };
            // x is strongly group-determined (biased feature)
            let x = if i < 90 { 1.0 } else { -1.0 };
            let y = i % 2 == 0;
            t.push_row(vec![Value::str(race), Value::Float(x), Value::Bool(y)])
                .unwrap();
        }
        t
    }

    #[test]
    fn label_reports_representation_disparity() {
        let l = NutritionalLabel::generate(&labeled_table(), &LabelConfig::default()).unwrap();
        assert_eq!(l.group_fractions.len(), 2);
        assert!((l.representation_disparity - 0.8).abs() < 1e-9);
        assert!(l.diversity < 0.7);
    }

    #[test]
    fn biased_feature_flagged() {
        let l = NutritionalLabel::generate(&labeled_table(), &LabelConfig::default()).unwrap();
        let x = l
            .feature_associations
            .iter()
            .find(|(f, _, _)| f == "x")
            .unwrap();
        assert!(x.2 > 0.9, "assoc with sensitive = {}", x.2);
        assert!(l
            .warnings
            .iter()
            .any(|w| w.contains("`x`") && w.contains("sensitive")));
    }

    #[test]
    fn coverage_warning_when_group_small() {
        let cfg = LabelConfig {
            coverage_threshold: 20,
            ..LabelConfig::default()
        };
        let l = NutritionalLabel::generate(&labeled_table(), &cfg).unwrap();
        assert!(l.uncovered_patterns.iter().any(|p| p.contains("race=b")));
    }

    #[test]
    fn renderings_contain_key_sections() {
        let mut l = NutritionalLabel::generate(&labeled_table(), &LabelConfig::default()).unwrap();
        l.add_scope_note("Collected from two Chicago hospitals in 2021.");
        let md = l.to_markdown();
        assert!(md.contains("Group representation"));
        assert!(md.contains("Scope of use"));
        let json = l.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["num_rows"], 100);
    }

    #[test]
    fn attribute_diversity_ranks_balanced_attributes_first() {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("city", DataType::Str), // balanced across groups
            Field::new("club", DataType::Str), // segregated by group
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let race = if i % 2 == 0 { "a" } else { "b" };
            let city = ["north", "south"][(i / 2) % 2]; // independent of race
            let club = if race == "a" { "alpha" } else { "beta" }; // race proxy
            t.push_row(vec![
                Value::str(race),
                Value::str(city),
                Value::str(club),
                Value::Bool(i % 3 == 0),
            ])
            .unwrap();
        }
        let l = NutritionalLabel::generate(&t, &LabelConfig::default()).unwrap();
        assert_eq!(l.attribute_diversity.len(), 2);
        assert_eq!(l.attribute_diversity[0].0, "city");
        assert!(l.attribute_diversity[0].1 > 0.95);
        assert_eq!(l.attribute_diversity[1].0, "club");
        assert!(l.attribute_diversity[1].1 < 0.05);
    }

    #[test]
    fn bias_rules_gated_on_significance() {
        // strong dependence on a large sample → rule listed
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("y", DataType::Str).with_role(Role::Target),
        ]);
        let mut big = Table::new(schema.clone());
        for i in 0..400 {
            let r = if i % 2 == 0 { "a" } else { "b" };
            let y = if r == "a" { i % 10 != 0 } else { i % 10 < 3 };
            big.push_row(vec![
                Value::str(r),
                Value::str(if y { "yes" } else { "no" }),
            ])
            .unwrap();
        }
        let l = NutritionalLabel::generate(&big, &LabelConfig::default()).unwrap();
        assert!(!l.bias_rules.is_empty());

        // the same apparent pattern on 6 rows → not significant, no rules
        let mut tiny = Table::new(schema);
        for (r, y) in [
            ("a", "yes"),
            ("a", "yes"),
            ("a", "no"),
            ("b", "no"),
            ("b", "no"),
            ("b", "yes"),
        ] {
            tiny.push_row(vec![Value::str(r), Value::str(y)]).unwrap();
        }
        let l = NutritionalLabel::generate(&tiny, &LabelConfig::default()).unwrap();
        assert!(l.bias_rules.is_empty(), "{:?}", l.bias_rules);
    }

    #[test]
    fn differential_missingness_flagged() {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let minority = i % 4 == 0;
            let race = if minority { "b" } else { "w" };
            // x missing for 40% of the minority, never for the majority
            let x = if minority && i % 10 < 4 {
                Value::Null
            } else {
                Value::Float(i as f64)
            };
            t.push_row(vec![Value::str(race), x, Value::Bool(i % 2 == 0)])
                .unwrap();
        }
        let l = NutritionalLabel::generate(&t, &LabelConfig::default()).unwrap();
        assert_eq!(l.differential_missingness.len(), 1);
        let (col, group, frac, overall) = &l.differential_missingness[0];
        assert_eq!(col, "x");
        assert!(group.contains("race=b"));
        assert!(*frac > 2.0 * *overall);
        assert!(l
            .warnings
            .iter()
            .any(|w| w.contains("hit that group hardest")));
    }

    #[test]
    fn table_without_roles_still_labels() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Int(1)]).unwrap();
        let l = NutritionalLabel::generate(&t, &LabelConfig::default()).unwrap();
        assert!(l.group_fractions.is_empty());
        assert!(l.feature_associations.is_empty());
        assert!(l.sensitive_target_fd_violation.is_none());
    }
}
