//! Per-column statistical profiles.

use rdi_table::{DataType, Table, Value};
use serde::{Deserialize, Serialize};

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Data type name.
    pub dtype: String,
    /// Row count.
    pub count: usize,
    /// Null cells.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Numeric summary (None for non-numeric columns or all-null).
    pub numeric: Option<NumericSummary>,
    /// Up to 5 most frequent values with counts (categorical columns).
    pub top_values: Vec<(String, usize)>,
}

/// min/max/mean/std of a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericSummary {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Profile one column.
pub fn profile_column(table: &Table, name: &str) -> rdi_table::Result<ColumnProfile> {
    let field = table.schema().field(name)?;
    let col = table.column(name)?;
    let count = table.num_rows();
    let nulls = col.null_count();
    let distinct_vals = table.distinct(name)?;
    let distinct = distinct_vals.len();

    let numeric = match field.dtype {
        DataType::Int | DataType::Float | DataType::Bool => {
            let vals = col.numeric_values();
            if vals.is_empty() {
                None
            } else {
                let n = vals.len() as f64;
                let mean = vals.iter().sum::<f64>() / n;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                Some(NumericSummary {
                    min: vals.iter().copied().fold(f64::INFINITY, f64::min),
                    max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    mean,
                    std_dev: var.sqrt(),
                })
            }
        }
        DataType::Str => None,
    };

    // top values (only meaningful for low-cardinality columns)
    let mut counts: std::collections::HashMap<Value, usize> = std::collections::HashMap::new();
    for i in 0..count {
        let v = col.value(i);
        if !v.is_null() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let mut top: Vec<(String, usize)> = counts
        .into_iter()
        .map(|(v, c)| (v.to_string(), c))
        .collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(5);

    Ok(ColumnProfile {
        name: name.to_string(),
        dtype: field.dtype.name().to_string(),
        count,
        nulls,
        distinct,
        numeric,
        top_values: top,
    })
}

/// Profile every column of a table.
pub fn profile_table(table: &Table) -> rdi_table::Result<Vec<ColumnProfile>> {
    table
        .schema()
        .fields()
        .iter()
        .map(|f| profile_column(table, &f.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{Field, Schema};

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("g", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for (x, g) in [(1.0, "a"), (2.0, "a"), (3.0, "b")] {
            t.push_row(vec![Value::Float(x), Value::str(g)]).unwrap();
        }
        t.push_row(vec![Value::Null, Value::str("a")]).unwrap();
        t
    }

    #[test]
    fn numeric_profile() {
        let p = profile_column(&t(), "x").unwrap();
        assert_eq!(p.count, 4);
        assert_eq!(p.nulls, 1);
        assert_eq!(p.distinct, 3);
        let n = p.numeric.unwrap();
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 3.0);
        assert_eq!(n.mean, 2.0);
    }

    #[test]
    fn categorical_profile_top_values() {
        let p = profile_column(&t(), "g").unwrap();
        assert!(p.numeric.is_none());
        assert_eq!(p.top_values[0], ("a".to_string(), 3));
        assert_eq!(p.top_values[1], ("b".to_string(), 1));
    }

    #[test]
    fn profile_table_covers_all_columns() {
        let ps = profile_table(&t()).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].name, "x");
    }

    #[test]
    fn all_null_numeric_column() {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut tb = Table::new(schema);
        tb.push_row(vec![Value::Null]).unwrap();
        let p = profile_column(&tb, "x").unwrap();
        assert!(p.numeric.is_none());
        assert_eq!(p.nulls, 1);
    }
}
