//! One-antecedent association rules (`X=a → Y=b`) — MithraLabel's
//! "association rules to capture bias" widget.
//!
//! A high-lift rule from a sensitive attribute to the target (e.g.
//! `race=black → approved=false`, lift 1.8) is a direct, human-readable
//! bias signal. We mine only single-antecedent rules: they are the ones a
//! label can display, and they avoid the combinatorial blowup of full
//! Apriori.

use std::collections::HashMap;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

/// A mined rule `lhs_attr = lhs_value → rhs_attr = rhs_value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Antecedent attribute.
    pub lhs_attr: String,
    /// Antecedent value (rendered).
    pub lhs_value: String,
    /// Consequent attribute.
    pub rhs_attr: String,
    /// Consequent value (rendered).
    pub rhs_value: String,
    /// Fraction of all rows matching both sides.
    pub support: f64,
    /// P(rhs | lhs).
    pub confidence: f64,
    /// confidence / P(rhs) — 1.0 means independence.
    pub lift: f64,
}

impl AssociationRule {
    /// Render as `attr=v → attr=v (conf 0.81, lift 1.62)`.
    pub fn render(&self) -> String {
        format!(
            "{}={} → {}={} (support {:.2}, conf {:.2}, lift {:.2})",
            self.lhs_attr,
            self.lhs_value,
            self.rhs_attr,
            self.rhs_value,
            self.support,
            self.confidence,
            self.lift
        )
    }
}

/// Mine single-antecedent rules from `lhs_attrs` to `rhs_attrs`, keeping
/// those with at least `min_support`, `min_confidence`, and `min_lift`.
/// Sorted by lift descending. Null cells never participate in rules.
pub fn mine_rules(
    table: &Table,
    lhs_attrs: &[&str],
    rhs_attrs: &[&str],
    min_support: f64,
    min_confidence: f64,
    min_lift: f64,
) -> rdi_table::Result<Vec<AssociationRule>> {
    let n = table.num_rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let nf = n as f64;
    let mut rules = Vec::new();
    for la in lhs_attrs {
        let lcol = table.column(la)?;
        for ra in rhs_attrs {
            if la == ra {
                continue;
            }
            let rcol = table.column(ra)?;
            // joint and marginal counts
            let mut joint: HashMap<(Value, Value), usize> = HashMap::new();
            let mut lcount: HashMap<Value, usize> = HashMap::new();
            let mut rcount: HashMap<Value, usize> = HashMap::new();
            for i in 0..n {
                let lv = lcol.value(i);
                let rv = rcol.value(i);
                if lv.is_null() || rv.is_null() {
                    continue;
                }
                *lcount.entry(lv.clone()).or_insert(0) += 1;
                *rcount.entry(rv.clone()).or_insert(0) += 1;
                *joint.entry((lv, rv)).or_insert(0) += 1;
            }
            for ((lv, rv), &c) in &joint {
                let support = c as f64 / nf;
                if support < min_support {
                    continue;
                }
                let confidence = c as f64 / lcount[lv] as f64;
                if confidence < min_confidence {
                    continue;
                }
                let p_rhs = rcount[rv] as f64 / nf;
                let lift = if p_rhs > 0.0 { confidence / p_rhs } else { 0.0 };
                if lift < min_lift {
                    continue;
                }
                rules.push(AssociationRule {
                    lhs_attr: la.to_string(),
                    lhs_value: lv.to_string(),
                    rhs_attr: ra.to_string(),
                    rhs_value: rv.to_string(),
                    support,
                    confidence,
                    lift,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.lift
            .total_cmp(&a.lift)
            .then(b.support.total_cmp(&a.support))
            .then(a.lhs_value.cmp(&b.lhs_value))
            .then(a.rhs_value.cmp(&b.rhs_value))
    });
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    /// race strongly predicts outcome; gender is independent of it.
    fn biased_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("race", DataType::Str),
            Field::new("gender", DataType::Str),
            Field::new("outcome", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let race = if i % 2 == 0 { "w" } else { "b" };
            let gender = if (i / 2) % 2 == 0 { "M" } else { "F" };
            // w → approve 90%, b → approve 30%
            let approve = if race == "w" { i % 10 != 0 } else { i % 10 < 3 };
            t.push_row(vec![
                Value::str(race),
                Value::str(gender),
                Value::str(if approve { "yes" } else { "no" }),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn finds_high_lift_bias_rule() {
        let t = biased_table();
        let rules = mine_rules(&t, &["race", "gender"], &["outcome"], 0.05, 0.5, 1.1).unwrap();
        assert!(!rules.is_empty());
        // top rule: b → no (P(no)=0.4, conf=0.7, lift 1.75)
        let top = &rules[0];
        assert_eq!(top.lhs_attr, "race");
        assert_eq!(top.lhs_value, "b");
        assert_eq!(top.rhs_value, "no");
        assert!(top.lift > 1.5, "lift={}", top.lift);
        // no gender rule survives the lift filter
        assert!(rules.iter().all(|r| r.lhs_attr != "gender"));
    }

    #[test]
    fn thresholds_filter() {
        let t = biased_table();
        let none = mine_rules(&t, &["race"], &["outcome"], 0.9, 0.5, 1.0).unwrap();
        assert!(none.is_empty(), "support 0.9 should kill all rules");
        let all = mine_rules(&t, &["race"], &["outcome"], 0.0, 0.0, 0.0).unwrap();
        assert_eq!(all.len(), 4); // w/b × yes/no
    }

    #[test]
    fn independence_has_lift_one() {
        let t = biased_table();
        let rules = mine_rules(&t, &["gender"], &["outcome"], 0.0, 0.0, 0.0).unwrap();
        for r in rules {
            assert!((r.lift - 1.0).abs() < 0.15, "{}", r.render());
        }
    }

    #[test]
    fn nulls_are_skipped_and_empty_table_ok() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
        ]);
        let mut t = Table::new(schema.clone());
        t.push_row(vec![Value::Null, Value::str("x")]).unwrap();
        let rules = mine_rules(&t, &["a"], &["b"], 0.0, 0.0, 0.0).unwrap();
        assert!(rules.is_empty());
        let empty = Table::new(schema);
        assert!(mine_rules(&empty, &["a"], &["b"], 0.0, 0.0, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn render_is_readable() {
        let r = AssociationRule {
            lhs_attr: "race".into(),
            lhs_value: "b".into(),
            rhs_attr: "outcome".into(),
            rhs_value: "no".into(),
            support: 0.35,
            confidence: 0.7,
            lift: 1.75,
        };
        assert_eq!(
            r.render(),
            "race=b → outcome=no (support 0.35, conf 0.70, lift 1.75)"
        );
    }
}
