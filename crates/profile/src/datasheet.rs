//! Datasheets for Datasets (Gebru et al., CACM 2021).
//!
//! A datasheet documents a data set's motivation, composition, collection
//! process, preprocessing, uses, distribution, and maintenance through a
//! standard question template. This module carries the template and
//! renders filled sheets; the structured sections keep the document
//! machine-checkable (unanswered questions are visible).

use serde::{Deserialize, Serialize};

/// One datasheet question, optionally answered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuestionAnswer {
    /// The question text.
    pub question: String,
    /// The answer, if provided.
    pub answer: Option<String>,
}

/// A datasheet section (e.g. "Motivation").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Section title.
    pub title: String,
    /// Questions in the section.
    pub questions: Vec<QuestionAnswer>,
}

/// A full datasheet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datasheet {
    /// Data set name.
    pub dataset_name: String,
    /// The sections.
    pub sections: Vec<Section>,
}

impl Datasheet {
    /// The standard Gebru et al. template (abridged to the questions most
    /// relevant to integration provenance).
    pub fn template(dataset_name: impl Into<String>) -> Self {
        let q = |s: &str| QuestionAnswer {
            question: s.to_string(),
            answer: None,
        };
        Datasheet {
            dataset_name: dataset_name.into(),
            sections: vec![
                Section {
                    title: "Motivation".into(),
                    questions: vec![
                        q("For what purpose was the dataset created?"),
                        q("Who created the dataset and on behalf of which entity?"),
                    ],
                },
                Section {
                    title: "Composition".into(),
                    questions: vec![
                        q("What do the instances represent?"),
                        q("Does the dataset identify any subpopulations (e.g., by age, gender)?"),
                        q("Is any information missing from individual instances?"),
                    ],
                },
                Section {
                    title: "Collection process".into(),
                    questions: vec![
                        q("How was the data associated with each instance acquired?"),
                        q("What was the sampling strategy (e.g., deterministic, probabilistic)?"),
                        q("Over what timeframe was the data collected?"),
                    ],
                },
                Section {
                    title: "Preprocessing / cleaning / labeling".into(),
                    questions: vec![
                        q("Was any preprocessing/cleaning/labeling of the data done?"),
                        q("Was the raw data saved in addition to the cleaned data?"),
                    ],
                },
                Section {
                    title: "Uses".into(),
                    questions: vec![
                        q("What (other) tasks could the dataset be used for?"),
                        q("Are there tasks for which the dataset should not be used?"),
                    ],
                },
            ],
        }
    }

    /// Answer a question by (section, index).
    pub fn answer(&mut self, section: &str, index: usize, answer: impl Into<String>) -> bool {
        for s in &mut self.sections {
            if s.title == section {
                if let Some(qa) = s.questions.get_mut(index) {
                    qa.answer = Some(answer.into());
                    return true;
                }
            }
        }
        false
    }

    /// Number of unanswered questions.
    pub fn unanswered(&self) -> usize {
        self.sections
            .iter()
            .flat_map(|s| &s.questions)
            .filter(|q| q.answer.is_none())
            .count()
    }

    /// True iff every question is answered.
    pub fn complete(&self) -> bool {
        self.unanswered() == 0
    }

    /// Render as markdown (unanswered questions marked).
    pub fn to_markdown(&self) -> String {
        let mut md = format!("# Datasheet: {}\n\n", self.dataset_name);
        for s in &self.sections {
            md.push_str(&format!("## {}\n\n", s.title));
            for q in &s.questions {
                md.push_str(&format!("**{}**\n\n", q.question));
                match &q.answer {
                    Some(a) => md.push_str(&format!("{a}\n\n")),
                    None => md.push_str("_unanswered_\n\n"),
                }
            }
        }
        md
    }

    /// Render as JSON.
    pub fn to_json(&self) -> String {
        // rdi-lint: allow(R5): serializing an in-memory datasheet of plain strings cannot fail
        serde_json::to_string_pretty(self).expect("datasheet serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_has_standard_sections() {
        let d = Datasheet::template("chicago-health");
        let titles: Vec<&str> = d.sections.iter().map(|s| s.title.as_str()).collect();
        assert!(titles.contains(&"Motivation"));
        assert!(titles.contains(&"Collection process"));
        assert!(d.unanswered() > 5);
        assert!(!d.complete());
    }

    #[test]
    fn answering_reduces_unanswered() {
        let mut d = Datasheet::template("x");
        let before = d.unanswered();
        assert!(d.answer("Motivation", 0, "Early detection of breast cancer."));
        assert_eq!(d.unanswered(), before - 1);
        assert!(!d.answer("Nonexistent", 0, "nope"));
        assert!(!d.answer("Motivation", 99, "nope"));
    }

    #[test]
    fn markdown_marks_unanswered() {
        let mut d = Datasheet::template("x");
        d.answer("Motivation", 0, "Testing.");
        let md = d.to_markdown();
        assert!(md.contains("Testing."));
        assert!(md.contains("_unanswered_"));
    }

    #[test]
    fn json_roundtrip() {
        let d = Datasheet::template("x");
        let j = d.to_json();
        let back: Datasheet = serde_json::from_str(&j).unwrap();
        assert_eq!(d, back);
    }
}
