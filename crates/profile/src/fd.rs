//! Approximate functional-dependency checking.
//!
//! MithraLabel flags "functional dependencies between sensitive attributes
//! and target variables": if `sensitive → target` (almost) holds, the
//! target is (almost) determined by group membership — a strong bias
//! signal. The *violation rate* is the minimum fraction of rows that must
//! be removed for the FD `X → Y` to hold exactly (the `g3` error measure
//! of Kivinen & Mannila).

use std::collections::HashMap;

use rdi_table::{Table, Value};

/// Violation rate of the FD `lhs → rhs` in `[0, 1]`:
/// `1 − (Σ_x max_y count(x, y)) / N`. 0 means the FD holds exactly.
pub fn fd_violation_rate(table: &Table, lhs: &[&str], rhs: &str) -> rdi_table::Result<f64> {
    let n = table.num_rows();
    if n == 0 {
        return Ok(0.0);
    }
    let mut groups: HashMap<Vec<Value>, HashMap<Value, usize>> = HashMap::new();
    for i in 0..n {
        let mut key = Vec::with_capacity(lhs.len());
        for c in lhs {
            key.push(table.value(i, c)?);
        }
        let y = table.value(i, rhs)?;
        *groups.entry(key).or_default().entry(y).or_insert(0) += 1;
    }
    let kept: usize = groups
        .values()
        .map(|ys| ys.values().copied().max().unwrap_or(0))
        .sum();
    Ok(1.0 - kept as f64 / n as f64)
}

/// True iff the FD holds with violation rate ≤ `epsilon`.
pub fn holds_approximately(
    table: &Table,
    lhs: &[&str],
    rhs: &str,
    epsilon: f64,
) -> rdi_table::Result<bool> {
    Ok(fd_violation_rate(table, lhs, rhs)? <= epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    fn t(rows: &[(&str, &str)]) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Str),
            Field::new("y", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for (x, y) in rows {
            t.push_row(vec![Value::str(*x), Value::str(*y)]).unwrap();
        }
        t
    }

    #[test]
    fn exact_fd_has_zero_violation() {
        let t = t(&[("a", "1"), ("a", "1"), ("b", "2")]);
        assert_eq!(fd_violation_rate(&t, &["x"], "y").unwrap(), 0.0);
        assert!(holds_approximately(&t, &["x"], "y", 0.0).unwrap());
    }

    #[test]
    fn violations_counted_minimally() {
        // x=a maps to 1 three times and 2 once → remove 1 row of 5
        let t = t(&[("a", "1"), ("a", "1"), ("a", "1"), ("a", "2"), ("b", "9")]);
        assert!((fd_violation_rate(&t, &["x"], "y").unwrap() - 0.2).abs() < 1e-12);
        assert!(holds_approximately(&t, &["x"], "y", 0.25).unwrap());
        assert!(!holds_approximately(&t, &["x"], "y", 0.1).unwrap());
    }

    #[test]
    fn independent_attributes_violate_heavily() {
        let mut rows = Vec::new();
        for i in 0..100 {
            rows.push((
                if i % 2 == 0 { "a" } else { "b" },
                ["1", "2", "3", "4"][i % 4],
            ));
        }
        let t = t(&rows);
        let rate = fd_violation_rate(&t, &["x"], "y").unwrap();
        assert!(rate >= 0.5 - 1e-12, "rate={rate}");
    }

    #[test]
    fn multi_column_lhs() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
            Field::new("y", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        for (a, b, y) in [
            ("0", "0", "p"),
            ("0", "1", "q"),
            ("1", "0", "r"),
            ("1", "1", "s"),
        ] {
            t.push_row(vec![Value::str(a), Value::str(b), Value::str(y)])
                .unwrap();
        }
        assert_eq!(fd_violation_rate(&t, &["a", "b"], "y").unwrap(), 0.0);
        // single columns do not determine y
        assert!(fd_violation_rate(&t, &["a"], "y").unwrap() > 0.0);
    }

    #[test]
    fn empty_table_is_trivially_consistent() {
        let t = t(&[]);
        assert_eq!(fd_violation_rate(&t, &["x"], "y").unwrap(), 0.0);
    }
}
