//! # rdi-profile
//!
//! Profiling for the *Scope-of-use Augmentation* requirement (tutorial
//! §2.5, §3.2): machine- and human-readable summaries of what a data set
//! is and is not fit for.
//!
//! * [`stats`] — per-column profiles (classic data profiling);
//! * [`fd`] — approximate functional-dependency checking (used to flag
//!   `sensitive → target` dependencies);
//! * [`rules`] — single-antecedent association rules (the "rules to
//!   capture bias" widget);
//! * [`label`] — **nutritional labels** in the MithraLabel style (Sun et
//!   al., CIKM 2019): correlation widgets, parity widgets, MUP widgets,
//!   diversity, and auto-generated fitness warnings, rendered to markdown
//!   or JSON;
//! * [`datasheet`] — **Datasheets for Datasets** (Gebru et al., CACM
//!   2021): the standard question template with structured answers.

//!
//! ```
//! use rdi_profile::{NutritionalLabel, LabelConfig};
//! use rdi_table::{Schema, Field, DataType, Role, Table, Value};
//!
//! let schema = Schema::new(vec![
//!     Field::new("race", DataType::Str).with_role(Role::Sensitive),
//! ]);
//! let mut t = Table::new(schema);
//! for i in 0..100 {
//!     t.push_row(vec![Value::str(if i < 95 { "w" } else { "b" })]).unwrap();
//! }
//! let label = NutritionalLabel::generate(&t, &LabelConfig::default()).unwrap();
//! assert!(label.representation_disparity > 0.8); // 95/5 split
//! assert!(label.to_markdown().contains("Group representation"));
//! ```
#![warn(missing_docs)]

pub mod datasheet;
pub mod fd;
pub mod label;
pub mod rules;
pub mod stats;

pub use datasheet::Datasheet;
pub use fd::fd_violation_rate;
pub use label::{LabelConfig, NutritionalLabel};
pub use rules::{mine_rules, AssociationRule};
pub use stats::{profile_column, ColumnProfile};
