//! Bias amplification of dirty data (tutorial §2.4).
//!
//! The tutorial's argument: an incorrect value in a *majority* tuple
//! barely moves an AVG, but the same error in a *minority* tuple can move
//! that group's aggregate a lot — so data errors amplify bias. This module
//! measures exactly that: per-group aggregate error between a clean table
//! and its dirtied counterpart.

use rdi_table::{GroupSpec, Table};
use serde::{Deserialize, Serialize};

/// Per-group aggregate error between clean and dirty versions of a table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateErrorReport {
    /// (group, group size, |mean_dirty − mean_clean|), sorted by size
    /// ascending — the tutorial predicts error falls with size.
    pub group_errors: Vec<(String, usize, f64)>,
    /// Error of the overall mean.
    pub overall_error: f64,
}

/// Compare per-group means of `column` between `clean` and `dirty`
/// (tables must be row-aligned, e.g. dirty = clean + injected errors).
pub fn group_aggregate_error(
    clean: &Table,
    dirty: &Table,
    column: &str,
    spec: &GroupSpec,
) -> rdi_table::Result<AggregateErrorReport> {
    let clean_stats = spec.stats(clean, column)?;
    let dirty_stats = spec.stats(dirty, column)?;
    let mut group_errors = Vec::new();
    for (k, cs) in &clean_stats {
        if let Some((_, ds)) = dirty_stats.iter().find(|(dk, _)| dk == k) {
            group_errors.push((k.to_string(), cs.count, (ds.mean - cs.mean).abs()));
        }
    }
    group_errors.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let overall_error =
        (dirty.mean(column)?.unwrap_or(0.0) - clean.mean(column)?.unwrap_or(0.0)).abs();
    Ok(AggregateErrorReport {
        group_errors,
        overall_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    #[test]
    fn same_error_hurts_small_group_more() {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
        ]);
        let mut clean = Table::new(schema);
        // majority: 100 rows of x=10; minority: 5 rows of x=10
        for _ in 0..100 {
            clean
                .push_row(vec![Value::str("maj"), Value::Float(10.0)])
                .unwrap();
        }
        for _ in 0..5 {
            clean
                .push_row(vec![Value::str("min"), Value::Float(10.0)])
                .unwrap();
        }
        // identical gross error (+100) in one tuple of each group
        let mut dirty = clean.clone();
        dirty.set_value(0, "x", Value::Float(110.0)).unwrap();
        dirty.set_value(100, "x", Value::Float(110.0)).unwrap();
        let spec = GroupSpec::new(vec!["g"]);
        let rep = group_aggregate_error(&clean, &dirty, "x", &spec).unwrap();
        // sorted by size: minority first
        assert_eq!(rep.group_errors[0].0, "(min)");
        let min_err = rep.group_errors[0].2;
        let maj_err = rep.group_errors[1].2;
        assert!((min_err - 20.0).abs() < 1e-9, "min_err={min_err}");
        assert!((maj_err - 1.0).abs() < 1e-9, "maj_err={maj_err}");
        assert!(min_err / maj_err > 10.0);
    }

    #[test]
    fn identical_tables_have_zero_error() {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("a"), Value::Float(1.0)])
            .unwrap();
        let spec = GroupSpec::new(vec!["g"]);
        let rep = group_aggregate_error(&t, &t, "x", &spec).unwrap();
        assert_eq!(rep.overall_error, 0.0);
        assert_eq!(rep.group_errors[0].2, 0.0);
    }
}
