//! # rdi-cleaning
//!
//! Data cleaning with fairness auditing (tutorial §2.4, §3.3, §5):
//!
//! * [`mod@impute`] — missing-value strategies (drop, global mean,
//!   group-conditional mean, k-NN hot-deck);
//! * [`parity`] — **imputation accuracy parity** (Zhang & Long, NeurIPS
//!   2021): does an imputation method err more for some groups?
//! * [`bias_amp`] — the tutorial's §2.4 observation made executable:
//!   errors and missingness hurt small groups' aggregates more;
//! * [`repair`] — rule-based error detection and repair (range and
//!   σ-outlier rules);
//! * [`er`] — blocking-based entity resolution with a per-group quality
//!   audit (biased linkage is a §5 opportunity);
//! * [`interventional`] — simplified causal repair (Salimi et al.,
//!   SIGMOD 2019): make the target conditionally independent of the
//!   sensitive attributes given admissible ones.

//!
//! ```
//! use rdi_cleaning::{impute, ImputeStrategy};
//! use rdi_table::{Schema, Field, DataType, Role, GroupSpec, Table, Value};
//!
//! let schema = Schema::new(vec![
//!     Field::new("g", DataType::Str).with_role(Role::Sensitive),
//!     Field::new("x", DataType::Float),
//! ]);
//! let mut t = Table::new(schema);
//! t.push_row(vec![Value::str("a"), Value::Float(1.0)]).unwrap();
//! t.push_row(vec![Value::str("a"), Value::Null]).unwrap();
//! t.push_row(vec![Value::str("b"), Value::Float(100.0)]).unwrap();
//! let fixed = impute(&t, "x", &ImputeStrategy::GroupMean(GroupSpec::new(vec!["g"]))).unwrap();
//! // the missing group-a cell gets group a's mean, not the global mean
//! assert_eq!(fixed.value(1, "x").unwrap().as_f64().unwrap(), 1.0);
//! ```
#![warn(missing_docs)]

pub mod bias_amp;
pub mod er;
pub mod impute;
pub mod interventional;
pub mod parity;
pub mod repair;

pub use bias_amp::{group_aggregate_error, AggregateErrorReport};
pub use er::{
    audit_er, bigram_jaccard, cluster_entities, deduplicate, resolve_entities, ErAudit, ErConfig,
};
pub use impute::{impute, ImputeStrategy};
pub use interventional::{repair_conditional_independence, RepairReport};
pub use parity::{imputation_parity, ParityReport};
pub use repair::{detect_outliers, repair_with_rule, Rule};
