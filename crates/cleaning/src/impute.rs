//! Missing-value imputation strategies.

use rdi_table::{GroupSpec, Table, Value};

/// How to fill (or drop) missing cells of a numeric column.
#[derive(Debug, Clone)]
pub enum ImputeStrategy {
    /// Remove rows where the column is null (the tutorial's resolution
    /// (i) — shrinks small groups further).
    DropRows,
    /// Replace with the column's global mean (resolution (ii) — pulls
    /// minority values toward the majority).
    Mean,
    /// Replace with the mean of the row's demographic group (per the
    /// given spec); falls back to the global mean for groups with no
    /// observed values.
    GroupMean(GroupSpec),
    /// Hot-deck: copy the value of the nearest row (Euclidean distance on
    /// the given complete numeric columns).
    HotDeckKnn {
        /// Complete numeric columns used as the distance space.
        features: Vec<String>,
        /// Number of neighbors averaged.
        k: usize,
    },
    /// Simple-regression imputation: fit ordinary least squares
    /// `target ≈ a + b·predictor` on complete rows and predict missing
    /// cells from the predictor (falls back to the target's mean when the
    /// predictor is constant or itself missing).
    Regression {
        /// Numeric predictor column.
        predictor: String,
    },
}

/// Impute `column` of `table` under a strategy; returns the new table.
pub fn impute(table: &Table, column: &str, strategy: &ImputeStrategy) -> rdi_table::Result<Table> {
    match strategy {
        ImputeStrategy::DropRows => {
            table.schema().index_of(column)?; // validate
            let mut keep = Vec::with_capacity(table.num_rows());
            for i in 0..table.num_rows() {
                if !table.value(i, column)?.is_null() {
                    keep.push(i);
                }
            }
            Ok(table.take(&keep))
        }
        ImputeStrategy::Mean => {
            let mean = table.mean(column)?.unwrap_or(0.0);
            fill_nulls(table, column, |_i| Value::Float(mean))
        }
        ImputeStrategy::GroupMean(spec) => {
            let global = table.mean(column)?.unwrap_or(0.0);
            let stats = spec.stats(table, column)?;
            // Sorted map: group-mean lookup must not depend on hash order
            // (lint rule R1), and BTreeMap keeps snapshots reproducible.
            let means: std::collections::BTreeMap<_, f64> = stats
                .into_iter()
                .map(|(k, s)| (k, if s.non_null > 0 { s.mean } else { global }))
                .collect();
            let mut out = table.clone();
            for i in 0..table.num_rows() {
                if table.value(i, column)?.is_null() {
                    let key = spec.key_of(table, i)?;
                    let m = means.get(&key).copied().unwrap_or(global);
                    out.set_value(i, column, Value::Float(m))?;
                }
            }
            Ok(out)
        }
        ImputeStrategy::HotDeckKnn { features, k } => {
            assert!(*k >= 1);
            // collect donor rows (non-null target, complete features)
            let feat_cols: Vec<&rdi_table::Column> = features
                .iter()
                .map(|f| table.column(f))
                .collect::<rdi_table::Result<_>>()?;
            let coords = |i: usize| -> Option<Vec<f64>> {
                feat_cols.iter().map(|c| c.value(i).as_f64()).collect()
            };
            let mut donors: Vec<(Vec<f64>, f64)> = Vec::new();
            for i in 0..table.num_rows() {
                let v = table.value(i, column)?;
                if let (Some(x), Some(p)) = (v.as_f64(), coords(i)) {
                    donors.push((p, x));
                }
            }
            let mut out = table.clone();
            for i in 0..table.num_rows() {
                if !table.value(i, column)?.is_null() {
                    continue;
                }
                let Some(p) = coords(i) else { continue };
                if donors.is_empty() {
                    continue;
                }
                let mut dists: Vec<(f64, f64)> = donors
                    .iter()
                    .map(|(q, x)| {
                        let d: f64 = p.iter().zip(q).map(|(a, b)| (a - b).powi(2)).sum();
                        (d, *x)
                    })
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0));
                let kk = (*k).min(dists.len());
                let avg = dists[..kk].iter().map(|(_, x)| x).sum::<f64>() / kk as f64;
                out.set_value(i, column, Value::Float(avg))?;
            }
            Ok(out)
        }
        ImputeStrategy::Regression { predictor } => {
            let pcol = table.column(predictor)?;
            let tcol = table.column(column)?;
            // fit OLS on complete (predictor, target) pairs
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for i in 0..table.num_rows() {
                if let (Some(x), Some(y)) = (pcol.value(i).as_f64(), tcol.value(i).as_f64()) {
                    xs.push(x);
                    ys.push(y);
                }
            }
            let fallback = table.mean(column)?.unwrap_or(0.0);
            let fit = if xs.len() >= 2 {
                let n = xs.len() as f64;
                let mx = xs.iter().sum::<f64>() / n;
                let my = ys.iter().sum::<f64>() / n;
                let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
                if sxx > 1e-12 {
                    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
                    let b = sxy / sxx;
                    Some((my - b * mx, b))
                } else {
                    None
                }
            } else {
                None
            };
            let mut out = table.clone();
            for i in 0..table.num_rows() {
                if !table.value(i, column)?.is_null() {
                    continue;
                }
                let v = match (fit, pcol.value(i).as_f64()) {
                    (Some((a, b)), Some(x)) => a + b * x,
                    _ => fallback,
                };
                out.set_value(i, column, Value::Float(v))?;
            }
            Ok(out)
        }
    }
}

fn fill_nulls(table: &Table, column: &str, f: impl Fn(usize) -> Value) -> rdi_table::Result<Table> {
    let mut out = table.clone();
    for i in 0..table.num_rows() {
        if table.value(i, column)?.is_null() {
            out.set_value(i, column, f(i))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema};

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("aux", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        let rows: Vec<(&str, Option<f64>, f64)> = vec![
            ("a", Some(1.0), 0.0),
            ("a", Some(3.0), 0.1),
            ("a", None, 0.05),
            ("b", Some(10.0), 5.0),
            ("b", None, 5.1),
        ];
        for (g, x, aux) in rows {
            t.push_row(vec![
                Value::str(g),
                x.map_or(Value::Null, Value::Float),
                Value::Float(aux),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn drop_rows_removes_incomplete() {
        let out = impute(&t(), "x", &ImputeStrategy::DropRows).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column("x").unwrap().null_count(), 0);
    }

    #[test]
    fn mean_fills_with_global_mean() {
        let out = impute(&t(), "x", &ImputeStrategy::Mean).unwrap();
        // global mean of (1, 3, 10) = 14/3
        let v = out.value(2, "x").unwrap().as_f64().unwrap();
        assert!((v - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.column("x").unwrap().null_count(), 0);
    }

    #[test]
    fn group_mean_respects_groups() {
        let spec = GroupSpec::new(vec!["g"]);
        let out = impute(&t(), "x", &ImputeStrategy::GroupMean(spec)).unwrap();
        // group a mean = 2.0, group b mean = 10.0
        assert_eq!(out.value(2, "x").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(out.value(4, "x").unwrap().as_f64().unwrap(), 10.0);
    }

    #[test]
    fn hotdeck_uses_nearest_neighbors() {
        let out = impute(
            &t(),
            "x",
            &ImputeStrategy::HotDeckKnn {
                features: vec!["aux".into()],
                k: 1,
            },
        )
        .unwrap();
        // row 2 (aux=0.05) is nearest to row 0 (aux=0.0) → x = 1.0
        assert_eq!(out.value(2, "x").unwrap().as_f64().unwrap(), 1.0);
        // row 4 (aux=5.1) nearest to row 3 (aux=5.0) → x = 10.0
        assert_eq!(out.value(4, "x").unwrap().as_f64().unwrap(), 10.0);
    }

    #[test]
    fn hotdeck_k2_averages() {
        let out = impute(
            &t(),
            "x",
            &ImputeStrategy::HotDeckKnn {
                features: vec!["aux".into()],
                k: 2,
            },
        )
        .unwrap();
        // row 2 neighbors: rows 0 (x=1) and 1 (x=3) → 2.0
        assert_eq!(out.value(2, "x").unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn regression_imputes_from_predictor() {
        // x = 2·aux + 1 exactly on complete rows
        let schema = Schema::new(vec![
            Field::new("aux", DataType::Float),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..10 {
            let aux = i as f64;
            t.push_row(vec![Value::Float(aux), Value::Float(2.0 * aux + 1.0)])
                .unwrap();
        }
        t.push_row(vec![Value::Float(20.0), Value::Null]).unwrap();
        let out = impute(
            &t,
            "x",
            &ImputeStrategy::Regression {
                predictor: "aux".into(),
            },
        )
        .unwrap();
        let v = out.value(10, "x").unwrap().as_f64().unwrap();
        assert!((v - 41.0).abs() < 1e-9, "v={v}");
    }

    #[test]
    fn regression_falls_back_on_constant_predictor() {
        let schema = Schema::new(vec![
            Field::new("aux", DataType::Float),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Float(1.0), Value::Float(10.0)])
            .unwrap();
        t.push_row(vec![Value::Float(1.0), Value::Float(20.0)])
            .unwrap();
        t.push_row(vec![Value::Float(1.0), Value::Null]).unwrap();
        let out = impute(
            &t,
            "x",
            &ImputeStrategy::Regression {
                predictor: "aux".into(),
            },
        )
        .unwrap();
        assert_eq!(out.value(2, "x").unwrap().as_f64().unwrap(), 15.0);
    }

    proptest::proptest! {
        /// Group-mean imputation must be a pure function of the table
        /// contents: repeated runs are bitwise identical (no hash-order
        /// dependence — guards the R1 conversion of the means map), and
        /// every filled cell matches an independently computed group mean.
        #[test]
        fn group_mean_impute_is_order_invariant(
            raw in proptest::collection::vec(
                (0u8..3, -100.0f64..100.0, 0u8..4),
                1..40,
            ),
        ) {
            // third component: 0 = missing cell, 1..4 = present
            let rows: Vec<(u8, Option<f64>)> = raw
                .iter()
                .map(|&(g, x, m)| (g, (m != 0).then_some(x)))
                .collect();
            let schema = Schema::new(vec![
                Field::new("g", DataType::Str).with_role(Role::Sensitive),
                Field::new("x", DataType::Float),
            ]);
            let mut t = Table::new(schema);
            for (g, x) in &rows {
                t.push_row(vec![
                    Value::str(format!("g{g}")),
                    x.map_or(Value::Null, Value::Float),
                ])
                .unwrap();
            }
            let spec = GroupSpec::new(vec!["g"]);
            let a = impute(&t, "x", &ImputeStrategy::GroupMean(spec.clone())).unwrap();
            let b = impute(&t, "x", &ImputeStrategy::GroupMean(spec)).unwrap();
            // reference group means, computed in row order per group
            let mut sums: std::collections::BTreeMap<u8, (f64, usize)> =
                std::collections::BTreeMap::new();
            let mut gsum = 0.0;
            let mut gcnt = 0usize;
            for (g, x) in &rows {
                if let Some(x) = x {
                    let e = sums.entry(*g).or_insert((0.0, 0));
                    e.0 += x;
                    e.1 += 1;
                    gsum += x;
                    gcnt += 1;
                }
            }
            let global = if gcnt > 0 { gsum / gcnt as f64 } else { 0.0 };
            for (i, (g, x)) in rows.iter().enumerate() {
                let va = a.value(i, "x").unwrap().as_f64().unwrap();
                let vb = b.value(i, "x").unwrap().as_f64().unwrap();
                proptest::prop_assert_eq!(va.to_bits(), vb.to_bits());
                if x.is_none() {
                    let expect = match sums.get(g) {
                        Some(&(s, c)) if c > 0 => s / c as f64,
                        _ => global,
                    };
                    proptest::prop_assert!((va - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn original_values_untouched() {
        for strat in [
            ImputeStrategy::Mean,
            ImputeStrategy::GroupMean(GroupSpec::new(vec!["g"])),
        ] {
            let out = impute(&t(), "x", &strat).unwrap();
            assert_eq!(out.value(0, "x").unwrap().as_f64().unwrap(), 1.0);
            assert_eq!(out.value(3, "x").unwrap().as_f64().unwrap(), 10.0);
        }
    }
}
