//! Rule-based error detection and repair.

use rdi_table::{Table, Value};

/// A data-quality rule on a numeric column.
#[derive(Debug, Clone)]
pub enum Rule {
    /// Values must lie in `[lo, hi]`.
    Range {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Values beyond `k` standard deviations from the mean are errors.
    Sigma {
        /// Number of standard deviations.
        k: f64,
    },
}

/// Row indices of `column` violating the rule (nulls never violate).
pub fn detect_outliers(table: &Table, column: &str, rule: &Rule) -> rdi_table::Result<Vec<usize>> {
    let col = table.column(column)?;
    let (lo, hi) = bounds(table, column, rule)?;
    Ok((0..table.num_rows())
        .filter(|&i| match col.value(i).as_f64() {
            Some(x) => x < lo || x > hi,
            None => false,
        })
        .collect())
}

/// Repair violations by clipping to the rule's bounds; returns the new
/// table and the repaired row indices.
pub fn repair_with_rule(
    table: &Table,
    column: &str,
    rule: &Rule,
) -> rdi_table::Result<(Table, Vec<usize>)> {
    let violations = detect_outliers(table, column, rule)?;
    let (lo, hi) = bounds(table, column, rule)?;
    let mut out = table.clone();
    for &i in &violations {
        // detect_outliers only flags numeric cells, so the skip below
        // never fires; it just keeps the path panic-free.
        let Some(x) = table.value(i, column)?.as_f64() else {
            continue;
        };
        out.set_value(i, column, Value::Float(x.clamp(lo, hi)))?;
    }
    Ok((out, violations))
}

fn bounds(table: &Table, column: &str, rule: &Rule) -> rdi_table::Result<(f64, f64)> {
    Ok(match rule {
        Rule::Range { lo, hi } => (*lo, *hi),
        Rule::Sigma { k } => {
            let vals = table.column(column)?.numeric_values();
            if vals.is_empty() {
                return Ok((f64::NEG_INFINITY, f64::INFINITY));
            }
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
            (mean - k * sd, mean + k * sd)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    fn t(vals: &[Option<f64>]) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut t = Table::new(schema);
        for v in vals {
            t.push_row(vec![v.map_or(Value::Null, Value::Float)])
                .unwrap();
        }
        t
    }

    #[test]
    fn range_rule_detects_and_clips() {
        let table = t(&[Some(5.0), Some(-3.0), Some(150.0), None]);
        let rule = Rule::Range { lo: 0.0, hi: 100.0 };
        assert_eq!(detect_outliers(&table, "x", &rule).unwrap(), vec![1, 2]);
        let (fixed, repaired) = repair_with_rule(&table, "x", &rule).unwrap();
        assert_eq!(repaired, vec![1, 2]);
        assert_eq!(fixed.value(1, "x").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(fixed.value(2, "x").unwrap().as_f64().unwrap(), 100.0);
        assert!(fixed.value(3, "x").unwrap().is_null());
    }

    #[test]
    fn sigma_rule_flags_gross_errors_only() {
        let mut vals: Vec<Option<f64>> = (0..100).map(|i| Some((i % 10) as f64)).collect();
        vals.push(Some(1000.0));
        let table = t(&vals);
        let out = detect_outliers(&table, "x", &Rule::Sigma { k: 3.0 }).unwrap();
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn empty_and_all_null_columns() {
        let table = t(&[None, None]);
        assert!(detect_outliers(&table, "x", &Rule::Sigma { k: 2.0 })
            .unwrap()
            .is_empty());
    }
}
