//! Entity resolution with a per-group fairness audit.
//!
//! A standard blocking + similarity matcher over a name-like string
//! column, plus the audit the tutorial's §5 calls for: linkage quality
//! (precision/recall against ground truth) measured *per demographic
//! group*, since name-based matching is known to degrade for groups whose
//! names the similarity function handles poorly.

use std::collections::{BTreeMap, BTreeSet};

use rdi_table::{GroupSpec, Table};
use serde::{Deserialize, Serialize};

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Column holding the entity's string key (e.g. a name).
    pub name_column: String,
    /// Blocking prefix length (records sharing a prefix are compared).
    pub block_prefix: usize,
    /// Jaccard-of-bigrams threshold above which a pair matches.
    pub threshold: f64,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            name_column: "name".into(),
            block_prefix: 2,
            threshold: 0.6,
        }
    }
}

/// Character-bigram Jaccard similarity of two strings.
pub fn bigram_jaccard(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> BTreeSet<(char, char)> {
        let cs: Vec<char> = s.chars().collect();
        cs.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Find matching row pairs `(i, j)` with `i < j` via prefix blocking +
/// bigram-Jaccard matching.
pub fn resolve_entities(
    table: &Table,
    config: &ErConfig,
) -> rdi_table::Result<Vec<(usize, usize)>> {
    let col = table.column(&config.name_column)?;
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut names: Vec<Option<String>> = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        let v = col.value(i);
        let name = v.as_str().map(|s| s.to_lowercase());
        if let Some(n) = &name {
            let prefix: String = n.chars().take(config.block_prefix).collect();
            blocks.entry(prefix).or_default().push(i);
        }
        names.push(name);
    }
    let mut pairs = Vec::new();
    // BTreeMap iteration is already in sorted key order.
    for ids in blocks.values() {
        for (a, &i) in ids.iter().enumerate() {
            for &j in &ids[a + 1..] {
                let (Some(ni), Some(nj)) = (&names[i], &names[j]) else {
                    continue;
                };
                if bigram_jaccard(ni, nj) >= config.threshold {
                    pairs.push((i, j));
                }
            }
        }
    }
    pairs.sort_unstable();
    Ok(pairs)
}

/// Group matched pairs into entity clusters (connected components via
/// union-find): rows in one cluster are believed to be the same
/// real-world entity. Singletons are included, so the clusters partition
/// `0..num_rows`.
pub fn cluster_entities(pairs: &[(usize, usize)], num_rows: usize) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..num_rows).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for &(a, b) in pairs {
        assert!(a < num_rows && b < num_rows, "pair index out of range");
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..num_rows {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|c| c[0]);
    out
}

/// Deduplicate: keep the first row of every entity cluster.
pub fn deduplicate(table: &Table, pairs: &[(usize, usize)]) -> Table {
    let clusters = cluster_entities(pairs, table.num_rows());
    let keep: Vec<usize> = clusters.iter().map(|c| c[0]).collect();
    table.take(&keep)
}

/// Per-group precision/recall of predicted match pairs against truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErAudit {
    /// (group, precision, recall, true pair count), sorted by group.
    pub per_group: Vec<(String, f64, f64, usize)>,
    /// Overall precision.
    pub precision: f64,
    /// Overall recall.
    pub recall: f64,
}

/// Audit ER quality per group. A pair belongs to a group when *both* rows
/// are in that group; cross-group pairs count only toward the overall
/// numbers.
pub fn audit_er(
    table: &Table,
    predicted: &[(usize, usize)],
    truth: &[(usize, usize)],
    spec: &GroupSpec,
) -> rdi_table::Result<ErAudit> {
    let pred: BTreeSet<(usize, usize)> = predicted.iter().copied().collect();
    let tru: BTreeSet<(usize, usize)> = truth.iter().copied().collect();
    let tp_all = pred.intersection(&tru).count() as f64;
    let precision = if pred.is_empty() {
        1.0
    } else {
        tp_all / pred.len() as f64
    };
    let recall = if tru.is_empty() {
        1.0
    } else {
        tp_all / tru.len() as f64
    };

    let mut group_of = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        group_of.push(spec.key_of(table, i)?);
    }
    // BTreeSet dedups and yields groups already sorted.
    let groups: BTreeSet<_> = group_of.iter().cloned().collect();
    let mut per_group = Vec::new();
    for g in groups {
        let in_group = |p: &(usize, usize)| group_of[p.0] == g && group_of[p.1] == g;
        let gp: BTreeSet<_> = pred.iter().filter(|p| in_group(p)).collect();
        let gt: BTreeSet<_> = tru.iter().filter(|p| in_group(p)).collect();
        let tp = gp.intersection(&gt).count() as f64;
        let p = if gp.is_empty() {
            1.0
        } else {
            tp / gp.len() as f64
        };
        let r = if gt.is_empty() {
            1.0
        } else {
            tp / gt.len() as f64
        };
        per_group.push((g.to_string(), p, r, gt.len()));
    }
    Ok(ErAudit {
        per_group,
        precision,
        recall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    fn people(rows: &[(&str, &str)]) -> Table {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
        ]);
        let mut t = Table::new(schema);
        for (n, g) in rows {
            t.push_row(vec![Value::str(*n), Value::str(*g)]).unwrap();
        }
        t
    }

    #[test]
    fn bigram_similarity_behaves() {
        assert_eq!(bigram_jaccard("smith", "smith"), 1.0);
        assert!(bigram_jaccard("smith", "smyth") > 0.3);
        assert!(bigram_jaccard("smith", "garcia") < 0.1);
        assert_eq!(bigram_jaccard("a", "a"), 1.0); // no bigrams, equal
        assert_eq!(bigram_jaccard("a", "b"), 0.0);
    }

    #[test]
    fn finds_near_duplicates_within_blocks() {
        let t = people(&[
            ("jon smith", "a"),
            ("john smith", "a"),
            ("mary jones", "b"),
            ("garcia", "b"),
        ]);
        let pairs = resolve_entities(&t, &ErConfig::default()).unwrap();
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn blocking_prevents_cross_prefix_comparison() {
        // identical names but different first letters never compared
        let t = people(&[("anna", "a"), ("hanna", "a")]);
        let cfg = ErConfig {
            block_prefix: 1,
            threshold: 0.3,
            ..ErConfig::default()
        };
        assert!(resolve_entities(&t, &cfg).unwrap().is_empty());
    }

    #[test]
    fn audit_reports_per_group_gaps() {
        let t = people(&[
            ("jon smith", "a"),
            ("john smith", "a"),
            ("nguyen thi", "b"),
            ("nguyen t.", "b"),
        ]);
        // predictions found the group-a pair but missed group-b's
        let predicted = vec![(0, 1)];
        let truth = vec![(0, 1), (2, 3)];
        let audit = audit_er(&t, &predicted, &truth, &GroupSpec::new(vec!["g"])).unwrap();
        assert_eq!(audit.recall, 0.5);
        assert_eq!(audit.precision, 1.0);
        let a = audit.per_group.iter().find(|(g, ..)| g == "(a)").unwrap();
        let b = audit.per_group.iter().find(|(g, ..)| g == "(b)").unwrap();
        assert_eq!(a.2, 1.0); // recall for a
        assert_eq!(b.2, 0.0); // recall for b — biased linkage exposed
    }

    #[test]
    fn clustering_is_transitive() {
        // pairs (0,1), (1,2) → one cluster {0,1,2}; 3 is a singleton
        let clusters = cluster_entities(&[(0, 1), (1, 2)], 4);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn dedup_keeps_one_per_cluster() {
        let t = people(&[
            ("jon smith", "a"),
            ("john smith", "a"),
            ("johnn smith", "a"),
            ("mary jones", "b"),
        ]);
        let pairs = resolve_entities(&t, &ErConfig::default()).unwrap();
        let deduped = deduplicate(&t, &pairs);
        assert!(deduped.num_rows() < t.num_rows());
        assert!(deduped.num_rows() >= 2); // mary survives
                                          // the representative of the smith cluster is its first row
        assert_eq!(deduped.value(0, "name").unwrap(), Value::str("jon smith"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clustering_validates_indices() {
        cluster_entities(&[(0, 9)], 2);
    }

    #[test]
    fn empty_inputs_are_perfect() {
        let t = people(&[("x", "a")]);
        let audit = audit_er(&t, &[], &[], &GroupSpec::new(vec!["g"])).unwrap();
        assert_eq!(audit.precision, 1.0);
        assert_eq!(audit.recall, 1.0);
    }
}
