//! Interventional (causal) repair for algorithmic fairness — a
//! deliberately simplified take on "Interventional Fairness: Causal
//! Database Repair" (Salimi, Rodriguez, Howe, Suciu; SIGMOD 2019),
//! surveyed in tutorial §5: *"removing bias from data can be viewed as a
//! special case of data cleaning where the goal is to repair problematic
//! tuples or values that cause bias."*
//!
//! The paper's criterion — justifiable fairness — requires the target to
//! be conditionally independent of the sensitive attribute given the
//! *admissible* attributes (the legitimate causes). The minimal repair we
//! implement: within each stratum of the admissible attributes, the
//! target values of all groups are pooled and re-drawn, erasing exactly
//! the within-stratum dependence on the sensitive attribute while
//! preserving each stratum's overall target distribution (so admissible
//! effects survive).

use rand::Rng;
use rdi_table::{GroupSpec, Table, TableError, Value};

/// Report of a conditional-independence repair.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired table.
    pub table: Table,
    /// Rows whose target value changed.
    pub changed_rows: usize,
    /// Number of admissible strata processed.
    pub strata: usize,
}

/// Repair `target` so it is (empirically) conditionally independent of
/// the sensitive attributes given `admissible`, by within-stratum pooled
/// resampling.
///
/// Rows with a null target keep it; a stratum is the exact combination of
/// (non-null) admissible values.
pub fn repair_conditional_independence<R: Rng>(
    table: &Table,
    admissible: &[&str],
    target: &str,
    rng: &mut R,
) -> rdi_table::Result<RepairReport> {
    if admissible.is_empty() {
        return Err(TableError::SchemaMismatch(
            "interventional repair needs at least one admissible attribute".into(),
        ));
    }
    let strata_spec = GroupSpec::new(admissible.to_vec());
    let strata = strata_spec.partition(table)?;
    let tcol_idx = table.schema().index_of(target)?;
    let mut out = table.clone();
    let mut changed = 0;
    for rows in strata.values() {
        // pooled target values of the stratum
        let pool: Vec<Value> = rows
            .iter()
            .map(|&i| table.column_at(tcol_idx).value(i))
            .filter(|v| !v.is_null())
            .collect();
        if pool.is_empty() {
            continue;
        }
        for &i in rows {
            let old = table.column_at(tcol_idx).value(i);
            if old.is_null() {
                continue;
            }
            let new = pool[rng.gen_range(0..pool.len())].clone();
            if new != old {
                changed += 1;
            }
            out.set_value(i, target, new)?;
        }
    }
    Ok(RepairReport {
        table: out,
        changed_rows: changed,
        strata: strata.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_fairness::cramers_v;
    use rdi_table::{DataType, Field, Role, Schema};

    /// Outcome depends on BOTH qualification (admissible) and group
    /// (discriminatory): within each qualification level, group a is
    /// approved far more often.
    fn biased(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("group", DataType::Str).with_role(Role::Sensitive),
            Field::new("qualification", DataType::Str),
            Field::new("approved", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let g = if i % 2 == 0 { "a" } else { "b" };
            let q = if (i / 2) % 2 == 0 { "high" } else { "low" };
            let base = if q == "high" { 7 } else { 3 };
            let bonus = if g == "a" { 3 } else { -3 };
            let approved = (i % 10) < (base + bonus).clamp(0, 10) as usize;
            t.push_row(vec![Value::str(g), Value::str(q), Value::Bool(approved)])
                .unwrap();
        }
        t
    }

    fn group_target_association(t: &Table) -> f64 {
        let gs: Vec<String> = (0..t.num_rows())
            .map(|i| t.value(i, "group").unwrap().to_string())
            .collect();
        let ys: Vec<String> = (0..t.num_rows())
            .map(|i| t.value(i, "approved").unwrap().to_string())
            .collect();
        cramers_v(&gs, &ys)
    }

    #[test]
    fn repair_removes_within_stratum_dependence() {
        let t = biased(4000);
        let before = group_target_association(&t);
        assert!(before > 0.3, "before={before}");
        let mut rng = StdRng::seed_from_u64(1);
        let rep =
            repair_conditional_independence(&t, &["qualification"], "approved", &mut rng).unwrap();
        assert_eq!(rep.strata, 2);
        assert!(rep.changed_rows > 0);
        let after = group_target_association(&rep.table);
        assert!(after < 0.08, "after={after}");
    }

    #[test]
    fn admissible_effect_survives() {
        let t = biased(4000);
        let mut rng = StdRng::seed_from_u64(2);
        let rep =
            repair_conditional_independence(&t, &["qualification"], "approved", &mut rng).unwrap();
        // approval must still depend on qualification
        let approval_rate = |t: &Table, q: &str| {
            let mut yes = 0;
            let mut n = 0;
            for i in 0..t.num_rows() {
                if t.value(i, "qualification").unwrap() == Value::str(q) {
                    n += 1;
                    yes += t.value(i, "approved").unwrap().as_bool().unwrap() as usize;
                }
            }
            yes as f64 / n as f64
        };
        let high = approval_rate(&rep.table, "high");
        let low = approval_rate(&rep.table, "low");
        assert!(high > low + 0.2, "high={high} low={low}");
        // and each stratum's overall approval rate is (nearly) preserved
        let orig_high = approval_rate(&t, "high");
        assert!((high - orig_high).abs() < 0.05);
    }

    #[test]
    fn null_targets_untouched_and_errors() {
        let schema = Schema::new(vec![
            Field::new("q", DataType::Str),
            Field::new("y", DataType::Bool),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("h"), Value::Null]).unwrap();
        t.push_row(vec![Value::str("h"), Value::Bool(true)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rep = repair_conditional_independence(&t, &["q"], "y", &mut rng).unwrap();
        assert!(rep.table.value(0, "y").unwrap().is_null());
        assert!(repair_conditional_independence(&t, &[], "y", &mut rng).is_err());
    }
}
