//! Imputation accuracy parity (Zhang & Long, NeurIPS 2021).
//!
//! Given the ground-truth values of masked cells and an imputed table,
//! measure the per-group imputation error; the **imputation accuracy
//! parity difference** is the max pairwise gap. A method can look good on
//! average while systematically mis-imputing a minority group — this is
//! the metric that catches it.

use std::collections::BTreeMap;

use rdi_table::{GroupKey, GroupSpec, Table};
use serde::{Deserialize, Serialize};

/// Per-group imputation error report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParityReport {
    /// Per-group RMSE of imputed vs true values, sorted by group.
    pub group_rmse: Vec<(String, f64)>,
    /// Overall RMSE.
    pub overall_rmse: f64,
    /// Max pairwise RMSE gap across groups (the parity difference).
    pub parity_difference: f64,
}

/// Compute imputation accuracy parity for a numeric column.
///
/// `truth` holds `(row index, true value)` for each masked cell (as
/// returned by `rdi_datagen::inject_missing` plus the original table).
pub fn imputation_parity(
    imputed: &Table,
    column: &str,
    truth: &[(usize, f64)],
    spec: &GroupSpec,
) -> rdi_table::Result<ParityReport> {
    let mut per_group: BTreeMap<GroupKey, Vec<f64>> = BTreeMap::new();
    let mut all = Vec::with_capacity(truth.len());
    for &(i, true_val) in truth {
        let key = spec.key_of(imputed, i)?;
        let imp = imputed.value(i, column)?.as_f64().unwrap_or(f64::NAN);
        let err2 = if imp.is_nan() {
            // still missing (e.g. DropRows semantics) — treat as maximal
            // failure by using the truth itself as the error
            true_val * true_val
        } else {
            (imp - true_val).powi(2)
        };
        per_group.entry(key).or_default().push(err2);
        all.push(err2);
    }
    let rmse = |v: &[f64]| (v.iter().sum::<f64>() / v.len().max(1) as f64).sqrt();
    // BTreeMap iteration is already sorted by group key.
    let group_rmse: Vec<(GroupKey, f64)> =
        per_group.into_iter().map(|(k, v)| (k, rmse(&v))).collect();
    let max = group_rmse
        .iter()
        .map(|(_, e)| *e)
        .fold(f64::NEG_INFINITY, f64::max);
    let min = group_rmse
        .iter()
        .map(|(_, e)| *e)
        .fold(f64::INFINITY, f64::min);
    Ok(ParityReport {
        group_rmse: group_rmse
            .into_iter()
            .map(|(k, e)| (k.to_string(), e))
            .collect(),
        overall_rmse: rmse(&all),
        parity_difference: if all.is_empty() { 0.0 } else { max - min },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impute::{impute, ImputeStrategy};
    use rdi_table::{DataType, Field, Role, Schema, Value};

    /// Groups with very different x distributions; mask some cells.
    fn masked_table() -> (Table, Vec<(usize, f64)>) {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        let mut truth = Vec::new();
        // group a: x ≈ 0; group b: x ≈ 100; mask one cell per group
        for i in 0..10 {
            t.push_row(vec![Value::str("a"), Value::Float(i as f64 * 0.1)])
                .unwrap();
        }
        for i in 0..10 {
            t.push_row(vec![Value::str("b"), Value::Float(100.0 + i as f64 * 0.1)])
                .unwrap();
        }
        // mask rows 0 (a, true 0.0) and 10 (b, true 100.0)
        truth.push((0, 0.0));
        truth.push((10, 100.0));
        t.set_value(0, "x", Value::Null).unwrap();
        t.set_value(10, "x", Value::Null).unwrap();
        (t, truth)
    }

    #[test]
    fn global_mean_is_unfair_group_mean_is_fair() {
        let (t, truth) = masked_table();
        let spec = GroupSpec::new(vec!["g"]);

        let global = impute(&t, "x", &ImputeStrategy::Mean).unwrap();
        let rep_global = imputation_parity(&global, "x", &truth, &spec).unwrap();
        // global mean ≈ 52.7 → both groups err by ~50; errors are large
        // but *similar*, so parity diff is small while RMSE is huge.
        assert!(rep_global.overall_rmse > 40.0);

        let grouped = impute(&t, "x", &ImputeStrategy::GroupMean(spec.clone())).unwrap();
        let rep_grouped = imputation_parity(&grouped, "x", &truth, &spec).unwrap();
        assert!(rep_grouped.overall_rmse < 2.0);
        assert!(rep_grouped.parity_difference < rep_global.overall_rmse);
    }

    #[test]
    fn parity_difference_detects_one_sided_failure() {
        let (t, truth) = masked_table();
        let spec = GroupSpec::new(vec!["g"]);
        // impute everything with 0 → perfect for group a, terrible for b
        let mut bad = t.clone();
        bad.set_value(0, "x", Value::Float(0.0)).unwrap();
        bad.set_value(10, "x", Value::Float(0.0)).unwrap();
        let rep = imputation_parity(&bad, "x", &truth, &spec).unwrap();
        assert!(rep.parity_difference > 99.0, "pd={}", rep.parity_difference);
        let a = rep
            .group_rmse
            .iter()
            .find(|(g, _)| g.contains('a'))
            .unwrap();
        assert_eq!(a.1, 0.0);
    }

    #[test]
    fn empty_truth_is_zero() {
        let (t, _) = masked_table();
        let spec = GroupSpec::new(vec!["g"]);
        let rep = imputation_parity(&t, "x", &[], &spec).unwrap();
        assert_eq!(rep.parity_difference, 0.0);
        assert_eq!(rep.overall_rmse, 0.0);
    }
}
