//! Offline API-compatible subset of `criterion` (see CONTRIBUTING.md,
//! "Offline builds").
//!
//! Provides the `Criterion` / `benchmark_group` / `Bencher::iter`
//! surface the workspace benches use, backed by a simple
//! warmup-then-sample timer. Reports mean and min/max per benchmark on
//! stdout; there is no statistical analysis, plotting, or HTML output.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark manager handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, self.measurement_time, f);
        self
    }

    /// No-op finalizer for API parity.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks (result of [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Override the target measurement time for this group (no-op knob
    /// beyond storing it; kept for API parity).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, n, self.criterion.measurement_time, f);
        self
    }

    /// Run a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id string (accepts `&str`, `String`,
/// and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, target: Duration, mut f: F) {
    // Warmup + calibration: find an iteration count that takes a
    // meaningful fraction of the per-sample budget.
    let mut iters = 1u64;
    let per_sample = (target / samples as u32).max(Duration::from_micros(200));
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            8
        } else {
            (per_sample.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 8) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(per_iter[0]),
        fmt_time(mean),
        fmt_time(per_iter[per_iter.len() - 1]),
        samples,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group: `criterion_group!(benches, f1, f2)` or the
/// `config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_surface_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert!(fmt_time(2.5e-7).ends_with("ns"));
    }
}
