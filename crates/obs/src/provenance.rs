//! Typed provenance events (§2.5 transparency).
//!
//! The pipeline used to ship provenance as pre-rendered `Vec<String>`
//! lines — human-readable but unqueryable. These events carry the same
//! information as structured fields; [`ProvenanceEvent::render`]
//! reproduces the exact legacy line for each event, so scope notes and
//! log output are unchanged while audits and experiment harnesses can
//! now match on variants and read fields directly.

use serde::{Deserialize, Serialize};

/// One step of pipeline provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProvenanceEvent {
    /// Tailoring began: the problem shape and chosen policy.
    TailoringStarted {
        /// Number of groups in the DT problem.
        groups: usize,
        /// Number of sources available.
        sources: usize,
        /// Source-selection policy name.
        policy: String,
    },
    /// Tailoring finished.
    TailoringFinished {
        /// Draws issued (kept + discarded).
        draws: usize,
        /// Total cost paid.
        cost: f64,
        /// Whether every group met its requirement.
        satisfied: bool,
        /// Collected count per group.
        per_group: Vec<usize>,
    },
    /// A column was imputed.
    Imputed {
        /// Imputed column name.
        column: String,
        /// Null count before imputation.
        nulls_before: usize,
        /// Null count after imputation.
        nulls_after: usize,
        /// Debug rendering of the strategy used.
        strategy: String,
    },
    /// The nutritional label was generated.
    LabelGenerated,
    /// The requirement audit ran.
    Audited {
        /// Requirements that passed.
        passed: usize,
        /// Requirements audited.
        total: usize,
    },
    /// A source produced failures that the resilient executor retried
    /// or absorbed (one summary event per affected source, emitted
    /// after tailoring finishes).
    SourceFaults {
        /// Source name.
        source: String,
        /// Failed attempts per failure mode, as `(kind, count)` pairs
        /// in stable taxonomy order; zero-count modes omitted.
        by_kind: Vec<(String, u64)>,
        /// Retries spent on this source (attempts beyond each first).
        retries: u64,
    },
    /// A source was quarantined by its circuit breaker and receives no
    /// further requests this run.
    SourceQuarantined {
        /// Source name.
        source: String,
        /// Consecutive failed attempts that tripped the breaker.
        consecutive_failures: u32,
        /// Virtual tick at which the breaker opened.
        at_tick: u64,
    },
    /// The run completed with partial data: some requirements could not
    /// be met because sources failed or were quarantined.
    Degraded {
        /// Names of quarantined sources.
        quarantined: Vec<String>,
        /// Rows still missing per group (group index order).
        missing_per_group: Vec<usize>,
    },
    /// A selection policy decided a winner (or found nothing
    /// eligible). Emitted *before* the decision takes effect, one per
    /// routed `rdi_policy::SelectionPolicy::choose` call (high-rate
    /// sites emit the first decision of a run and count the rest —
    /// see DESIGN.md, "Policy engine").
    PolicyDecision {
        /// Decision-site id (`rdi_policy::PolicyId::as_str`).
        policy: String,
        /// Canonical FNV-1a hash of the deciding params.
        params_hash: u64,
        /// Candidates considered.
        considered: usize,
        /// Winning candidate key; `None` when nothing was eligible.
        winner: Option<String>,
        /// The winner's rendered score (`""` when no winner).
        winner_score: String,
        /// Candidates sharing the winner's exact score.
        ties: usize,
        /// Rule that separated tied candidates (`"none"` if untied).
        tie_break: String,
        /// Rendered `k=v` params (`∅` for defaults).
        params: String,
    },
    /// Free-form annotation (escape hatch for custom stages).
    Note {
        /// The annotation text; rendered verbatim.
        text: String,
    },
}

/// Build a [`ProvenanceEvent::PolicyDecision`] from a policy rationale
/// and count it: bumps the global `policy.decisions` counter and the
/// per-site `policy.{id}.decisions` counter. Call sites emit the
/// returned event into their audit stream *before* applying the
/// decision. High-rate sites (per-draw verdicts) instead cache the
/// counter handles and emit one exemplar event per run — see DESIGN.md,
/// "Policy engine".
pub fn policy_decision_event(r: &rdi_policy::Rationale) -> ProvenanceEvent {
    crate::counter("policy.decisions").inc();
    crate::counter(&format!("policy.{}.decisions", r.policy)).inc();
    ProvenanceEvent::PolicyDecision {
        policy: r.policy.to_string(),
        params_hash: r.params_hash,
        considered: r.considered,
        winner: r.winner.clone(),
        winner_score: r.winner_score.clone(),
        ties: r.ties,
        tie_break: r.tie_break.to_string(),
        params: r.params.clone(),
    }
}

impl ProvenanceEvent {
    /// The legacy human-readable line for this event — byte-identical
    /// to what the string-based provenance log used to record.
    pub fn render(&self) -> String {
        match self {
            ProvenanceEvent::TailoringStarted {
                groups,
                sources,
                policy,
            } => format!("tailoring: {groups} groups, {sources} sources, policy `{policy}`"),
            ProvenanceEvent::TailoringFinished {
                draws,
                cost,
                satisfied,
                per_group,
            } => format!(
                "tailoring finished: {draws} draws, cost {cost:.1}, satisfied={satisfied}; per-group counts {per_group:?}"
            ),
            ProvenanceEvent::Imputed {
                column,
                nulls_before,
                nulls_after,
                strategy,
            } => format!("imputed `{column}` ({nulls_before} → {nulls_after} nulls) with {strategy}"),
            ProvenanceEvent::LabelGenerated => "nutritional label generated".to_string(),
            ProvenanceEvent::Audited { passed, total } => {
                format!("audit: {passed}/{total} requirements passed")
            }
            ProvenanceEvent::SourceFaults {
                source,
                by_kind,
                retries,
            } => {
                let kinds = by_kind
                    .iter()
                    .map(|(k, n)| format!("{k}×{n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("source `{source}` faults: {kinds}; {retries} retries")
            }
            ProvenanceEvent::SourceQuarantined {
                source,
                consecutive_failures,
                at_tick,
            } => format!(
                "source `{source}` quarantined after {consecutive_failures} consecutive failures (tick {at_tick})"
            ),
            ProvenanceEvent::Degraded {
                quarantined,
                missing_per_group,
            } => format!(
                "DEGRADED: quarantined sources {quarantined:?}; rows not collected per group {missing_per_group:?}"
            ),
            ProvenanceEvent::PolicyDecision {
                policy,
                params_hash,
                considered,
                winner,
                winner_score,
                ties,
                tie_break,
                params,
            } => match winner {
                Some(w) => format!(
                    "policy `{policy}` chose `{w}` (score {winner_score}) from {considered} \
                     candidate(s); ties={ties} tie_break={tie_break} params={params} \
                     params_hash={params_hash:016x}"
                ),
                None => format!(
                    "policy `{policy}` found no eligible candidate among {considered}; \
                     params={params} params_hash={params_hash:016x}"
                ),
            },
            ProvenanceEvent::Note { text } => text.clone(),
        }
    }
}

impl std::fmt::Display for ProvenanceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered log of [`ProvenanceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceLog(pub Vec<ProvenanceEvent>);

impl ProvenanceLog {
    /// An empty log.
    pub fn new() -> Self {
        ProvenanceLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: ProvenanceEvent) {
        self.0.push(event);
    }

    /// The legacy rendered lines, in order.
    pub fn lines(&self) -> Vec<String> {
        self.0.iter().map(ProvenanceEvent::render).collect()
    }
}

impl std::ops::Deref for ProvenanceLog {
    type Target = [ProvenanceEvent];

    fn deref(&self) -> &[ProvenanceEvent] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a ProvenanceLog {
    type Item = &'a ProvenanceEvent;
    type IntoIter = std::slice::Iter<'a, ProvenanceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ProvenanceLog {
        let mut log = ProvenanceLog::new();
        log.push(ProvenanceEvent::TailoringStarted {
            groups: 2,
            sources: 3,
            policy: "ratio_coll".into(),
        });
        log.push(ProvenanceEvent::TailoringFinished {
            draws: 120,
            cost: 120.0,
            satisfied: true,
            per_group: vec![60, 60],
        });
        log.push(ProvenanceEvent::Imputed {
            column: "x1".into(),
            nulls_before: 9,
            nulls_after: 0,
            strategy: "Mean".into(),
        });
        log.push(ProvenanceEvent::LabelGenerated);
        log.push(ProvenanceEvent::Audited {
            passed: 3,
            total: 4,
        });
        log
    }

    #[test]
    fn render_matches_legacy_lines() {
        assert_eq!(
            sample_log().lines(),
            vec![
                "tailoring: 2 groups, 3 sources, policy `ratio_coll`",
                "tailoring finished: 120 draws, cost 120.0, satisfied=true; per-group counts [60, 60]",
                "imputed `x1` (9 → 0 nulls) with Mean",
                "nutritional label generated",
                "audit: 3/4 requirements passed",
            ]
        );
    }

    #[test]
    fn resilience_events_render() {
        let faults = ProvenanceEvent::SourceFaults {
            source: "s1".into(),
            by_kind: vec![("unavailable".into(), 3), ("timeout".into(), 1)],
            retries: 4,
        };
        assert_eq!(
            faults.render(),
            "source `s1` faults: unavailable×3, timeout×1; 4 retries"
        );
        let quarantined = ProvenanceEvent::SourceQuarantined {
            source: "s1".into(),
            consecutive_failures: 5,
            at_tick: 17,
        };
        assert_eq!(
            quarantined.render(),
            "source `s1` quarantined after 5 consecutive failures (tick 17)"
        );
        let degraded = ProvenanceEvent::Degraded {
            quarantined: vec!["s1".into()],
            missing_per_group: vec![0, 12],
        };
        assert_eq!(
            degraded.render(),
            "DEGRADED: quarantined sources [\"s1\"]; rows not collected per group [0, 12]"
        );
    }

    #[test]
    fn resilience_events_round_trip_through_json() {
        let mut log = ProvenanceLog::new();
        log.push(ProvenanceEvent::SourceFaults {
            source: "s0".into(),
            by_kind: vec![("corrupt".into(), 2)],
            retries: 2,
        });
        log.push(ProvenanceEvent::SourceQuarantined {
            source: "s0".into(),
            consecutive_failures: 5,
            at_tick: 31,
        });
        log.push(ProvenanceEvent::Degraded {
            quarantined: vec!["s0".into()],
            missing_per_group: vec![7],
        });
        let text = serde_json::to_string(&log).unwrap();
        let back: ProvenanceLog = serde_json::from_str(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn events_round_trip_through_json() {
        let log = sample_log();
        let text = serde_json::to_string(&log).unwrap();
        let back: ProvenanceLog = serde_json::from_str(&text).unwrap();
        assert_eq!(back, log);
    }

    fn policy_events() -> (ProvenanceEvent, ProvenanceEvent) {
        let chose = ProvenanceEvent::PolicyDecision {
            policy: "discovery.union_rank".into(),
            params_hash: 0x0123_4567_89ab_cdef,
            considered: 3,
            winner: Some("alpha".into()),
            winner_score: "0.75".into(),
            ties: 2,
            tie_break: "key_asc".into(),
            params: "∅".into(),
        };
        let none = ProvenanceEvent::PolicyDecision {
            policy: "core.redirect".into(),
            params_hash: 1,
            considered: 0,
            winner: None,
            winner_score: String::new(),
            ties: 0,
            tie_break: "none".into(),
            params: "dir=max".into(),
        };
        (chose, none)
    }

    #[test]
    fn policy_decision_renders_both_outcomes() {
        let (chose, none) = policy_events();
        assert_eq!(
            chose.render(),
            "policy `discovery.union_rank` chose `alpha` (score 0.75) from 3 candidate(s); \
             ties=2 tie_break=key_asc params=∅ params_hash=0123456789abcdef"
        );
        assert_eq!(
            none.render(),
            "policy `core.redirect` found no eligible candidate among 0; params=dir=max \
             params_hash=0000000000000001"
        );
    }

    #[test]
    fn policy_decision_round_trips_through_json() {
        let (chose, none) = policy_events();
        let mut log = ProvenanceLog::new();
        log.push(chose);
        log.push(none);
        let text = serde_json::to_string(&log).unwrap();
        let back: ProvenanceLog = serde_json::from_str(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn display_delegates_to_render() {
        let e = ProvenanceEvent::Note { text: "hi".into() };
        assert_eq!(format!("{e}"), "hi");
    }
}
