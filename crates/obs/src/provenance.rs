//! Typed provenance events (§2.5 transparency).
//!
//! The pipeline used to ship provenance as pre-rendered `Vec<String>`
//! lines — human-readable but unqueryable. These events carry the same
//! information as structured fields; [`ProvenanceEvent::render`]
//! reproduces the exact legacy line for each event, so scope notes and
//! log output are unchanged while audits and experiment harnesses can
//! now match on variants and read fields directly.

use serde::{Deserialize, Serialize};

/// One step of pipeline provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProvenanceEvent {
    /// Tailoring began: the problem shape and chosen policy.
    TailoringStarted {
        /// Number of groups in the DT problem.
        groups: usize,
        /// Number of sources available.
        sources: usize,
        /// Source-selection policy name.
        policy: String,
    },
    /// Tailoring finished.
    TailoringFinished {
        /// Draws issued (kept + discarded).
        draws: usize,
        /// Total cost paid.
        cost: f64,
        /// Whether every group met its requirement.
        satisfied: bool,
        /// Collected count per group.
        per_group: Vec<usize>,
    },
    /// A column was imputed.
    Imputed {
        /// Imputed column name.
        column: String,
        /// Null count before imputation.
        nulls_before: usize,
        /// Null count after imputation.
        nulls_after: usize,
        /// Debug rendering of the strategy used.
        strategy: String,
    },
    /// The nutritional label was generated.
    LabelGenerated,
    /// The requirement audit ran.
    Audited {
        /// Requirements that passed.
        passed: usize,
        /// Requirements audited.
        total: usize,
    },
    /// Free-form annotation (escape hatch for custom stages).
    Note {
        /// The annotation text; rendered verbatim.
        text: String,
    },
}

impl ProvenanceEvent {
    /// The legacy human-readable line for this event — byte-identical
    /// to what the string-based provenance log used to record.
    pub fn render(&self) -> String {
        match self {
            ProvenanceEvent::TailoringStarted {
                groups,
                sources,
                policy,
            } => format!("tailoring: {groups} groups, {sources} sources, policy `{policy}`"),
            ProvenanceEvent::TailoringFinished {
                draws,
                cost,
                satisfied,
                per_group,
            } => format!(
                "tailoring finished: {draws} draws, cost {cost:.1}, satisfied={satisfied}; per-group counts {per_group:?}"
            ),
            ProvenanceEvent::Imputed {
                column,
                nulls_before,
                nulls_after,
                strategy,
            } => format!("imputed `{column}` ({nulls_before} → {nulls_after} nulls) with {strategy}"),
            ProvenanceEvent::LabelGenerated => "nutritional label generated".to_string(),
            ProvenanceEvent::Audited { passed, total } => {
                format!("audit: {passed}/{total} requirements passed")
            }
            ProvenanceEvent::Note { text } => text.clone(),
        }
    }
}

impl std::fmt::Display for ProvenanceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered log of [`ProvenanceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceLog(pub Vec<ProvenanceEvent>);

impl ProvenanceLog {
    /// An empty log.
    pub fn new() -> Self {
        ProvenanceLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: ProvenanceEvent) {
        self.0.push(event);
    }

    /// The legacy rendered lines, in order.
    pub fn lines(&self) -> Vec<String> {
        self.0.iter().map(ProvenanceEvent::render).collect()
    }
}

impl std::ops::Deref for ProvenanceLog {
    type Target = [ProvenanceEvent];

    fn deref(&self) -> &[ProvenanceEvent] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a ProvenanceLog {
    type Item = &'a ProvenanceEvent;
    type IntoIter = std::slice::Iter<'a, ProvenanceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ProvenanceLog {
        let mut log = ProvenanceLog::new();
        log.push(ProvenanceEvent::TailoringStarted {
            groups: 2,
            sources: 3,
            policy: "ratio_coll".into(),
        });
        log.push(ProvenanceEvent::TailoringFinished {
            draws: 120,
            cost: 120.0,
            satisfied: true,
            per_group: vec![60, 60],
        });
        log.push(ProvenanceEvent::Imputed {
            column: "x1".into(),
            nulls_before: 9,
            nulls_after: 0,
            strategy: "Mean".into(),
        });
        log.push(ProvenanceEvent::LabelGenerated);
        log.push(ProvenanceEvent::Audited {
            passed: 3,
            total: 4,
        });
        log
    }

    #[test]
    fn render_matches_legacy_lines() {
        assert_eq!(
            sample_log().lines(),
            vec![
                "tailoring: 2 groups, 3 sources, policy `ratio_coll`",
                "tailoring finished: 120 draws, cost 120.0, satisfied=true; per-group counts [60, 60]",
                "imputed `x1` (9 → 0 nulls) with Mean",
                "nutritional label generated",
                "audit: 3/4 requirements passed",
            ]
        );
    }

    #[test]
    fn events_round_trip_through_json() {
        let log = sample_log();
        let text = serde_json::to_string(&log).unwrap();
        let back: ProvenanceLog = serde_json::from_str(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn display_delegates_to_render() {
        let e = ProvenanceEvent::Note { text: "hi".into() };
        assert_eq!(format!("{e}"), "hi");
    }
}
