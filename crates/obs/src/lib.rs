//! # rdi-obs
//!
//! Observability for the RDI toolkit (§2.5 transparency, RAIDS-style
//! introspectable infrastructure): a zero-dependency layer — std plus the
//! workspace's offline compat crates only — giving every pipeline stage
//!
//! * a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s,
//! * lightweight [`span`] timers (RAII guards with explicit
//!   parent/child nesting tracked per thread), and
//! * a typed [`ProvenanceEvent`] log whose [`ProvenanceEvent::render`]
//!   output preserves the human-readable provenance lines the pipeline
//!   has always shipped.
//!
//! # Determinism contract
//!
//! Counter increments are integer additions on atomics — commutative and
//! associative — so as long as call sites increment by amounts that are
//! a function of the *work* (items sketched, nodes counted, draws made)
//! and not of the schedule, total counts are **bitwise identical for any
//! `RDI_THREADS`**. The instrumented kernels in `rdi-discovery`,
//! `rdi-coverage`, `rdi-joinsample`, `rdi-tailor`, and `rdi-par` all
//! follow that rule (verified by property tests). Histogram *bucket
//! counts* carry the same guarantee; histogram float `sum`s, span
//! timings, and gauges (last-write-wins) do not.
//!
//! # Metric naming
//!
//! `<layer>.<metric>` in `snake_case`: `coverage.nodes_evaluated`,
//! `joinsample.olken_attempts`, `par.tasks_dispatched`, … The snapshot
//! ([`MetricsRegistry::snapshot_json`]) sorts names, so emitted JSON is
//! stable for diffing.

#![warn(missing_docs)]

mod metrics;
mod names;
mod provenance;
mod span;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use names::METRIC_NAMES;
pub use provenance::{policy_decision_event, ProvenanceEvent, ProvenanceLog};
pub use span::{SpanGuard, SpanRecord};

use std::sync::Arc;
use std::sync::OnceLock;

/// The process-wide default registry. Library instrumentation records
/// here; experiment binaries snapshot it on exit.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Counter `name` in the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Gauge `name` in the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Histogram `name` in the [`global`] registry (see
/// [`MetricsRegistry::histogram`] for bucket semantics).
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

/// Open a timing span on the [`global`] registry; the returned guard
/// records on drop. Nested calls on the same thread record
/// slash-separated paths (`parent/child`).
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}
