//! Named counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::span::{SpanGuard, SpanRecord};

/// A monotonically increasing integer metric.
///
/// Increments are atomic integer additions, so the total is independent
/// of which thread performed each increment — the basis of the
/// determinism contract (see the crate docs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point metric (plus a monotone
/// [`Gauge::set_max`] for peaks). Not covered by the determinism
/// contract except for `set_max` over schedule-independent values.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (compare-and-swap max; order-independent, so peaks recorded from
    /// parallel workers are deterministic).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A histogram with fixed upper-bound buckets plus an overflow bucket.
///
/// A recorded value lands in the first bucket whose upper bound is
/// `>= value` (bounds are inclusive); values above the last bound land
/// in the overflow bucket. Bucket counts are integer atomics and share
/// the counter determinism guarantee; `sum` is a float accumulation
/// whose exact value may depend on accumulation order under
/// parallelism.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts: one entry per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (order-dependent under parallelism).
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A registry of named metrics plus the span log.
///
/// Handles ([`Arc<Counter>`] etc.) are cheap to clone and stay valid for
/// the registry's lifetime — including across [`MetricsRegistry::reset`],
/// which zeroes values but never drops entries, so call sites may cache
/// handles in statics.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    clock: ClockSource,
}

/// Time source for span durations.
///
/// `Wall` (the default) reads the OS monotonic clock. `Fake` is a
/// per-registry tick counter: every clock read returns the next integer,
/// so span "nanos" become deterministic tick deltas and snapshots are
/// byte-reproducible across runs — selected by `RDI_FAKE_CLOCK=1` in the
/// environment or [`MetricsRegistry::with_fake_clock`].
#[derive(Debug)]
enum ClockSource {
    Wall,
    Fake(AtomicU64),
}

/// An opaque span start time from either clock source.
#[derive(Debug)]
pub(crate) enum ClockInstant {
    Wall(std::time::Instant),
    Fake(u64),
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        let fake = std::env::var("RDI_FAKE_CLOCK").is_ok_and(|v| v == "1");
        MetricsRegistry {
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
            spans: Mutex::default(),
            clock: if fake {
                ClockSource::Fake(AtomicU64::new(0))
            } else {
                ClockSource::Wall
            },
        }
    }
}

/// Lock a registry mutex, recovering from poisoning: every value held
/// under these locks is a plain aggregate (map of handles, span log),
/// so a panic mid-update cannot leave a broken invariant — continuing
/// with the inner value is always safe.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An empty registry (tests and embedded uses; library
    /// instrumentation uses [`crate::global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A registry whose span clock is the deterministic tick counter
    /// regardless of `RDI_FAKE_CLOCK` — for tests that assert on span
    /// durations.
    pub fn with_fake_clock() -> Self {
        MetricsRegistry {
            clock: ClockSource::Fake(AtomicU64::new(0)),
            ..MetricsRegistry::default()
        }
    }

    /// True when span durations come from the deterministic tick
    /// counter rather than the wall clock.
    pub fn uses_fake_clock(&self) -> bool {
        matches!(self.clock, ClockSource::Fake(_))
    }

    /// Read the span clock: a wall instant, or the next tick.
    pub(crate) fn clock_now(&self) -> ClockInstant {
        match &self.clock {
            ClockSource::Wall => ClockInstant::Wall(std::time::Instant::now()),
            ClockSource::Fake(ticks) => {
                ClockInstant::Fake(ticks.fetch_add(1, Ordering::Relaxed) + 1)
            }
        }
    }

    /// Nanoseconds (wall) or elapsed ticks (fake) since `start`.
    pub(crate) fn clock_elapsed(&self, start: &ClockInstant) -> u64 {
        match (start, &self.clock) {
            (ClockInstant::Wall(t), _) => t.elapsed().as_nanos() as u64,
            (ClockInstant::Fake(s), ClockSource::Fake(ticks)) => {
                (ticks.fetch_add(1, Ordering::Relaxed) + 1).saturating_sub(*s)
            }
            // A fake start can only come from this registry's own fake
            // clock, so this arm is unreachable; 0 keeps it total.
            (ClockInstant::Fake(_), ClockSource::Wall) => 0,
        }
    }

    /// The counter named `name`, created on first access.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first access.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created with `bounds` on first
    /// access (later calls ignore `bounds` and return the existing
    /// histogram).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Open a timing span; the guard records into this registry's span
    /// log on drop. See [`crate::span`].
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self, name)
    }

    /// All finished span records, in completion order (children before
    /// parents).
    pub fn span_records(&self) -> Vec<SpanRecord> {
        lock(&self.spans).clone()
    }

    /// Zero every metric and clear the span log. Entries (and therefore
    /// cached handles) survive.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
        lock(&self.spans).clear();
    }

    /// The snapshot as a JSON tree:
    ///
    /// ```json
    /// {"counters": {"name": 3},
    ///  "gauges": {"name": 1.5},
    ///  "histograms": {"name": {"bounds": [..], "counts": [..],
    ///                          "count": 2, "sum": 3.0}},
    ///  "spans": {"path": {"count": 1, "total_ns": 120}}}
    /// ```
    ///
    /// Names are sorted, so the layout is deterministic.
    pub fn snapshot_value(&self) -> Value {
        let counters: Vec<(String, Value)> = lock(&self.counters)
            .iter()
            .map(|(k, c)| (k.clone(), Value::U64(c.get())))
            .collect();
        let gauges: Vec<(String, Value)> = lock(&self.gauges)
            .iter()
            .map(|(k, g)| (k.clone(), Value::F64(g.get())))
            .collect();
        let histograms: Vec<(String, Value)> = lock(&self.histograms)
            .iter()
            .map(|(k, h)| {
                let v = Value::Obj(vec![
                    (
                        "bounds".into(),
                        Value::Arr(h.bounds().iter().map(|&b| Value::F64(b)).collect()),
                    ),
                    (
                        "counts".into(),
                        Value::Arr(h.bucket_counts().into_iter().map(Value::U64).collect()),
                    ),
                    ("count".into(), Value::U64(h.count())),
                    ("sum".into(), Value::F64(h.sum())),
                ]);
                (k.clone(), v)
            })
            .collect();
        // Aggregate spans per path, sorted.
        let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for r in lock(&self.spans).iter() {
            let e = agg.entry(r.path.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.nanos;
        }
        let spans: Vec<(String, Value)> = agg
            .into_iter()
            .map(|(path, (count, ns))| {
                (
                    path,
                    Value::Obj(vec![
                        ("count".into(), Value::U64(count)),
                        ("total_ns".into(), Value::U64(ns)),
                    ]),
                )
            })
            .collect();
        Value::Obj(vec![
            ("counters".into(), Value::Obj(counters)),
            ("gauges".into(), Value::Obj(gauges)),
            ("histograms".into(), Value::Obj(histograms)),
            ("spans".into(), Value::Obj(spans)),
        ])
    }

    /// [`MetricsRegistry::snapshot_value`] as compact JSON text.
    pub fn snapshot_json(&self) -> String {
        // rdi-lint: allow(R5): serializing an in-memory Value tree built by snapshot_value cannot fail
        serde_json::to_string(&self.snapshot_value()).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_reset_keep_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.hits");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(reg.counter("x.hits").get(), 4, "same entry by name");
        reg.reset();
        assert_eq!(c.get(), 0, "cached handle sees the reset");
        c.inc();
        assert_eq!(reg.counter("x.hits").get(), 1);
    }

    #[test]
    fn gauge_set_and_set_max() {
        let g = Gauge::default();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5, "set_max never lowers");
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        // on-boundary values land in the bucket they bound
        for v in [0.0, 1.0] {
            h.record(v);
        }
        h.record(1.000001); // just above → second bucket
        h.record(10.0);
        h.record(100.0);
        h.record(100.5); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (0.0 + 1.0 + 1.000001 + 10.0 + 100.0 + 100.5)).abs() < 1e-9);
        assert_eq!(h.bounds(), &[1.0, 10.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        MetricsRegistry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn counter_totals_are_thread_invariant() {
        // The same 1000 increments, split across different numbers of
        // std threads, always total 1000.
        let mut totals = Vec::new();
        for threads in [1usize, 2, 8] {
            let reg = MetricsRegistry::new();
            let c = reg.counter("work.items");
            std::thread::scope(|s| {
                for t in 0..threads {
                    let c = Arc::clone(&c);
                    let per = 1000 / threads + usize::from(t < 1000 % threads);
                    s.spawn(move || {
                        for _ in 0..per {
                            c.inc();
                        }
                    });
                }
            });
            totals.push(c.get());
        }
        assert_eq!(totals, vec![1000, 1000, 1000]);
    }

    #[test]
    fn snapshot_round_trips_through_compat_serde_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.gauge("a.cost").set(1.5);
        reg.histogram("a.lat", &[1.0, 2.0]).record(1.5);
        drop(reg.span("stage"));
        let text = reg.snapshot_json();
        let back: Value = serde_json::from_str(&text).unwrap();
        // the parser reads small integers back as I64 where the snapshot
        // holds U64, so round-trip equality is checked on the re-rendered
        // text (identical) and on the semantic accessors below
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
        assert_eq!(back.member("counters").member("a.count").as_u64(), Some(7));
        assert_eq!(back.member("gauges").member("a.cost").as_f64(), Some(1.5));
        let h = back.member("histograms").member("a.lat");
        assert_eq!(h.member("count").as_u64(), Some(1));
        assert_eq!(
            back.member("spans")
                .member("stage")
                .member("count")
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn global_registry_is_shared() {
        let c = crate::counter("obs_test.global_counter");
        let before = c.get();
        crate::counter("obs_test.global_counter").add(2);
        assert_eq!(c.get(), before + 2);
    }
}
