//! The metric-name registry for the serving, actor, fault, and policy
//! layers.
//!
//! Every `serve.*`, `actor.*`, `fault.*`, or `policy.*` counter/gauge/
//! histogram/span name updated anywhere in the workspace must appear
//! here exactly once — rdi-lint's R12 metrics-consistency rule cross-checks this
//! list against the call sites, the CI expect-lists, and the checked-in
//! goldens, so a silent rename (the drift byte-replay CI cannot see
//! until the golden churns) fails the lint gate instead.
//!
//! Names with a `{…}` segment are **patterns** for families constructed
//! with `format!` at runtime (one entry covers the whole family).
//! Other prefixes (`executor.*`, `coverage.*`, `tailor.*`, …) predate
//! the registry policy and are covered only by the asserted-names
//! check; extending the policy to them means adding their names here
//! and widening `REGISTRY_PREFIXES` in rdi-lint.

/// All registered metric names, sorted; see the module docs for the
/// registry policy.
pub const METRIC_NAMES: &[&str] = &[
    "actor.delivery_errors",
    "actor.mailbox_depth",
    "actor.messages_delivered",
    "actor.scheduler_steps",
    "fault.breaker.closed",
    "fault.breaker.failures",
    "fault.breaker.opened",
    "fault.injected.{kind}",
    "policy.decisions",
    "policy.{id}.decisions",
    "serve.batch",
    "serve.batch_size",
    "serve.batches",
    "serve.breaker_probes",
    "serve.breaker_recoveries",
    "serve.breaker_trips",
    "serve.cache.bytes",
    "serve.cache.evicted_bytes",
    "serve.cache.evictions",
    "serve.cache.hits",
    "serve.cache.invalidated",
    "serve.cache.misses",
    "serve.candidates_scored",
    "serve.delta.rows_applied",
    "serve.index.tables",
    "serve.queue_depth",
    "serve.requests",
    "serve.requests_degraded",
    "serve.requests_failed",
    "serve.shard.routed",
    "serve.shard.{i}.cache_bytes",
    "serve.shard.{i}.tables",
    "serve.shed",
    "serve.tailor",
    "serve.tenant.{t}.admitted",
    "serve.tenant.{t}.failed",
    "serve.tenant.{t}.requests",
    "serve.tenant.{t}.shed_breaker",
    "serve.tenant.{t}.shed_queue",
    "serve.tenant.{t}.shed_quota",
    "serve.tenants",
];
