//! RAII span timers with per-thread parent/child nesting.
//!
//! Durations come from the registry's clock source: the wall clock by
//! default, or a deterministic tick counter under `RDI_FAKE_CLOCK=1`
//! (see [`MetricsRegistry::with_fake_clock`]).

use std::cell::RefCell;

use crate::metrics::ClockInstant;
use crate::MetricsRegistry;

thread_local! {
    /// Names of the spans currently open on this thread, outermost
    /// first. Nesting is tracked per thread: spans opened on parallel
    /// workers do not inherit the spawning thread's stack.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// One finished span: its slash-separated nesting path and wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// `outer/inner` path of span names at completion time.
    pub path: String,
    /// Elapsed wall time in nanoseconds.
    pub nanos: u64,
}

/// Guard returned by [`MetricsRegistry::span`] / [`crate::span`]:
/// records a [`SpanRecord`] into the registry when dropped. Guards are
/// expected to drop in LIFO order (ordinary scoping guarantees this);
/// they are deliberately `!Send` so a span cannot close on a different
/// thread than it opened on.
pub struct SpanGuard<'r> {
    registry: &'r MetricsRegistry,
    path: String,
    start: ClockInstant,
    /// Keep the guard `!Send`: the thread-local stack entry must be
    /// popped by the opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<'r> SpanGuard<'r> {
    pub(crate) fn enter(registry: &'r MetricsRegistry, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_string());
            stack.join("/")
        });
        SpanGuard {
            registry,
            path,
            start: registry.clock_now(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// The span's full nesting path (`outer/inner`).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let nanos = self.registry.clock_elapsed(&self.start);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::metrics::lock(&self.registry.spans).push(SpanRecord {
            path: std::mem::take(&mut self.path),
            nanos,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_paths_and_completion_order() {
        let reg = MetricsRegistry::new();
        {
            let outer = reg.span("pipeline");
            assert_eq!(outer.path(), "pipeline");
            {
                let inner = reg.span("tailor");
                assert_eq!(inner.path(), "pipeline/tailor");
                let deepest = reg.span("draw");
                assert_eq!(deepest.path(), "pipeline/tailor/draw");
            }
            let sibling = reg.span("audit");
            assert_eq!(sibling.path(), "pipeline/audit");
        }
        let records = reg.span_records();
        let paths: Vec<&str> = records.iter().map(|r| r.path.as_str()).collect();
        // children complete before parents; siblings in drop order
        assert_eq!(
            paths,
            vec![
                "pipeline/tailor/draw",
                "pipeline/tailor",
                "pipeline/audit",
                "pipeline"
            ]
        );
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let reg = MetricsRegistry::new();
        drop(reg.span("a"));
        drop(reg.span("b"));
        let paths: Vec<String> = reg.span_records().into_iter().map(|r| r.path).collect();
        assert_eq!(paths, vec!["a", "b"]);
    }

    #[test]
    fn fake_clock_spans_are_deterministic() {
        // Two independent registries replay the identical span structure
        // and must agree byte-for-byte — tick deltas, not wall time.
        let run = || {
            let reg = MetricsRegistry::with_fake_clock();
            assert!(reg.uses_fake_clock());
            {
                let _outer = reg.span("outer");
                let _inner = reg.span("inner");
            }
            reg.span_records()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // outer opens at tick 1, inner spans ticks 2..3, outer closes at 4
        assert_eq!(
            a[0],
            SpanRecord {
                path: "outer/inner".into(),
                nanos: 1
            }
        );
        assert_eq!(
            a[1],
            SpanRecord {
                path: "outer".into(),
                nanos: 3
            }
        );
    }

    #[test]
    fn fake_clock_snapshot_is_reproducible() {
        let snap = || {
            let reg = MetricsRegistry::with_fake_clock();
            {
                let _s = reg.span("work");
            }
            reg.counter("hits").inc();
            reg.snapshot_json()
        };
        assert_eq!(snap(), snap());
    }

    #[test]
    fn wall_clock_is_the_default() {
        assert!(!MetricsRegistry::new().uses_fake_clock());
    }

    #[test]
    fn worker_threads_start_fresh_stacks() {
        let reg = MetricsRegistry::new();
        let _outer = reg.span("outer");
        std::thread::scope(|s| {
            s.spawn(|| {
                let inner = reg.span("worker");
                // no inheritance across threads
                assert_eq!(inner.path(), "worker");
            });
        });
    }
}
