//! Per-mode fault-injection rates.

use rand::{Rng, RngCore};
use rdi_tailor::SourceError;

/// Injection rates for each failure mode, each a per-draw probability.
///
/// The four rates must be finite, non-negative, and sum to at most 1.0
/// (validated by the constructors and [`FaultSpec::validate`]). A spec
/// with [`FaultSpec::total`] of 0.0 injects nothing and is guaranteed
/// not to consume any randomness, which is what makes a rate-0.0
/// [`crate::FaultySource`] bitwise identical to the bare source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// P(draw fails with [`SourceError::Unavailable`]).
    pub unavailable: f64,
    /// P(draw fails with [`SourceError::Corrupt`]).
    pub corrupt: f64,
    /// P(draw fails with [`SourceError::Truncated`]).
    pub truncated: f64,
    /// P(draw fails with [`SourceError::Timeout`]).
    pub timeout: f64,
}

impl FaultSpec {
    /// No faults at all.
    pub fn none() -> Self {
        FaultSpec {
            unavailable: 0.0,
            corrupt: 0.0,
            truncated: 0.0,
            timeout: 0.0,
        }
    }

    /// A total per-draw failure rate split evenly across the four modes.
    pub fn uniform(total: f64) -> Self {
        let spec = FaultSpec {
            unavailable: total / 4.0,
            corrupt: total / 4.0,
            truncated: total / 4.0,
            timeout: total / 4.0,
        };
        spec.validate();
        spec
    }

    /// A source that fails every draw with [`SourceError::Unavailable`]
    /// — the "host is down" scenario.
    pub fn dead() -> Self {
        FaultSpec {
            unavailable: 1.0,
            corrupt: 0.0,
            truncated: 0.0,
            timeout: 0.0,
        }
    }

    /// Builder: set the [`SourceError::Unavailable`] rate.
    pub fn with_unavailable(mut self, rate: f64) -> Self {
        self.unavailable = rate;
        self.validate();
        self
    }

    /// Builder: set the [`SourceError::Corrupt`] rate.
    pub fn with_corrupt(mut self, rate: f64) -> Self {
        self.corrupt = rate;
        self.validate();
        self
    }

    /// Builder: set the [`SourceError::Truncated`] rate.
    pub fn with_truncated(mut self, rate: f64) -> Self {
        self.truncated = rate;
        self.validate();
        self
    }

    /// Builder: set the [`SourceError::Timeout`] rate.
    pub fn with_timeout(mut self, rate: f64) -> Self {
        self.timeout = rate;
        self.validate();
        self
    }

    /// The rates in [`SourceError::ALL`] order.
    pub fn rates(&self) -> [f64; 4] {
        [self.unavailable, self.corrupt, self.truncated, self.timeout]
    }

    /// Total per-draw failure probability.
    pub fn total(&self) -> f64 {
        self.rates().iter().sum()
    }

    /// Assert the spec is a valid sub-probability vector.
    ///
    /// Phrased via negation so NaN rates are rejected too.
    pub fn validate(&self) {
        for (e, r) in SourceError::ALL.iter().zip(self.rates()) {
            assert!(
                r >= 0.0 && r.is_finite(),
                "fault rate for {} must be finite and non-negative, got {r}",
                e.kind()
            );
        }
        assert!(
            self.total() <= 1.0 + 1e-12,
            "fault rates must sum to at most 1.0, got {}",
            self.total()
        );
    }

    /// Sample the fault outcome of one draw from `rng`: `Some(error)`
    /// when a fault fires, `None` for a clean draw.
    ///
    /// Consumes **no randomness** when [`FaultSpec::total`] is 0.0;
    /// otherwise exactly one `f64` draw. Mode boundaries are cumulative
    /// in [`SourceError::ALL`] order, so the schedule is a pure function
    /// of the RNG stream.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SourceError> {
        if self.total() <= 0.0 {
            return None;
        }
        let u: f64 = rng.gen();
        let mut edge = 0.0;
        for (e, r) in SourceError::ALL.iter().zip(self.rates()) {
            edge += r;
            if u < edge {
                return Some(*e);
            }
        }
        None
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

// `sample` is also callable through a dyn RngCore (object-safe users).
impl FaultSpec {
    /// [`FaultSpec::sample`] monomorphized for trait-object RNGs.
    pub fn sample_dyn(&self, rng: &mut dyn RngCore) -> Option<SourceError> {
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_splits_evenly() {
        let s = FaultSpec::uniform(0.4);
        assert_eq!(s.rates(), [0.1, 0.1, 0.1, 0.1]);
        assert!((s.total() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_consumes_no_randomness() {
        let s = FaultSpec::none();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), None);
        }
        // a's stream was never advanced
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn dead_source_always_unavailable() {
        let s = FaultSpec::dead();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng), Some(SourceError::Unavailable));
        }
    }

    #[test]
    fn rates_hit_every_mode_at_expected_frequency() {
        let s = FaultSpec::uniform(0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        let mut clean = 0usize;
        let n = 40_000;
        for _ in 0..n {
            match s.sample(&mut rng) {
                Some(e) => counts[e.index()] += 1,
                None => clean += 1,
            }
        }
        for (i, c) in counts.iter().enumerate() {
            let frac = *c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "mode {i}: {frac}");
        }
        let clean_frac = clean as f64 / n as f64;
        assert!((clean_frac - 0.2).abs() < 0.02, "clean: {clean_frac}");
    }

    #[test]
    #[should_panic(expected = "sum to at most")]
    fn overfull_spec_rejected() {
        FaultSpec::uniform(0.9).with_timeout(0.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        FaultSpec::none().with_corrupt(-0.1);
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        let s = FaultSpec::uniform(0.5);
        let seq = |seed: u64| -> Vec<Option<SourceError>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..500).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(seq(11), seq(11));
        assert_ne!(seq(11), seq(12), "different seeds should differ");
    }
}
