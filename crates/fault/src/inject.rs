//! Deterministic fault-injecting source wrapper.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rdi_table::Schema;
use rdi_tailor::{Draw, Source, SourceError};

/// Wraps any [`Source`] and makes a configurable fraction of draws
/// fail.
///
/// Determinism contract:
///
/// * the fault schedule is sampled from the wrapper's **own** RNG,
///   seeded at construction — the run RNG passed to `try_draw` is never
///   consumed by injection, so the wrapped source sees exactly the
///   stream it would see unwrapped;
/// * at total rate 0.0 the fault RNG is never consumed either
///   ([`crate::FaultSpec::sample`] short-circuits), so a rate-0.0
///   wrapper is **bitwise identical** to the bare source;
/// * injected faults are tallied per mode (and mirrored to the global
///   `rdi-obs` counters `fault.injected.<kind>`), so experiments can
///   report exactly what was injected.
#[derive(Debug, Clone)]
pub struct FaultySource<S> {
    inner: S,
    spec: crate::FaultSpec,
    fault_rng: StdRng,
    injected: [u64; 4],
}

impl<S: Source> FaultySource<S> {
    /// Wrap `inner`, injecting faults per `spec` from a stream seeded
    /// with `seed`.
    pub fn new(inner: S, spec: crate::FaultSpec, seed: u64) -> Self {
        spec.validate();
        FaultySource {
            inner,
            spec,
            fault_rng: StdRng::seed_from_u64(seed),
            injected: [0; 4],
        }
    }

    /// The injection spec.
    pub fn spec(&self) -> &crate::FaultSpec {
        &self.spec
    }

    /// Faults injected so far, per mode in [`SourceError::ALL`] order.
    pub fn injected(&self) -> [u64; 4] {
        self.injected
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Borrow the wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the fault state.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Source> Source for FaultySource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cost(&self) -> f64 {
        self.inner.cost()
    }

    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn frequencies(&self) -> &[f64] {
        self.inner.frequencies()
    }

    fn try_draw(&mut self, rng: &mut dyn RngCore) -> Result<Draw, SourceError> {
        if let Some(e) = self.spec.sample(&mut self.fault_rng) {
            self.injected[e.index()] += 1;
            rdi_obs::counter(&format!("fault.injected.{}", e.kind())).inc();
            return Err(e);
        }
        self.inner.try_draw(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_table::{DataType, Field, GroupKey, GroupSpec, Role, Table, Value};
    use rdi_tailor::{DtProblem, TableSource};

    fn base_source(name: &str) -> TableSource {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive)
        ]);
        let mut t = Table::new(schema);
        for i in 0..8 {
            t.push_row(vec![Value::str(if i % 2 == 0 { "a" } else { "b" })])
                .unwrap();
        }
        let problem = DtProblem::exact_counts(
            GroupSpec::new(vec!["g"]),
            vec![
                (GroupKey(vec![Value::str("a")]), 1),
                (GroupKey(vec![Value::str("b")]), 1),
            ],
        );
        TableSource::new(name, t, 1.0, &problem).unwrap()
    }

    /// Drain `n` draws, returning (ok results, per-mode fault tallies).
    fn drain(
        src: &mut FaultySource<TableSource>,
        run_seed: u64,
        n: usize,
    ) -> (Vec<Draw>, [u64; 4]) {
        let mut rng = StdRng::seed_from_u64(run_seed);
        let mut oks = Vec::new();
        for _ in 0..n {
            if let Ok(d) = src.try_draw(&mut rng) {
                oks.push(d);
            }
        }
        (oks, src.injected())
    }

    #[test]
    fn rate_zero_is_bitwise_identical_to_bare_source() {
        let bare = base_source("s");
        let mut wrapped = FaultySource::new(base_source("s"), FaultSpec::none(), 99);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let a = TableSource::draw(&bare, &mut rng_a);
            let b = wrapped.try_draw(&mut rng_b).expect("rate 0 never fails");
            assert_eq!(a, b);
        }
        // run RNG streams stayed in lockstep too
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        assert_eq!(wrapped.injected_total(), 0);
    }

    #[test]
    fn injection_never_perturbs_the_run_rng_stream() {
        // Faults fire *before* the base draw and consume no run RNG, so
        // a faulty source's k-th SUCCESS must be byte-identical to the
        // bare source's k-th draw under the same run seed.
        let mut quiet = FaultySource::new(base_source("s"), FaultSpec::none(), 1);
        let mut noisy = FaultySource::new(base_source("s"), FaultSpec::uniform(0.5), 1);
        let (oks_quiet, _) = drain(&mut quiet, 42, 300);
        let (oks_noisy, injected) = drain(&mut noisy, 42, 300);
        let n_faults: u64 = injected.iter().sum();
        assert!(n_faults > 0, "0.5 rate must inject something in 300 draws");
        assert_eq!(oks_noisy.len() as u64 + n_faults, 300);
        assert_eq!(oks_quiet[..oks_noisy.len()], oks_noisy[..]);
    }

    #[test]
    fn identical_seeds_identical_fault_schedules() {
        let run = |fault_seed: u64| -> (Vec<bool>, [u64; 4]) {
            let mut s = FaultySource::new(base_source("s"), FaultSpec::uniform(0.4), fault_seed);
            let mut rng = StdRng::seed_from_u64(7);
            let pattern = (0..400).map(|_| s.try_draw(&mut rng).is_ok()).collect();
            (pattern, s.injected())
        };
        assert_eq!(run(13), run(13));
        assert_ne!(run(13).0, run(14).0);
    }

    #[test]
    fn injection_rate_is_approximately_honoured() {
        let mut s = FaultySource::new(base_source("s"), FaultSpec::uniform(0.3), 21);
        let (_oks, injected) = drain(&mut s, 3, 10_000);
        let total: u64 = injected.iter().sum();
        let frac = total as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
        // all four modes fire
        for (i, c) in injected.iter().enumerate() {
            assert!(*c > 0, "mode {i} never fired");
        }
    }

    #[test]
    fn dead_source_fails_every_draw() {
        let mut s = FaultySource::new(base_source("s"), FaultSpec::dead(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(s.try_draw(&mut rng), Err(SourceError::Unavailable));
        }
        assert_eq!(s.injected(), [50, 0, 0, 0]);
    }

    #[test]
    fn metadata_delegates_to_inner() {
        let s = FaultySource::new(base_source("inner-name"), FaultSpec::none(), 0);
        assert_eq!(Source::name(&s), "inner-name");
        assert_eq!(Source::cost(&s), 1.0);
        assert_eq!(Source::frequencies(&s).len(), 2);
        assert_eq!(Source::schema(&s).fields().len(), 1);
    }
}
