//! Capped exponential retry backoff in virtual ticks.

/// Deterministic capped exponential backoff.
///
/// `delay(attempt)` for attempt numbers 1, 2, 3, … is
/// `min(cap_ticks, base_ticks · 2^(attempt-1))`, saturating rather than
/// overflowing. Delays are **virtual ticks** charged to a
/// [`crate::TickClock`] — no jitter and no wall sleeping, so the retry
/// schedule is a pure function of the attempt number and identical on
/// every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base_ticks: u64,
    /// Upper bound on any single delay.
    pub cap_ticks: u64,
}

impl Backoff {
    /// A backoff schedule with the given base and cap.
    pub fn new(base_ticks: u64, cap_ticks: u64) -> Self {
        Backoff {
            base_ticks,
            cap_ticks,
        }
    }

    /// Ticks to wait after failed attempt number `attempt` (1-based).
    ///
    /// `attempt == 0` is treated as "before any attempt" and waits
    /// nothing.
    pub fn delay(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_ticks == 0 {
            return 0;
        }
        let exp = self
            .base_ticks
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
            .max(self.base_ticks); // shl past the top saturates, never zeroes
        exp.min(self.cap_ticks)
    }
}

impl Default for Backoff {
    /// 1, 2, 4, … capped at 64 ticks.
    fn default() -> Self {
        Backoff::new(1, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let b = Backoff::new(1, 64);
        let delays: Vec<u64> = (1..=9).map(|a| b.delay(a)).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 16, 32, 64, 64, 64]);
    }

    #[test]
    fn attempt_zero_and_zero_base_wait_nothing() {
        assert_eq!(Backoff::new(1, 64).delay(0), 0);
        assert_eq!(Backoff::new(0, 64).delay(5), 0);
    }

    #[test]
    fn huge_attempt_saturates_at_cap() {
        let b = Backoff::new(3, 1_000);
        assert_eq!(b.delay(200), 1_000);
        assert_eq!(b.delay(63), 1_000);
        assert_eq!(b.delay(64), 1_000);
        assert_eq!(b.delay(65), 1_000);
    }

    #[test]
    fn cap_below_base_clamps() {
        let b = Backoff::new(10, 4);
        assert_eq!(b.delay(1), 4);
        assert_eq!(b.delay(2), 4);
    }
}
