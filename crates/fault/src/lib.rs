//! # rdi-fault
//!
//! Deterministic fault injection plus the resilience primitives a
//! gracefully-degrading integration pipeline is built from.
//!
//! The tutorial's motivating scenario (§1, Ex. 1) integrates records
//! from many autonomous sources — CAPriCORN-style federations — where
//! sources go down, return corrupt rows, or stall. A responsible
//! pipeline must treat those failures as first-class inputs: record
//! *what it could not collect* in provenance and audit output rather
//! than panic (Doan et al.'s system-building agenda; the RAIDS framing
//! of responsible data systems as infrastructure).
//!
//! This crate supplies the failure side of that contract:
//!
//! * [`spec`] — [`FaultSpec`]: per-mode injection rates over the
//!   [`rdi_tailor::SourceError`] taxonomy (`Unavailable`, `Corrupt`,
//!   `Truncated`, `Timeout`);
//! * [`inject`] — [`FaultySource`]: wraps any [`rdi_tailor::Source`]
//!   and injects each failure mode from its **own** seeded RNG stream,
//!   so the fault schedule is a pure function of `(spec, seed)` and the
//!   wrapped source's draw stream is untouched. At rate 0.0 the wrapper
//!   is bitwise identical to the bare source;
//! * [`backoff`] — [`Backoff`]: capped exponential retry delays
//!   measured in deterministic clock *ticks*, never wall time;
//! * [`breaker`] — [`CircuitBreaker`]: quarantine a source after K
//!   consecutive failures; [`RecoveringBreaker`]: the same trip rule
//!   with deterministic half-open recovery after a tick-measured
//!   cooldown, for long-lived serving paths;
//! * [`clock`] — [`TickClock`]: the virtual time the backoff delays
//!   accrue on, aligned with the `RDI_FAKE_CLOCK` span-timing
//!   discipline from `rdi-obs` so resilience runs snapshot
//!   byte-reproducibly;
//! * [`config`] — [`ResilienceConfig`]: the retry/backoff/breaker
//!   parameter bundle consumed by `rdi-core`'s resilient executor.
//!
//! Everything is zero-dependency (workspace compat crates only) and
//! seed-deterministic: identical seeds yield identical fault schedules
//! regardless of thread count.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rdi_fault::{FaultSpec, FaultySource};
//! use rdi_tailor::prelude::*;
//! use rdi_table::{DataType, Field, Role, Schema, Table, Value};
//!
//! let schema = Schema::new(vec![Field::new("g", DataType::Str).with_role(Role::Sensitive)]);
//! let mut t = Table::new(schema);
//! for i in 0..10 {
//!     t.push_row(vec![Value::str(if i % 2 == 0 { "a" } else { "b" })]).unwrap();
//! }
//! let problem = DtProblem::exact_counts(
//!     GroupSpec::new(vec!["g"]),
//!     vec![(GroupKey(vec![Value::str("a")]), 1), (GroupKey(vec![Value::str("b")]), 1)],
//! );
//! let base = TableSource::new("s0", t, 1.0, &problem).unwrap();
//! // 30% of draws fail, split evenly across the four failure modes.
//! let mut faulty = FaultySource::new(base, FaultSpec::uniform(0.3), 7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut failures = 0;
//! for _ in 0..200 {
//!     if faulty.try_draw(&mut rng).is_err() { failures += 1; }
//! }
//! assert!(failures > 30 && failures < 90, "≈60 expected, got {failures}");
//! ```

#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod clock;
pub mod config;
pub mod inject;
pub mod spec;

pub use backoff::Backoff;
pub use breaker::{Admission, BreakerState, CircuitBreaker, RecoveringBreaker, RecoveryState};
pub use clock::TickClock;
pub use config::ResilienceConfig;
pub use inject::FaultySource;
pub use spec::FaultSpec;

// Re-exported so fault-handling code can name the taxonomy without a
// separate rdi-tailor import.
pub use rdi_tailor::SourceError;
