//! Per-source circuit breakers: permanent ([`CircuitBreaker`]) and
//! half-open recovering ([`RecoveringBreaker`]).

/// Whether a breaker still admits requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// The source is quarantined for the rest of the run.
    Open,
}

/// Quarantine a source after K *consecutive* failures.
///
/// The breaker is deliberately simpler than a production half-open
/// breaker: once open it stays open for the rest of the run, because a
/// bounded experiment has no "later" in which the source might recover,
/// and a permanent verdict keeps run results a pure function of the
/// seed. A success while closed resets the consecutive-failure count.
/// Long-lived serving paths need recovery — they use
/// [`RecoveringBreaker`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures. A `threshold` of 0 is clamped to 1: a zero threshold
    /// constructed outside `ResilienceConfig::validate` (e.g. straight
    /// from an unvalidated serving config) would otherwise trip on the
    /// very first `record_failure` and shed all traffic forever.
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }

    /// The configured consecutive-failure threshold (always ≥ 1).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Current consecutive-failure count.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True once the breaker has opened.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Record one failed attempt. Returns `true` exactly when this
    /// failure *newly* tripped the breaker (so callers can emit a single
    /// quarantine event). Every call counts toward
    /// `fault.breaker.failures`; a trip additionally counts toward
    /// `fault.breaker.opened`, so breaker transitions are auditable
    /// even when the caller drops the boolean.
    pub fn record_failure(&mut self) -> bool {
        rdi_obs::counter("fault.breaker.failures").inc();
        if self.is_open() {
            return false;
        }
        self.consecutive += 1;
        if self.consecutive >= self.threshold {
            self.state = BreakerState::Open;
            rdi_obs::counter("fault.breaker.opened").inc();
            return true;
        }
        false
    }

    /// Record one successful attempt (resets the consecutive count; a
    /// no-op once open).
    pub fn record_success(&mut self) {
        if !self.is_open() {
            self.consecutive = 0;
        }
    }
}

/// State of a [`RecoveringBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryState {
    /// Requests flow normally.
    Closed,
    /// Shedding; recovery is possible once the cooldown elapses.
    Open,
    /// One probe request is in flight; everything else is shed until
    /// its outcome is recorded.
    HalfOpen,
}

/// Admission verdict from [`RecoveringBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The breaker is closed: admit normally.
    Admit,
    /// Cooldown elapsed: admit this one request as the recovery probe.
    Probe,
    /// Shed: open (cooling down) or waiting on an in-flight probe.
    Shed,
}

/// A circuit breaker with deterministic half-open recovery.
///
/// Like [`CircuitBreaker`], it opens after `threshold` consecutive
/// failures — but instead of staying open forever, once `cooldown`
/// virtual ticks have elapsed (ticks are supplied by the caller, e.g.
/// one per served batch — never wall clock) the next
/// [`admit`](RecoveringBreaker::admit) returns [`Admission::Probe`]:
/// exactly one request goes through. A recorded success closes the
/// breaker; a recorded failure re-opens it and restarts the cooldown.
/// All transitions are pure functions of the `(outcome, tick)` stream,
/// so a replay at any `RDI_THREADS` is bitwise identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveringBreaker {
    threshold: u32,
    cooldown: u64,
    consecutive: u32,
    state: RecoveryState,
    opened_at: u64,
}

impl RecoveringBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures (clamped to ≥ 1, like [`CircuitBreaker::new`]) and
    /// probes one request after `cooldown` ticks (clamped to ≥ 1 so an
    /// open breaker always sheds at least its own tick).
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        RecoveringBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            consecutive: 0,
            state: RecoveryState::Closed,
            opened_at: 0,
        }
    }

    /// The configured consecutive-failure threshold (always ≥ 1).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The configured cooldown in ticks (always ≥ 1).
    pub fn cooldown(&self) -> u64 {
        self.cooldown
    }

    /// Current consecutive-failure count.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Current state.
    pub fn state(&self) -> RecoveryState {
        self.state
    }

    /// True while the breaker sheds ordinary traffic (open or waiting
    /// on a probe).
    pub fn is_open(&self) -> bool {
        self.state != RecoveryState::Closed
    }

    /// Admission verdict for one request arriving at virtual tick
    /// `now`. At most one [`Admission::Probe`] is handed out per
    /// half-open episode; its outcome must be fed back through
    /// [`record_success`](RecoveringBreaker::record_success) or
    /// [`record_failure`](RecoveringBreaker::record_failure).
    pub fn admit(&mut self, now: u64) -> Admission {
        match self.state {
            RecoveryState::Closed => Admission::Admit,
            RecoveryState::Open => {
                if now >= self.opened_at.saturating_add(self.cooldown) {
                    self.state = RecoveryState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
            RecoveryState::HalfOpen => Admission::Shed,
        }
    }

    /// Record one failed attempt at virtual tick `now`. Returns `true`
    /// exactly when this failure tripped (or re-tripped) the breaker.
    /// Counts toward `fault.breaker.failures`; trips additionally count
    /// toward `fault.breaker.opened` (see
    /// [`CircuitBreaker::record_failure`]).
    pub fn record_failure(&mut self, now: u64) -> bool {
        rdi_obs::counter("fault.breaker.failures").inc();
        match self.state {
            RecoveryState::Closed => {
                self.consecutive += 1;
                if self.consecutive >= self.threshold {
                    self.state = RecoveryState::Open;
                    self.opened_at = now;
                    rdi_obs::counter("fault.breaker.opened").inc();
                    return true;
                }
                false
            }
            RecoveryState::HalfOpen => {
                // the probe failed: re-open and restart the cooldown
                self.state = RecoveryState::Open;
                self.opened_at = now;
                rdi_obs::counter("fault.breaker.opened").inc();
                true
            }
            RecoveryState::Open => false,
        }
    }

    /// Record one successful attempt. While closed this resets the
    /// consecutive count; in half-open it means the probe succeeded and
    /// the breaker closes (counted by `fault.breaker.closed`).
    pub fn record_success(&mut self) {
        match self.state {
            RecoveryState::Closed => self.consecutive = 0,
            RecoveryState::HalfOpen => {
                self.state = RecoveryState::Closed;
                self.consecutive = 0;
                rdi_obs::counter("fault.breaker.closed").inc();
            }
            RecoveryState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_on_kth_consecutive_failure() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.is_open());
        assert!(b.record_failure(), "third failure newly trips");
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: not newly tripped");
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.record_failure());
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        assert!(!b.record_failure());
        assert!(b.record_failure());
    }

    #[test]
    fn open_is_permanent() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record_failure());
        b.record_success();
        assert!(b.is_open(), "success after opening must not close it");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn zero_threshold_is_clamped_not_always_open() {
        // Regression: `new(0)` used to be constructible only through a
        // panic guard; direct construction (e.g. from an unvalidated
        // serving config) must behave like threshold 1 — closed until a
        // failure — never open-from-birth.
        let mut b = CircuitBreaker::new(0);
        assert_eq!(b.threshold(), 1);
        assert!(!b.is_open(), "fresh breaker must admit");
        b.record_success();
        assert!(!b.is_open());
        assert!(b.record_failure(), "clamped threshold 1 trips on first");

        let mut r = RecoveringBreaker::new(0, 0);
        assert_eq!((r.threshold(), r.cooldown()), (1, 1));
        assert_eq!(r.admit(0), Admission::Admit);
    }

    #[test]
    fn recovering_breaker_probes_after_cooldown() {
        let mut b = RecoveringBreaker::new(2, 3);
        assert!(!b.record_failure(0));
        assert!(b.record_failure(1), "second consecutive failure trips");
        assert_eq!(b.state(), RecoveryState::Open);
        // cooling: ticks 2..4 shed (opened at 1, cooldown 3)
        assert_eq!(b.admit(2), Admission::Shed);
        assert_eq!(b.admit(3), Admission::Shed);
        // tick 4 = opened_at + cooldown: one probe, then shed again
        assert_eq!(b.admit(4), Admission::Probe);
        assert_eq!(b.state(), RecoveryState::HalfOpen);
        assert_eq!(b.admit(4), Admission::Shed, "one probe per episode");
        // probe succeeds: closed, counters reset
        b.record_success();
        assert_eq!(b.state(), RecoveryState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.admit(5), Admission::Admit);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let mut b = RecoveringBreaker::new(1, 2);
        assert!(b.record_failure(0));
        assert_eq!(b.admit(2), Admission::Probe);
        assert!(b.record_failure(2), "probe failure re-trips");
        assert_eq!(b.state(), RecoveryState::Open);
        assert_eq!(b.admit(3), Admission::Shed, "cooldown restarted at 2");
        assert_eq!(b.admit(4), Admission::Probe);
        b.record_success();
        assert!(!b.is_open());
    }
}
