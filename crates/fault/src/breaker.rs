//! Per-source circuit breaker.

/// Whether a breaker still admits requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// The source is quarantined for the rest of the run.
    Open,
}

/// Quarantine a source after K *consecutive* failures.
///
/// The breaker is deliberately simpler than a production half-open
/// breaker: once open it stays open for the rest of the run, because a
/// bounded experiment has no "later" in which the source might recover,
/// and a permanent verdict keeps run results a pure function of the
/// seed. A success while closed resets the consecutive-failure count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures. `threshold` must be at least 1.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold >= 1, "breaker threshold must be >= 1");
        CircuitBreaker {
            threshold,
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }

    /// The configured consecutive-failure threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Current consecutive-failure count.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True once the breaker has opened.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Record one failed attempt. Returns `true` exactly when this
    /// failure *newly* tripped the breaker (so callers can emit a single
    /// quarantine event).
    pub fn record_failure(&mut self) -> bool {
        if self.is_open() {
            return false;
        }
        self.consecutive += 1;
        if self.consecutive >= self.threshold {
            self.state = BreakerState::Open;
            return true;
        }
        false
    }

    /// Record one successful attempt (resets the consecutive count; a
    /// no-op once open).
    pub fn record_success(&mut self) {
        if !self.is_open() {
            self.consecutive = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_on_kth_consecutive_failure() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.is_open());
        assert!(b.record_failure(), "third failure newly trips");
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: not newly tripped");
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.record_failure());
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        assert!(!b.record_failure());
        assert!(b.record_failure());
    }

    #[test]
    fn open_is_permanent() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record_failure());
        b.record_success();
        assert!(b.is_open(), "success after opening must not close it");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    #[should_panic(expected = "threshold must be >= 1")]
    fn zero_threshold_rejected() {
        CircuitBreaker::new(0);
    }
}
