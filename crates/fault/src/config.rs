//! Retry/backoff/breaker parameter bundle.

use crate::backoff::Backoff;

/// The knobs of `rdi-core`'s resilient executor.
///
/// Defaults are deliberately small (a bounded experiment, not a
/// long-lived service): up to 4 attempts per logical draw with 1→64
/// tick backoff, and quarantine after 5 consecutive failed attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Maximum attempts per logical draw (first try + retries). Must be
    /// at least 1.
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
    /// Consecutive failed *attempts* after which a source is
    /// quarantined for the rest of the run.
    pub breaker_threshold: u32,
}

impl ResilienceConfig {
    /// Validate the configuration (panics on nonsense values).
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be >= 1");
        assert!(
            self.breaker_threshold >= 1,
            "breaker_threshold must be >= 1"
        );
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 4,
            backoff: Backoff::default(),
            breaker_threshold: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = ResilienceConfig::default();
        c.validate();
        assert_eq!(c.max_attempts, 4);
        assert_eq!(c.backoff, Backoff::new(1, 64));
        assert_eq!(c.breaker_threshold, 5);
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempts_rejected() {
        ResilienceConfig {
            max_attempts: 0,
            ..ResilienceConfig::default()
        }
        .validate();
    }
}
