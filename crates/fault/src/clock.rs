//! Virtual time for resilience accounting.

/// A monotone counter of virtual *ticks*.
///
/// Retry backoff must never sleep wall-clock time: it would make runs
/// slow, flaky, and non-reproducible. Instead the resilient executor
/// charges every backoff delay to a `TickClock` and reports the total
/// as a metric. One tick is "one backoff quantum"; it has no wall-time
/// unit. This mirrors the `RDI_FAKE_CLOCK` discipline `rdi-obs` uses
/// for span timing: time is modelled, not measured, so snapshots are
/// byte-reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickClock {
    now: u64,
}

impl TickClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        TickClock::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `ticks` (saturating; the clock never wraps backwards).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = TickClock::new();
        assert_eq!(c.now(), 0);
        c.advance(3);
        c.advance(0);
        c.advance(5);
        assert_eq!(c.now(), 8);
    }

    #[test]
    fn advance_saturates() {
        let mut c = TickClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now(), u64::MAX);
    }
}
