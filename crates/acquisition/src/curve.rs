//! Power-law learning-curve fitting.
//!
//! Slice Tuner's allocation needs, per slice, a prediction of how much
//! additional data reduces loss. Empirically `loss(n) ≈ b·n^{-a}` with
//! `a, b > 0`, which is linear in log-log space, so we fit by least
//! squares on `(ln n, ln loss)`.

use serde::{Deserialize, Serialize};

/// A fitted `loss(n) = b · n^{-a}` curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Decay exponent (≥ 0).
    pub a: f64,
    /// Scale.
    pub b: f64,
}

impl LearningCurve {
    /// Fit from `(n, loss)` observations (needs ≥ 2 points with positive
    /// `n` and `loss`). Returns `None` when the fit is impossible.
    pub fn fit(points: &[(usize, f64)]) -> Option<LearningCurve> {
        let logs: Vec<(f64, f64)> = points
            .iter()
            .filter(|(n, l)| *n > 0 && *l > 0.0)
            .map(|(n, l)| ((*n as f64).ln(), l.ln()))
            .collect();
        if logs.len() < 2 {
            return None;
        }
        let m = logs.len() as f64;
        let sx: f64 = logs.iter().map(|(x, _)| x).sum();
        let sy: f64 = logs.iter().map(|(_, y)| y).sum();
        let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
        let denom = m * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (m * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / m;
        Some(LearningCurve {
            a: (-slope).max(0.0),
            b: intercept.exp(),
        })
    }

    /// Predicted loss at training size `n`.
    pub fn loss_at(&self, n: usize) -> f64 {
        if n == 0 {
            return self.b;
        }
        self.b * (n as f64).powf(-self.a)
    }

    /// Predicted loss reduction from growing `n` by `delta` examples.
    pub fn marginal_gain(&self, n: usize, delta: usize) -> f64 {
        (self.loss_at(n) - self.loss_at(n + delta)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_exact_power_law() {
        let truth = LearningCurve { a: 0.5, b: 3.0 };
        let pts: Vec<(usize, f64)> = [10, 50, 100, 400]
            .iter()
            .map(|&n| (n, truth.loss_at(n)))
            .collect();
        let fit = LearningCurve::fit(&pts).unwrap();
        assert!((fit.a - 0.5).abs() < 1e-9);
        assert!((fit.b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_is_close() {
        let truth = LearningCurve { a: 0.4, b: 2.0 };
        let pts: Vec<(usize, f64)> = (1..=20)
            .map(|i| {
                let n = i * 50;
                let noise = 1.0 + 0.05 * ((i as f64 * 13.7).sin());
                (n, truth.loss_at(n) * noise)
            })
            .collect();
        let fit = LearningCurve::fit(&pts).unwrap();
        assert!((fit.a - 0.4).abs() < 0.05, "a={}", fit.a);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LearningCurve::fit(&[]).is_none());
        assert!(LearningCurve::fit(&[(10, 1.0)]).is_none());
        assert!(LearningCurve::fit(&[(10, 1.0), (10, 2.0)]).is_none()); // same x
        assert!(LearningCurve::fit(&[(0, 1.0), (10, 0.0)]).is_none()); // filtered out
    }

    #[test]
    fn marginal_gain_is_diminishing() {
        let c = LearningCurve { a: 0.5, b: 1.0 };
        let g1 = c.marginal_gain(100, 100);
        let g2 = c.marginal_gain(1000, 100);
        assert!(g1 > g2);
        assert!(g2 > 0.0);
    }

    proptest! {
        #[test]
        fn loss_is_monotone_decreasing(a in 0.01f64..2.0, b in 0.1f64..10.0,
                                       n in 1usize..10_000) {
            let c = LearningCurve { a, b };
            prop_assert!(c.loss_at(n) >= c.loss_at(n + 1) - 1e-12);
            prop_assert!(c.marginal_gain(n, 10) >= 0.0);
        }
    }
}
