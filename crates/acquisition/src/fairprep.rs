//! FairPrep-style evaluation of cleaning interventions (Schelter, He,
//! Khilnani, Stoyanovich; EDBT 2020).
//!
//! FairPrep's point is methodological: fairness-enhancing interventions
//! must be evaluated *as part of the data preparation pipeline*, on a
//! held-out test set the interventions never touch. This module runs a
//! grid of (imputation intervention × model) over a train/test split and
//! reports accuracy **and** fairness metrics side by side, so the effect
//! of each preparation choice is quantified rather than assumed.

use rand::Rng;
use rdi_cleaning::{impute, ImputeStrategy};
use rdi_table::{GroupSpec, Table};
use serde::{Deserialize, Serialize};

use crate::ml::{design_matrix, evaluate, GaussianNb, LogisticRegression, ModelEval};

/// Which model the grid trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Logistic regression (SGD).
    Logistic,
    /// Gaussian naive Bayes.
    NaiveBayes,
}

impl ModelKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Logistic => "logistic",
            ModelKind::NaiveBayes => "naive_bayes",
        }
    }
}

/// One grid cell's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Intervention label.
    pub intervention: String,
    /// Model trained.
    pub model: &'static str,
    /// Held-out evaluation.
    pub eval: ModelEval,
    /// Training rows after the intervention (DropRows shrinks it).
    pub train_rows: usize,
}

/// Deterministically split a table into (train, test) by hashing row
/// index against `test_fraction` using the provided RNG.
pub fn train_test_split<R: Rng>(table: &Table, test_fraction: f64, rng: &mut R) -> (Table, Table) {
    assert!((0.0..1.0).contains(&test_fraction));
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for i in 0..table.num_rows() {
        if rng.gen::<f64>() < test_fraction {
            test_idx.push(i);
        } else {
            train_idx.push(i);
        }
    }
    (table.take(&train_idx), table.take(&test_idx))
}

/// Run the (intervention × model) grid.
///
/// * `dirty` — the raw data (with missing values);
/// * `impute_column` — the numeric feature the interventions repair;
/// * `features`/`target` — model inputs;
/// * the test split is imputed with the *same* intervention (as FairPrep
///   prescribes: preparation is part of the deployed pipeline), but fitted
///   statistics are not shared across the split boundary beyond that.
#[allow(clippy::too_many_arguments)]
pub fn run_grid<R: Rng>(
    dirty: &Table,
    impute_column: &str,
    features: &[&str],
    target: &str,
    spec: &GroupSpec,
    interventions: &[(String, ImputeStrategy)],
    models: &[ModelKind],
    rng: &mut R,
) -> rdi_table::Result<Vec<GridResult>> {
    let (train_raw, test_raw) = train_test_split(dirty, 0.3, rng);
    let mut out = Vec::new();
    for (label, strategy) in interventions {
        let train = impute(&train_raw, impute_column, strategy)?;
        let test = impute(&test_raw, impute_column, strategy)?;
        let (xs, ys, _) = design_matrix(&train, features, target)?;
        if xs.is_empty() {
            continue;
        }
        for &model in models {
            let eval = match model {
                ModelKind::Logistic => {
                    let m = LogisticRegression::train(&xs, &ys, 8, 0.05, 1e-4, rng);
                    evaluate(&test, features, target, spec, |x| m.predict(x))?
                }
                ModelKind::NaiveBayes => {
                    let m = GaussianNb::train(&xs, &ys);
                    evaluate(&test, features, target, spec, |x| m.predict(x))?
                }
            };
            out.push(GridResult {
                intervention: label.clone(),
                model: model.name(),
                eval,
                train_rows: train.num_rows(),
            });
        }
    }
    Ok(out)
}

/// Render grid results as a markdown table.
pub fn grid_to_markdown(results: &[GridResult]) -> String {
    let mut md = String::from(
        "| intervention | model | train rows | accuracy | parity diff | equalized odds |\n|---|---|---|---|---|---|\n",
    );
    for r in results {
        md.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} | {:.3} |\n",
            r.intervention,
            r.model,
            r.train_rows,
            r.eval.accuracy,
            r.eval.parity_difference,
            r.eval.equalized_odds
        ));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    /// Two groups, feature x predicts y, x is MAR-missing for the minority.
    fn dirty_table(rng: &mut StdRng) -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        for i in 0..3_000 {
            let min = i % 5 == 0;
            let g = if min { "min" } else { "maj" };
            let base: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let y = base > 0.0;
            let x = base + rng.gen_range(-0.8..0.8) + if min { 3.0 } else { 0.0 };
            let x = if min && rng.gen::<f64>() < 0.4 {
                Value::Null
            } else {
                Value::Float(x)
            };
            t.push_row(vec![Value::str(g), x, Value::Bool(y)]).unwrap();
        }
        t
    }

    #[test]
    fn split_partitions_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = dirty_table(&mut rng);
        let (train, test) = train_test_split(&t, 0.3, &mut rng);
        assert_eq!(train.num_rows() + test.num_rows(), t.num_rows());
        let frac = test.num_rows() as f64 / t.num_rows() as f64;
        assert!((frac - 0.3).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn grid_runs_all_cells_and_reports_fairness() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = dirty_table(&mut rng);
        let spec = GroupSpec::new(vec!["g"]);
        let interventions = vec![
            ("drop".to_string(), ImputeStrategy::DropRows),
            ("mean".to_string(), ImputeStrategy::Mean),
            (
                "group_mean".to_string(),
                ImputeStrategy::GroupMean(spec.clone()),
            ),
        ];
        let results = run_grid(
            &t,
            "x",
            &["x"],
            "y",
            &spec,
            &interventions,
            &[ModelKind::Logistic, ModelKind::NaiveBayes],
            &mut rng,
        )
        .unwrap();
        assert_eq!(results.len(), 6);
        // drop-rows shrinks the training set; imputation keeps it
        let drop = results.iter().find(|r| r.intervention == "drop").unwrap();
        let mean = results.iter().find(|r| r.intervention == "mean").unwrap();
        assert!(drop.train_rows < mean.train_rows);
        // all models must be well above chance
        for r in &results {
            assert!(
                r.eval.accuracy > 0.7,
                "{}/{}: {}",
                r.intervention,
                r.model,
                r.eval.accuracy
            );
        }
        let md = grid_to_markdown(&results);
        assert!(md.contains("group_mean"));
        assert!(md.contains("naive_bayes"));
    }
}
