//! Problematic-slice discovery (the "identifying problematic slices"
//! half of Tae & Whang's selective acquisition, §3.1).
//!
//! Given a model's per-row correctness on a validation table, enumerate
//! all 1- and 2-attribute categorical slices, score each by how much
//! worse the model does inside the slice than overall (weighted by slice
//! size so tiny noisy slices don't dominate), and return the worst
//! offenders — the slices Slice Tuner should buy data for.

use std::collections::HashMap;

use rdi_table::{Table, Value};
use serde::{Deserialize, Serialize};

/// One scored slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Slice {
    /// `(attribute, value)` conjuncts defining the slice (1 or 2).
    pub conjuncts: Vec<(String, String)>,
    /// Rows in the slice.
    pub size: usize,
    /// Model error rate inside the slice.
    pub error_rate: f64,
    /// Overall error rate, for reference.
    pub overall_error: f64,
    /// Score: `(error_rate − overall_error) · √size` — effect size scaled
    /// by statistical weight.
    pub score: f64,
}

impl Slice {
    /// Render as `attr=v ∧ attr=v`.
    pub fn render(&self) -> String {
        self.conjuncts
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

/// Find the `top_k` worst slices over the given categorical attributes.
///
/// `correct[i]` says whether the model classified row `i` correctly.
/// Slices smaller than `min_size` are skipped (their error estimates are
/// noise).
pub fn find_problem_slices(
    table: &Table,
    attributes: &[&str],
    correct: &[bool],
    min_size: usize,
    top_k: usize,
) -> rdi_table::Result<Vec<Slice>> {
    assert_eq!(
        table.num_rows(),
        correct.len(),
        "correctness vector must align with the table"
    );
    let n = table.num_rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let overall_error = correct.iter().filter(|&&c| !c).count() as f64 / n as f64;

    // per-row attribute values (rendered), skipping nulls
    let cols: Vec<&rdi_table::Column> = attributes
        .iter()
        .map(|a| table.column(a))
        .collect::<rdi_table::Result<_>>()?;
    let value_of = |attr_idx: usize, row: usize| -> Option<String> {
        let v: Value = cols[attr_idx].value(row);
        if v.is_null() {
            None
        } else {
            Some(v.to_string())
        }
    };

    // accumulate (size, errors) per slice key
    let mut acc: HashMap<Vec<(usize, String)>, (usize, usize)> = HashMap::new();
    for (i, &c) in correct.iter().enumerate().take(n) {
        let err = !c as usize;
        // 1-attribute slices
        for a in 0..attributes.len() {
            if let Some(v) = value_of(a, i) {
                let e = acc.entry(vec![(a, v)]).or_insert((0, 0));
                e.0 += 1;
                e.1 += err;
            }
        }
        // 2-attribute slices
        for a in 0..attributes.len() {
            for b in a + 1..attributes.len() {
                if let (Some(va), Some(vb)) = (value_of(a, i), value_of(b, i)) {
                    let e = acc.entry(vec![(a, va), (b, vb)]).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += err;
                }
            }
        }
    }

    let mut slices: Vec<Slice> = acc
        .into_iter()
        .filter(|(_, (size, _))| *size >= min_size)
        .map(|(key, (size, errors))| {
            let error_rate = errors as f64 / size as f64;
            Slice {
                conjuncts: key
                    .into_iter()
                    .map(|(a, v)| (attributes[a].to_string(), v))
                    .collect(),
                size,
                error_rate,
                overall_error,
                score: (error_rate - overall_error) * (size as f64).sqrt(),
            }
        })
        .collect();
    slices.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.conjuncts.len().cmp(&b.conjuncts.len()))
            .then(a.render().cmp(&b.render()))
    });
    slices.truncate(top_k);
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Schema};

    /// The model fails badly exactly on (region=south ∧ age_band=young).
    fn setup() -> (Table, Vec<bool>) {
        let schema = Schema::new(vec![
            Field::new("region", DataType::Str),
            Field::new("age_band", DataType::Str),
        ]);
        let mut t = Table::new(schema);
        let mut correct = Vec::new();
        for i in 0..1_200 {
            let region = ["north", "south", "west"][i % 3];
            let age = ["young", "old"][(i / 3) % 2];
            t.push_row(vec![Value::str(region), Value::str(age)])
                .unwrap();
            let bad_slice = region == "south" && age == "young";
            // 80% error in the bad slice, 10% elsewhere
            let err = if bad_slice { i % 10 < 8 } else { i % 10 == 0 };
            correct.push(!err);
        }
        (t, correct)
    }

    #[test]
    fn finds_the_planted_bad_slice_first() {
        let (t, correct) = setup();
        let slices = find_problem_slices(&t, &["region", "age_band"], &correct, 30, 5).unwrap();
        assert!(!slices.is_empty());
        let top = &slices[0];
        assert_eq!(top.render(), "region=south ∧ age_band=young");
        assert!(top.error_rate > 0.7, "err={}", top.error_rate);
        assert!(top.score > 0.0);
    }

    #[test]
    fn one_attribute_parents_rank_below_the_intersection() {
        let (t, correct) = setup();
        let slices = find_problem_slices(&t, &["region", "age_band"], &correct, 30, 10).unwrap();
        let south = slices.iter().position(|s| s.render() == "region=south");
        let inter = slices
            .iter()
            .position(|s| s.render() == "region=south ∧ age_band=young")
            .unwrap();
        if let Some(south) = south {
            assert!(inter < south, "intersection must outrank its parent");
        }
    }

    #[test]
    fn min_size_filters_noise() {
        let (t, correct) = setup();
        let slices =
            find_problem_slices(&t, &["region", "age_band"], &correct, 100_000, 5).unwrap();
        assert!(slices.is_empty());
    }

    #[test]
    fn uniform_errors_give_no_strong_slice() {
        let schema = Schema::new(vec![Field::new("g", DataType::Str)]);
        let mut t = Table::new(schema);
        let mut correct = Vec::new();
        for i in 0..600 {
            t.push_row(vec![Value::str(["a", "b"][i % 2])]).unwrap();
            correct.push(i % 5 != 0); // 20% everywhere
        }
        let slices = find_problem_slices(&t, &["g"], &correct, 30, 5).unwrap();
        for s in slices {
            assert!(s.score.abs() < 1.0, "{} score={}", s.render(), s.score);
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_inputs_panic() {
        let (t, _) = setup();
        find_problem_slices(&t, &["region"], &[true], 1, 5).unwrap();
    }
}
