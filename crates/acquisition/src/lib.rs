//! # rdi-acquisition
//!
//! Data acquisition for accurate **and fair** models (tutorial §3.1,
//! §4.2):
//!
//! * [`ml`] — the from-scratch model substrate (logistic regression via
//!   SGD, Gaussian naive Bayes) with per-group evaluation;
//! * [`curve`] — power-law learning-curve fitting `loss(n) ≈ b·n^{-a}`;
//! * [`slicefinder`] — problematic-slice discovery: which 1–2 attribute
//!   slices does the model fail on (the "what data to buy" question);
//! * [`slicetuner`] — Slice Tuner-style selective acquisition (Tae &
//!   Whang, SIGMOD 2021): estimate per-slice learning curves, then
//!   allocate an acquisition budget to minimize total loss *and*
//!   cross-slice unfairness;
//! * [`fairprep`] — FairPrep-style (intervention × model) evaluation
//!   grids over train/test splits (Schelter et al., EDBT 2020);
//! * [`market`] — data-market acquisition (Li, Yu, Koudas, VLDB 2021):
//!   a consumer with a budget issues predicate queries against a
//!   provider's hidden pool, trading exploration (learning the pool's
//!   distribution) against exploitation (querying the most novel slices).

//!
//! ```
//! use rdi_acquisition::{allocate_budget, LearningCurve, SliceState};
//!
//! let slices = vec![
//!     SliceState { name: "starved".into(), current: 50,
//!                  curve: LearningCurve { a: 0.5, b: 3.0 } },
//!     SliceState { name: "saturated".into(), current: 50_000,
//!                  curve: LearningCurve { a: 0.5, b: 3.0 } },
//! ];
//! let alloc = allocate_budget(&slices, 1_000, 100, 0.0);
//! assert!(alloc[0] > alloc[1]); // budget flows to the starved slice
//! ```
#![warn(missing_docs)]

pub mod curve;
pub mod fairprep;
pub mod market;
pub mod ml;
pub mod slicefinder;
pub mod slicetuner;

pub use curve::LearningCurve;
pub use fairprep::{grid_to_markdown, run_grid, GridResult, ModelKind};
pub use market::{acquire_from_market, AcquisitionStrategy, MarketProvider};
pub use ml::{GaussianNb, LogisticRegression, ModelEval};
pub use slicefinder::{find_problem_slices, Slice};
pub use slicetuner::{allocate_budget, SliceState, SliceTuner};
