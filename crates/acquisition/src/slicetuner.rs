//! Slice Tuner-style selective data acquisition (Tae & Whang, SIGMOD 2021).
//!
//! Data slices (e.g. demographic groups) have different learning curves:
//! some are data-hungry, some saturate early. Acquiring the same amount
//! everywhere wastes budget on saturated slices while starving the ones
//! that drive both average loss and *unfairness* (the max loss gap across
//! slices). [`allocate_budget`] distributes a budget by greedy marginal
//! gain over the fitted curves — the water-filling scheme that Slice
//! Tuner's convex optimization reduces to for decreasing convex curves —
//! with an optional fairness weight that prioritizes the worst slice.

use serde::{Deserialize, Serialize};

use crate::curve::LearningCurve;

/// Pilot observations for one slice: `(name, current size, [(n, loss)…])`.
pub type SlicePilot = (String, usize, Vec<(usize, f64)>);

/// The acquisition state of one slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceState {
    /// Slice name (e.g. a group key rendering).
    pub name: String,
    /// Examples currently held.
    pub current: usize,
    /// Fitted learning curve.
    pub curve: LearningCurve,
}

/// Allocate `budget` additional examples across slices in `chunk`-sized
/// steps, greedily maximizing `marginal loss reduction +
/// fairness_weight · (is the slice currently worst?)`.
///
/// Returns per-slice additional example counts (sums to ≤ budget, short
/// only by a final partial chunk).
pub fn allocate_budget(
    slices: &[SliceState],
    budget: usize,
    chunk: usize,
    fairness_weight: f64,
) -> Vec<usize> {
    assert!(chunk > 0);
    assert!(fairness_weight >= 0.0);
    let mut alloc = vec![0usize; slices.len()];
    if slices.is_empty() {
        return alloc;
    }
    let mut spent = 0;
    while spent + chunk <= budget {
        // current predicted losses
        let losses: Vec<f64> = slices
            .iter()
            .zip(&alloc)
            .map(|(s, &a)| s.curve.loss_at(s.current + a))
            .collect();
        let worst = losses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut best = (f64::NEG_INFINITY, 0usize);
        for (i, s) in slices.iter().enumerate() {
            let gain = s.curve.marginal_gain(s.current + alloc[i], chunk);
            let fairness_bonus = if (losses[i] - worst).abs() < 1e-12 {
                fairness_weight * gain
            } else {
                0.0
            };
            let score = gain + fairness_bonus;
            if score > best.0 {
                best = (score, i);
            }
        }
        alloc[best.1] += chunk;
        spent += chunk;
    }
    alloc
}

/// Convenience driver: fit curves from pilot runs and allocate.
#[derive(Debug, Clone)]
pub struct SliceTuner {
    /// Slice states with fitted curves.
    pub slices: Vec<SliceState>,
    /// Acquisition step size.
    pub chunk: usize,
    /// Fairness weight λ.
    pub fairness_weight: f64,
}

impl SliceTuner {
    /// Build from per-slice pilot observations `(name, current size,
    /// [(n, loss)…])`. Slices whose curve cannot be fitted get a flat
    /// curve at their last observed loss (no predicted gain).
    pub fn from_pilot(pilots: &[SlicePilot], chunk: usize, fairness_weight: f64) -> Self {
        let slices = pilots
            .iter()
            .map(|(name, current, pts)| {
                let curve = LearningCurve::fit(pts).unwrap_or(LearningCurve {
                    a: 0.0,
                    b: pts.last().map(|(_, l)| *l).unwrap_or(1.0),
                });
                SliceState {
                    name: name.clone(),
                    current: *current,
                    curve,
                }
            })
            .collect();
        SliceTuner {
            slices,
            chunk,
            fairness_weight,
        }
    }

    /// Allocate a budget over the slices.
    pub fn allocate(&self, budget: usize) -> Vec<(String, usize)> {
        allocate_budget(&self.slices, budget, self.chunk, self.fairness_weight)
            .into_iter()
            .zip(&self.slices)
            .map(|(a, s)| (s.name.clone(), a))
            .collect()
    }

    /// Predicted (average loss, max loss gap) after an allocation.
    pub fn predict_outcome(&self, alloc: &[usize]) -> (f64, f64) {
        assert_eq!(alloc.len(), self.slices.len());
        let losses: Vec<f64> = self
            .slices
            .iter()
            .zip(alloc)
            .map(|(s, &a)| s.curve.loss_at(s.current + a))
            .collect();
        let avg = losses.iter().sum::<f64>() / losses.len().max(1) as f64;
        let max = losses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        (avg, max - min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(name: &str, current: usize, a: f64, b: f64) -> SliceState {
        SliceState {
            name: name.into(),
            current,
            curve: LearningCurve { a, b },
        }
    }

    #[test]
    fn budget_flows_to_data_hungry_slice() {
        // slice "hungry" has a steep curve & few examples; "sated" is flat
        let slices = vec![
            slice("hungry", 50, 0.8, 5.0),
            slice("sated", 5_000, 0.8, 5.0),
        ];
        let alloc = allocate_budget(&slices, 1_000, 50, 0.0);
        assert!(alloc[0] > alloc[1], "alloc={alloc:?}");
        assert_eq!(alloc.iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn uniform_slices_get_even_split() {
        let slices = vec![slice("a", 100, 0.5, 2.0), slice("b", 100, 0.5, 2.0)];
        let alloc = allocate_budget(&slices, 400, 50, 0.0);
        assert_eq!(alloc[0] + alloc[1], 400);
        assert!((alloc[0] as i64 - alloc[1] as i64).abs() <= 50);
    }

    #[test]
    fn selective_beats_uniform_on_loss_and_gap() {
        let tuner = SliceTuner {
            slices: vec![
                slice("minority", 30, 0.6, 4.0),
                slice("majority", 3_000, 0.6, 4.0),
            ],
            chunk: 25,
            fairness_weight: 1.0,
        };
        let budget = 1_000;
        let smart: Vec<usize> = tuner.allocate(budget).into_iter().map(|(_, a)| a).collect();
        let uniform = vec![budget / 2, budget / 2];
        let (smart_avg, smart_gap) = tuner.predict_outcome(&smart);
        let (uni_avg, uni_gap) = tuner.predict_outcome(&uniform);
        assert!(smart_avg <= uni_avg + 1e-12);
        assert!(
            smart_gap < uni_gap,
            "smart_gap={smart_gap} uni_gap={uni_gap}"
        );
    }

    #[test]
    fn from_pilot_fits_curves() {
        let c = LearningCurve { a: 0.5, b: 2.0 };
        let pilots = vec![(
            "s".to_string(),
            100,
            vec![
                (10, c.loss_at(10)),
                (50, c.loss_at(50)),
                (100, c.loss_at(100)),
            ],
        )];
        let tuner = SliceTuner::from_pilot(&pilots, 10, 0.0);
        assert!((tuner.slices[0].curve.a - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unfittable_pilot_gets_flat_curve() {
        let pilots = vec![("s".to_string(), 100, vec![(10, 1.0)])];
        let tuner = SliceTuner::from_pilot(&pilots, 10, 0.0);
        assert_eq!(tuner.slices[0].curve.a, 0.0);
        // flat curve → no gain → allocation still terminates
        let alloc = tuner.allocate(100);
        assert_eq!(alloc[0].1, 100); // single slice gets everything anyway
    }

    #[test]
    fn empty_slices_and_zero_budget() {
        assert!(allocate_budget(&[], 100, 10, 0.0).is_empty());
        let slices = vec![slice("a", 10, 0.5, 1.0)];
        assert_eq!(allocate_budget(&slices, 0, 10, 0.0), vec![0]);
        assert_eq!(allocate_budget(&slices, 5, 10, 0.0), vec![0]); // budget < chunk
    }
}
