//! Data-market acquisition (Li, Yu, Koudas; VLDB 2021).
//!
//! A consumer holds a non-representative data set and a query budget
//! against a provider whose pool follows the (hidden) target distribution.
//! Each query is a filtering predicate; the provider returns a random
//! sample *without replacement* from the matching pool rows. The
//! consumer's problem is which predicates to issue: **exploration** learns
//! the provider's distribution, **exploitation** targets the predicates
//! with the highest *novelty* — slices where the consumer's holdings fall
//! furthest below the provider's (≈ target) proportions.

use rand::Rng;
use rdi_table::{Predicate, Table, TableError};

/// The provider side: a hidden pool, sampled without replacement.
#[derive(Debug, Clone)]
pub struct MarketProvider {
    pool: Table,
    available: Vec<bool>,
}

impl MarketProvider {
    /// Wrap a pool table.
    pub fn new(pool: Table) -> Self {
        let available = vec![true; pool.num_rows()];
        MarketProvider { pool, available }
    }

    /// Rows still available.
    pub fn remaining(&self) -> usize {
        self.available.iter().filter(|a| **a).count()
    }

    /// Answer a predicate query: up to `batch` random matching rows,
    /// removed from the pool.
    pub fn query<R: Rng>(&mut self, pred: &Predicate, batch: usize, rng: &mut R) -> Table {
        let mut matching: Vec<usize> = (0..self.pool.num_rows())
            .filter(|&i| self.available[i] && pred.eval(&self.pool, i))
            .collect();
        // partial Fisher–Yates to pick `batch` random rows
        let take = batch.min(matching.len());
        for i in 0..take {
            let j = rng.gen_range(i..matching.len());
            matching.swap(i, j);
        }
        let chosen = &matching[..take];
        for &i in chosen {
            self.available[i] = false;
        }
        self.pool.take(chosen)
    }

    /// The pool's schema.
    pub fn schema(&self) -> &rdi_table::Schema {
        self.pool.schema()
    }
}

/// How the consumer picks predicates.
#[derive(Debug, Clone)]
pub enum AcquisitionStrategy {
    /// Pick a uniformly random predicate each round (baseline).
    Random,
    /// Round-robin over all predicates for `explore_rounds` rounds (one
    /// probe each, cyclically), then always pick the highest-novelty
    /// predicate.
    ExploreExploit {
        /// Rounds spent probing before switching to exploitation.
        explore_rounds: usize,
    },
}

/// Result of an acquisition session.
#[derive(Debug, Clone)]
pub struct AcquisitionOutcome {
    /// The consumer's holdings after acquisition (initial ∪ acquired).
    pub owned: Table,
    /// Queries issued per candidate predicate.
    pub queries_per_predicate: Vec<usize>,
    /// Rows acquired in total.
    pub acquired_rows: usize,
}

/// Run an acquisition session of `rounds` queries of `batch` rows each.
///
/// Novelty of predicate `p` = (estimated provider fraction matching `p`)
/// − (owned fraction matching `p`), with provider fractions estimated
/// from the per-query response *fill rates* observed so far (a query
/// returning fewer rows than `batch` reveals scarcity).
pub fn acquire_from_market<R: Rng>(
    provider: &mut MarketProvider,
    initial: &Table,
    predicates: &[Predicate],
    batch: usize,
    rounds: usize,
    strategy: &AcquisitionStrategy,
    rng: &mut R,
) -> rdi_table::Result<AcquisitionOutcome> {
    if predicates.is_empty() {
        return Err(TableError::SchemaMismatch("no candidate predicates".into()));
    }
    if initial.schema() != provider.schema() {
        return Err(TableError::SchemaMismatch(
            "consumer and provider schemas differ".into(),
        ));
    }
    let mut owned = initial.clone();
    let mut queries = vec![0usize; predicates.len()];
    // provider-fraction estimates: received rows / requested rows (Laplace)
    let mut received = vec![0.0f64; predicates.len()];
    let mut requested = vec![0.0f64; predicates.len()];
    let mut acquired_rows = 0;

    for round in 0..rounds {
        let choice = match strategy {
            AcquisitionStrategy::Random => rng.gen_range(0..predicates.len()),
            AcquisitionStrategy::ExploreExploit { explore_rounds } => {
                if round < *explore_rounds {
                    round % predicates.len()
                } else {
                    // novelty = est. provider availability − owned share
                    let owned_n = owned.num_rows().max(1) as f64;
                    let mut best = (f64::NEG_INFINITY, 0usize);
                    for (i, p) in predicates.iter().enumerate() {
                        let fill = (received[i] + 1.0) / (requested[i] + 2.0);
                        let owned_frac = p.count(&owned) as f64 / owned_n;
                        let novelty = fill - owned_frac;
                        if novelty > best.0 {
                            best = (novelty, i);
                        }
                    }
                    best.1
                }
            }
        };
        let got = provider.query(&predicates[choice], batch, rng);
        queries[choice] += 1;
        requested[choice] += batch as f64;
        received[choice] += got.num_rows() as f64;
        acquired_rows += got.num_rows();
        owned.append(&got)?;
    }
    Ok(AcquisitionOutcome {
        owned,
        queries_per_predicate: queries,
        acquired_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive)
        ])
    }

    fn table(rows: &[(&str, usize)]) -> Table {
        let mut t = Table::new(schema());
        for (g, n) in rows {
            for _ in 0..*n {
                t.push_row(vec![Value::str(*g)]).unwrap();
            }
        }
        t
    }

    fn preds() -> Vec<Predicate> {
        vec![
            Predicate::eq("g", Value::str("a")),
            Predicate::eq("g", Value::str("b")),
        ]
    }

    #[test]
    fn provider_samples_without_replacement() {
        let mut p = MarketProvider::new(table(&[("a", 10)]));
        let mut rng = StdRng::seed_from_u64(1);
        let first = p.query(&preds()[0], 6, &mut rng);
        assert_eq!(first.num_rows(), 6);
        assert_eq!(p.remaining(), 4);
        let second = p.query(&preds()[0], 6, &mut rng);
        assert_eq!(second.num_rows(), 4); // exhausted
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn explore_exploit_fills_the_gap() {
        // provider pool is 50/50; consumer starts with only group "a"
        let mut provider = MarketProvider::new(table(&[("a", 500), ("b", 500)]));
        let initial = table(&[("a", 200)]);
        let mut rng = StdRng::seed_from_u64(2);
        let out = acquire_from_market(
            &mut provider,
            &initial,
            &preds(),
            20,
            20,
            &AcquisitionStrategy::ExploreExploit { explore_rounds: 4 },
            &mut rng,
        )
        .unwrap();
        // most exploitation queries should target the missing group "b"
        assert!(
            out.queries_per_predicate[1] > out.queries_per_predicate[0],
            "queries={:?}",
            out.queries_per_predicate
        );
        let b_count = Predicate::eq("g", Value::str("b")).count(&out.owned);
        let a_acquired = Predicate::eq("g", Value::str("a")).count(&out.owned) - 200;
        assert!(b_count > a_acquired, "b={b_count} a_new={a_acquired}");
    }

    #[test]
    fn random_strategy_spreads_queries() {
        let mut provider = MarketProvider::new(table(&[("a", 500), ("b", 500)]));
        let initial = table(&[("a", 200)]);
        let mut rng = StdRng::seed_from_u64(3);
        let out = acquire_from_market(
            &mut provider,
            &initial,
            &preds(),
            20,
            30,
            &AcquisitionStrategy::Random,
            &mut rng,
        )
        .unwrap();
        assert!(out.queries_per_predicate[0] > 5);
        assert!(out.queries_per_predicate[1] > 5);
        assert_eq!(out.queries_per_predicate.iter().sum::<usize>(), 30);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut provider = MarketProvider::new(table(&[("a", 10)]));
        let other = Table::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(acquire_from_market(
            &mut provider,
            &other,
            &preds(),
            5,
            2,
            &AcquisitionStrategy::Random,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn empty_predicates_rejected() {
        let mut provider = MarketProvider::new(table(&[("a", 10)]));
        let initial = table(&[]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(acquire_from_market(
            &mut provider,
            &initial,
            &[],
            5,
            2,
            &AcquisitionStrategy::Random,
            &mut rng
        )
        .is_err());
    }
}
