//! From-scratch model substrate: logistic regression and Gaussian naive
//! Bayes, with per-group evaluation.
//!
//! These models exist so acquisition experiments can measure "did the data
//! I collected actually improve accuracy/fairness" without an external ML
//! dependency. They are deliberately simple, deterministic, and fast.

use rand::Rng;
use rdi_table::{GroupKey, GroupSpec, Table};
use serde::{Deserialize, Serialize};

use rdi_fairness::metrics::{
    demographic_parity_difference, equalized_odds_difference, tally_outcomes,
};

/// A design matrix: feature rows, boolean targets, and the kept row indices.
pub type DesignMatrix = (Vec<Vec<f64>>, Vec<bool>, Vec<usize>);

/// Extract an (X, y) design matrix from a table: the named numeric feature
/// columns and a boolean target. Rows with a null feature or target are
/// skipped; returns the kept row indices too.
pub fn design_matrix(
    table: &Table,
    features: &[&str],
    target: &str,
) -> rdi_table::Result<DesignMatrix> {
    let cols: Vec<&rdi_table::Column> = features
        .iter()
        .map(|f| table.column(f))
        .collect::<rdi_table::Result<_>>()?;
    let tcol = table.column(target)?;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut keep = Vec::new();
    for i in 0..table.num_rows() {
        let row: Option<Vec<f64>> = cols.iter().map(|c| c.value(i).as_f64()).collect();
        let y = tcol.value(i);
        let yb = y.as_bool().or_else(|| y.as_f64().map(|v| v > 0.5));
        if let (Some(row), Some(yb)) = (row, yb) {
            xs.push(row);
            ys.push(yb);
            keep.push(i);
        }
    }
    Ok((xs, ys, keep))
}

/// Logistic regression trained with plain SGD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LogisticRegression {
    /// Train on a design matrix. `epochs` full passes, learning rate
    /// `lr`, L2 penalty `l2`. Row order is shuffled deterministically by
    /// `rng` each epoch.
    pub fn train<R: Rng>(
        xs: &[Vec<f64>],
        ys: &[bool],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty training set");
        let d = xs[0].len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..epochs {
            // Fisher–Yates
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let z = b + w.iter().zip(&xs[i]).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - (ys[i] as u8 as f64);
                for (wi, xi) in w.iter_mut().zip(&xs[i]) {
                    *wi -= lr * (err * xi + l2 * *wi);
                }
                b -= lr * err;
            }
        }
        LogisticRegression {
            weights: w,
            bias: b,
        }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(wi, xi)| wi * xi)
                .sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Mean log-loss on a data set.
    pub fn log_loss(&self, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let eps = 1e-12;
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let p = self.predict_proba(x).clamp(eps, 1.0 - eps);
            total -= if y { p.ln() } else { (1.0 - p).ln() };
        }
        total / xs.len() as f64
    }
}

/// Gaussian naive Bayes (per-class feature means/variances).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNb {
    prior_pos: f64,
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
}

impl GaussianNb {
    /// Fit on a design matrix.
    pub fn train(xs: &[Vec<f64>], ys: &[bool]) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty training set");
        let d = xs[0].len();
        let mut mean = [vec![0.0; d], vec![0.0; d]];
        let mut var = [vec![0.0; d], vec![0.0; d]];
        let mut count = [0usize; 2];
        for (x, &y) in xs.iter().zip(ys) {
            let c = y as usize;
            count[c] += 1;
            for (m, xi) in mean[c].iter_mut().zip(x) {
                *m += xi;
            }
        }
        for c in 0..2 {
            for m in &mut mean[c] {
                *m /= count[c].max(1) as f64;
            }
        }
        for (x, &y) in xs.iter().zip(ys) {
            let c = y as usize;
            for ((v, m), xi) in var[c].iter_mut().zip(&mean[c]).zip(x) {
                *v += (xi - m).powi(2);
            }
        }
        for c in 0..2 {
            for v in &mut var[c] {
                *v = (*v / count[c].max(1) as f64).max(1e-9);
            }
        }
        GaussianNb {
            prior_pos: count[1] as f64 / xs.len() as f64,
            mean,
            var,
        }
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        let ll = |c: usize, prior: f64| -> f64 {
            let mut s = prior.max(1e-12).ln();
            for ((xi, m), v) in x.iter().zip(&self.mean[c]).zip(&self.var[c]) {
                s += -0.5 * ((xi - m).powi(2) / v + v.ln());
            }
            s
        };
        ll(1, self.prior_pos) >= ll(0, 1.0 - self.prior_pos)
    }
}

/// Evaluation of a classifier on a labeled, group-annotated test set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEval {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Per-group accuracy, sorted by group key.
    pub group_accuracy: Vec<(String, f64)>,
    /// Demographic parity difference of predictions.
    pub parity_difference: f64,
    /// Equalized-odds difference.
    pub equalized_odds: f64,
}

/// Evaluate predictions against a test table.
pub fn evaluate(
    table: &Table,
    features: &[&str],
    target: &str,
    spec: &GroupSpec,
    predict: impl Fn(&[f64]) -> bool,
) -> rdi_table::Result<ModelEval> {
    let (xs, ys, keep) = design_matrix(table, features, target)?;
    let mut preds = Vec::with_capacity(xs.len());
    let mut groups: Vec<GroupKey> = Vec::with_capacity(xs.len());
    for (x, &i) in xs.iter().zip(&keep) {
        preds.push(predict(x));
        groups.push(spec.key_of(table, i)?);
    }
    let correct = preds.iter().zip(&ys).filter(|(p, y)| p == y).count();
    let outcomes = tally_outcomes(&preds, &ys, &groups);
    let mut group_accuracy: Vec<(String, f64)> = rdi_fairness::metrics::group_accuracy(&outcomes)
        .into_iter()
        .map(|(k, a)| (k.to_string(), a))
        .collect();
    group_accuracy.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(ModelEval {
        accuracy: correct as f64 / preds.len().max(1) as f64,
        group_accuracy,
        parity_difference: demographic_parity_difference(&outcomes),
        equalized_odds: equalized_odds_difference(&outcomes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    fn separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y: bool = rng.gen();
            let base = if y { 1.5 } else { -1.5 };
            xs.push(vec![
                base + rng.gen_range(-1.0..1.0),
                base + rng.gen_range(-1.0..1.0),
            ]);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn logreg_learns_separable_data() {
        let (xs, ys) = separable(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let m = LogisticRegression::train(&xs, &ys, 10, 0.1, 1e-4, &mut rng);
        let (tx, ty) = separable(400, 3);
        let acc = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / 400.0;
        assert!(acc > 0.9, "acc={acc}");
        assert!(m.log_loss(&tx, &ty) < 0.4);
    }

    #[test]
    fn gnb_learns_separable_data() {
        let (xs, ys) = separable(800, 4);
        let m = GaussianNb::train(&xs, &ys);
        let (tx, ty) = separable(400, 5);
        let acc = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / 400.0;
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn more_data_means_lower_loss() {
        let (tx, ty) = separable(1000, 6);
        let mut losses = Vec::new();
        for n in [20, 100, 600] {
            let (xs, ys) = separable(n, 7);
            let mut rng = StdRng::seed_from_u64(8);
            let m = LogisticRegression::train(&xs, &ys, 15, 0.05, 1e-4, &mut rng);
            losses.push(m.log_loss(&tx, &ty));
        }
        assert!(losses[0] > losses[2], "losses={losses:?}");
    }

    #[test]
    fn design_matrix_skips_incomplete_rows() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Float(1.0), Value::Bool(true)])
            .unwrap();
        t.push_row(vec![Value::Null, Value::Bool(false)]).unwrap();
        t.push_row(vec![Value::Float(2.0), Value::Null]).unwrap();
        let (xs, ys, keep) = design_matrix(&t, &["x"], "y").unwrap();
        assert_eq!(xs.len(), 1);
        assert_eq!(ys, vec![true]);
        assert_eq!(keep, vec![0]);
    }

    #[test]
    fn evaluate_reports_group_gaps() {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Bool).with_role(Role::Target),
        ]);
        let mut t = Table::new(schema);
        // group a: y = x > 0 (model will be right); group b: y inverted
        for i in 0..100 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let g = if i < 50 { "a" } else { "b" };
            let y = if g == "a" { x > 0.0 } else { x < 0.0 };
            t.push_row(vec![Value::str(g), Value::Float(x), Value::Bool(y)])
                .unwrap();
        }
        let spec = GroupSpec::new(vec!["g"]);
        let eval = evaluate(&t, &["x"], "y", &spec, |x| x[0] > 0.0).unwrap();
        assert!((eval.accuracy - 0.5).abs() < 1e-9);
        let a = eval
            .group_accuracy
            .iter()
            .find(|(g, _)| g == "(a)")
            .unwrap();
        let b = eval
            .group_accuracy
            .iter()
            .find(|(g, _)| g == "(b)")
            .unwrap();
        assert_eq!(a.1, 1.0);
        assert_eq!(b.1, 0.0);
        assert!(eval.equalized_odds > 0.9);
    }
}
