//! Coverage-based query relaxation (Accinelli, Catania, Guerrini, Minisi).
//!
//! Instead of bounding *disparity*, coverage-based rewriting minimally
//! **widens** a range predicate until every demographic group has at
//! least `k` rows in the output — rewriting "only relaxes", never drops
//! rows the user asked for.

use rdi_obs::ProvenanceEvent;
use rdi_policy::{Candidate, PolicyId, PolicyParams, RankByScore, Score, SelectionPolicy};
use rdi_table::{GroupKey, GroupSpec, Table};
use serde::{Deserialize, Serialize};

/// Result of a relaxation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relaxation {
    /// Relaxed lower bound (≤ original lo).
    pub lo: f64,
    /// Relaxed upper bound (≥ original hi).
    pub hi: f64,
    /// Rows added relative to the original output.
    pub added_rows: usize,
    /// Per-group counts in the relaxed output, sorted by key.
    pub group_counts: Vec<(String, usize)>,
    /// Whether every group reached the required count (false only when
    /// the whole data set cannot supply it).
    pub satisfied: bool,
}

/// Minimally widen `[lo, hi]` on `attribute` until every group under
/// `spec` has at least `k` selected rows (or the data is exhausted).
///
/// Greedy two-pointer over the sorted attribute values: at each step the
/// widening (left or right) that adds a row of a *deficient* group closer
/// to the current boundary is taken. Delegates to
/// [`relax_for_coverage_explained`] under the default
/// `fairquery.relax` policy params and discards the audit trail.
pub fn relax_for_coverage(
    table: &Table,
    attribute: &str,
    spec: &GroupSpec,
    lo: f64,
    hi: f64,
    k: usize,
) -> rdi_table::Result<Relaxation> {
    relax_for_coverage_explained(table, attribute, spec, lo, hi, k, &PolicyParams::new())
        .map(|(r, _)| r)
}

/// [`relax_for_coverage`] with the widening choice routed through the
/// `fairquery.relax` selection policy and every step's
/// [`ProvenanceEvent::PolicyDecision`] returned alongside the result.
///
/// Each step scores the two frontier candidates (`left` = `pts[i-1]`,
/// `right` = `pts[j]`) by the tuple *(helps a deficient group, −gap to
/// the boundary)*; under the default params (`dir=max`, `tie=key_asc`)
/// the winner is exactly the historic greedy rule — help beats no-help,
/// then the smaller gap, then `left` on an exact tie.
pub fn relax_for_coverage_explained(
    table: &Table,
    attribute: &str,
    spec: &GroupSpec,
    lo: f64,
    hi: f64,
    k: usize,
    params: &PolicyParams,
) -> rdi_table::Result<(Relaxation, Vec<ProvenanceEvent>)> {
    let col = table.column(attribute)?;
    let mut pts: Vec<(f64, GroupKey)> = Vec::new();
    for i in 0..table.num_rows() {
        if let Some(x) = col.value(i).as_f64() {
            pts.push((x, spec.key_of(table, i)?));
        }
    }
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let keys = spec.keys(table)?;

    let mut i = pts.partition_point(|(x, _)| *x < lo);
    let mut j = pts.partition_point(|(x, _)| *x <= hi);
    let original = j - i;
    let mut counts: std::collections::BTreeMap<GroupKey, usize> =
        keys.iter().map(|k| (k.clone(), 0)).collect();
    for (_, g) in &pts[i..j] {
        *counts.entry(g.clone()).or_insert(0) += 1;
    }

    let deficient = |counts: &std::collections::BTreeMap<GroupKey, usize>| {
        keys.iter().any(|g| counts.get(g).copied().unwrap_or(0) < k)
    };

    let policy = RankByScore::new(PolicyId::FAIRQUERY_RELAX);
    let mut events = Vec::new();
    while deficient(&counts) {
        // candidate expansions: take pts[i-1] (left) or pts[j] (right);
        // prefer the one that helps a deficient group; tie → smaller gap.
        let left = i.checked_sub(1).map(|p| &pts[p]);
        let right = pts.get(j);
        let helps = |p: &(f64, GroupKey)| counts.get(&p.1).copied().unwrap_or(0) < k;
        let step = |p: &(f64, GroupKey), gap: f64| {
            Score::Tuple(vec![Score::U64(u64::from(helps(p))), Score::F64(-gap)])
        };
        let mut candidates = Vec::new();
        if let Some(l) = left {
            candidates.push(Candidate::new("left", step(l, (lo - l.0).abs())));
        }
        if let Some(r) = right {
            candidates.push(Candidate::new("right", step(r, (r.0 - hi).abs())));
        }
        if candidates.is_empty() {
            break; // data exhausted
        }
        let decision = policy.choose(&candidates, params);
        events.push(rdi_obs::policy_decision_event(
            &decision.rationale(&candidates, params),
        ));
        if decision.winner_key(&candidates) == Some("left") {
            i -= 1;
            *counts.entry(pts[i].1.clone()).or_insert(0) += 1;
        } else {
            *counts.entry(pts[j].1.clone()).or_insert(0) += 1;
            j += 1;
        }
    }

    let satisfied = !deficient(&counts);
    let (new_lo, new_hi) = if i < j {
        (pts[i].0.min(lo), pts[j - 1].0.max(hi))
    } else {
        (lo, hi)
    };
    let mut group_counts: Vec<(String, usize)> = keys
        .iter()
        .map(|g| (g.to_string(), counts.get(g).copied().unwrap_or(0)))
        .collect();
    group_counts.sort();
    Ok((
        Relaxation {
            lo: new_lo,
            hi: new_hi,
            added_rows: (j - i).saturating_sub(original),
            group_counts,
            satisfied,
        },
        events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdi_table::{DataType, Field, Role, Schema, Value};

    fn t(rows: &[(f64, &str)]) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
        ]);
        let mut t = Table::new(schema);
        for (x, g) in rows {
            t.push_row(vec![Value::Float(*x), Value::str(*g)]).unwrap();
        }
        t
    }

    #[test]
    fn no_relaxation_needed_when_covered() {
        let table = t(&[(1.0, "a"), (2.0, "b"), (3.0, "a"), (4.0, "b")]);
        let spec = GroupSpec::new(vec!["g"]);
        let r = relax_for_coverage(&table, "x", &spec, 1.0, 4.0, 1).unwrap();
        assert!(r.satisfied);
        assert_eq!(r.added_rows, 0);
        assert_eq!(r.lo, 1.0);
        assert_eq!(r.hi, 4.0);
    }

    #[test]
    fn widens_toward_missing_group() {
        // group b only exists above 10
        let table = t(&[(1.0, "a"), (2.0, "a"), (3.0, "a"), (11.0, "b"), (12.0, "b")]);
        let spec = GroupSpec::new(vec!["g"]);
        let r = relax_for_coverage(&table, "x", &spec, 0.0, 5.0, 2).unwrap();
        assert!(r.satisfied);
        assert_eq!(r.hi, 12.0);
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.added_rows, 2);
        let b = r
            .group_counts
            .iter()
            .find(|(g, _)| g.contains('b'))
            .unwrap();
        assert_eq!(b.1, 2);
    }

    #[test]
    fn reports_unsatisfiable() {
        let table = t(&[(1.0, "a"), (2.0, "a")]);
        let spec = GroupSpec::new(vec!["g"]);
        // only one group exists with 2 rows; k=3 impossible
        let r = relax_for_coverage(&table, "x", &spec, 1.0, 2.0, 3).unwrap();
        assert!(!r.satisfied);
    }

    #[test]
    fn relaxation_never_shrinks() {
        let table = t(&[(0.0, "a"), (5.0, "b"), (10.0, "a"), (15.0, "b")]);
        let spec = GroupSpec::new(vec!["g"]);
        let r = relax_for_coverage(&table, "x", &spec, 4.0, 6.0, 2).unwrap();
        assert!(r.lo <= 4.0);
        assert!(r.hi >= 6.0);
        assert!(r.satisfied);
    }

    #[test]
    fn explained_audits_every_widening_step() {
        let table = t(&[(1.0, "a"), (2.0, "a"), (3.0, "a"), (11.0, "b"), (12.0, "b")]);
        let spec = GroupSpec::new(vec!["g"]);
        let (r, events) =
            relax_for_coverage_explained(&table, "x", &spec, 0.0, 5.0, 2, &PolicyParams::new())
                .unwrap();
        assert!(r.satisfied);
        // two rows of `b` pulled in from the right, one decision each
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| matches!(
            e,
            ProvenanceEvent::PolicyDecision { policy, .. } if policy == "fairquery.relax"
        )));
    }

    #[test]
    fn relax_params_override_flips_the_first_widening() {
        // left frontier (1.0, gap 1) and right frontier (7.0, gap 3)
        // both help a deficient group: the default picks the closer
        // (left); `dir=min` inverts the ranking and widens right first.
        let table = t(&[(1.0, "a"), (7.0, "b")]);
        let spec = GroupSpec::new(vec!["g"]);
        let defaults =
            relax_for_coverage_explained(&table, "x", &spec, 2.0, 4.0, 1, &PolicyParams::new())
                .unwrap();
        let flipped = relax_for_coverage_explained(
            &table,
            "x",
            &spec,
            2.0,
            4.0,
            1,
            &PolicyParams::new().with("dir", "min"),
        )
        .unwrap();
        let first = |events: &[ProvenanceEvent]| match &events[0] {
            ProvenanceEvent::PolicyDecision { winner, .. } => winner.clone(),
            _ => None,
        };
        assert_eq!(first(&defaults.1), Some("left".to_string()));
        assert_eq!(first(&flipped.1), Some("right".to_string()));
        // both routes exhaust the same frontier here, so the final
        // relaxation agrees; only the audited order differs
        assert_eq!(defaults.0, flipped.0);
    }

    #[test]
    fn works_with_three_groups() {
        let table = t(&[
            (1.0, "a"),
            (2.0, "b"),
            (3.0, "c"),
            (4.0, "a"),
            (5.0, "b"),
            (6.0, "c"),
        ]);
        let spec = GroupSpec::new(vec!["g"]);
        let r = relax_for_coverage(&table, "x", &spec, 1.0, 2.0, 1).unwrap();
        assert!(r.satisfied);
        assert!(r.hi >= 3.0);
    }
}
