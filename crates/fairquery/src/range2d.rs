//! Fairness-aware range queries over **two** numeric attributes.
//!
//! The 1-D engine's trick (sorted order + prefix counts) generalizes: we
//! quantize each axis to at most `g` candidate endpoints (quantiles of the
//! data), build 2-D prefix-sum grids per group, and scan the O(g⁴)
//! candidate boxes with O(1) disparity/overlap evaluation each. With the
//! default g=12 that is ~10⁴ boxes — interactive, while staying exact
//! *with respect to the quantized endpoint set*.

use rdi_table::{GroupSpec, Table, TableError};
use serde::{Deserialize, Serialize};

/// A proposed fair 2-D box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairBox {
    /// x lower bound (inclusive).
    pub x_lo: f64,
    /// x upper bound (inclusive).
    pub x_hi: f64,
    /// y lower bound (inclusive).
    pub y_lo: f64,
    /// y upper bound (inclusive).
    pub y_hi: f64,
    /// |#A − #B| inside the proposed box.
    pub disparity: i64,
    /// |orig ∩ proposed| / |orig ∪ proposed| over selected points.
    pub similarity: f64,
    /// Points selected by the proposed box.
    pub selected: usize,
}

/// 2-D engine over `(x, y, is_group_a)` points.
#[derive(Debug, Clone)]
pub struct RangeQuery2d {
    /// Candidate x endpoints (sorted, deduped, quantized).
    xs: Vec<f64>,
    /// Candidate y endpoints.
    ys: Vec<f64>,
    /// prefix_total[i][j] = # points with x < xs[i] threshold index i and
    /// y index j (standard 2-D prefix sums over the quantized grid).
    prefix_total: Vec<Vec<i64>>,
    /// Same, group A only.
    prefix_a: Vec<Vec<i64>>,
}

impl RangeQuery2d {
    /// Build from points, quantizing each axis to at most `grid`
    /// endpoints (quantiles).
    ///
    /// # Panics
    /// Panics on empty input or `grid < 2`.
    pub fn from_points(points: &[(f64, f64, bool)], grid: usize) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        assert!(grid >= 2);
        let quantize = |mut vals: Vec<f64>| -> Vec<f64> {
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() <= grid {
                return vals;
            }
            let n = vals.len();
            let mut out: Vec<f64> = (0..grid).map(|k| vals[k * (n - 1) / (grid - 1)]).collect();
            out.dedup();
            out
        };
        let xs = quantize(points.iter().map(|p| p.0).collect());
        let ys = quantize(points.iter().map(|p| p.1).collect());
        // cell (i, j) counts points with xs[i] ≤ x < xs[i+1] (last cell
        // open-ended), analogous for y; prefix sums then give any
        // endpoint-aligned box in O(1).
        let nx = xs.len();
        let ny = ys.len();
        let mut cell_total = vec![vec![0i64; ny]; nx];
        let mut cell_a = vec![vec![0i64; ny]; nx];
        for &(x, y, is_a) in points {
            let i = match xs.partition_point(|&v| v <= x) {
                0 => 0,
                k => k - 1,
            };
            let j = match ys.partition_point(|&v| v <= y) {
                0 => 0,
                k => k - 1,
            };
            cell_total[i][j] += 1;
            if is_a {
                cell_a[i][j] += 1;
            }
        }
        let prefix = |cell: &Vec<Vec<i64>>| -> Vec<Vec<i64>> {
            let mut p = vec![vec![0i64; ny + 1]; nx + 1];
            for i in 0..nx {
                for j in 0..ny {
                    p[i + 1][j + 1] = cell[i][j] + p[i][j + 1] + p[i + 1][j] - p[i][j];
                }
            }
            p
        };
        RangeQuery2d {
            prefix_total: prefix(&cell_total),
            prefix_a: prefix(&cell_a),
            xs,
            ys,
        }
    }

    /// Build from a table: two numeric attributes and a binary group.
    pub fn build(
        table: &Table,
        x_attr: &str,
        y_attr: &str,
        spec: &GroupSpec,
        grid: usize,
    ) -> rdi_table::Result<Self> {
        let keys = spec.keys(table)?;
        if keys.len() != 2 {
            return Err(TableError::SchemaMismatch(format!(
                "2-D fair ranges need exactly 2 groups, found {}",
                keys.len()
            )));
        }
        let xcol = table.column(x_attr)?;
        let ycol = table.column(y_attr)?;
        let mut pts = Vec::new();
        for i in 0..table.num_rows() {
            if let (Some(x), Some(y)) = (xcol.value(i).as_f64(), ycol.value(i).as_f64()) {
                pts.push((x, y, spec.key_of(table, i)? == keys[0]));
            }
        }
        if pts.is_empty() {
            return Err(TableError::SchemaMismatch("no numeric points".into()));
        }
        Ok(RangeQuery2d::from_points(&pts, grid))
    }

    /// Count of (total, group A) inside the endpoint-index box
    /// `[i1, i2) × [j1, j2)` over grid cells.
    fn counts(&self, i1: usize, i2: usize, j1: usize, j2: usize) -> (i64, i64) {
        let q = |p: &Vec<Vec<i64>>| p[i2][j2] - p[i1][j2] - p[i2][j1] + p[i1][j1];
        (q(&self.prefix_total), q(&self.prefix_a))
    }

    fn disparity_box(&self, b: (usize, usize, usize, usize)) -> i64 {
        let (t, a) = self.counts(b.0, b.1, b.2, b.3);
        (2 * a - t).abs()
    }

    /// Snap a user box to endpoint indices (cells whose lower corner lies
    /// inside the range).
    fn snap(&self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> (usize, usize, usize, usize) {
        let i1 = self.xs.partition_point(|&v| v < x_lo);
        let i2 = self.xs.partition_point(|&v| v <= x_hi);
        let j1 = self.ys.partition_point(|&v| v < y_lo);
        let j2 = self.ys.partition_point(|&v| v <= y_hi);
        (i1, i2.max(i1), j1, j2.max(j1))
    }

    /// Disparity of a user-supplied box (snapped to the grid).
    pub fn disparity(&self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> i64 {
        self.disparity_box(self.snap(x_lo, x_hi, y_lo, y_hi))
    }

    /// The most similar endpoint-aligned box with disparity ≤ `epsilon`.
    ///
    /// Similarity is Jaccard over selected points, computed exactly from
    /// the prefix grids (box intersections are boxes).
    pub fn fair_box(&self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64, epsilon: i64) -> FairBox {
        let orig = self.snap(x_lo, x_hi, y_lo, y_hi);
        let (orig_count, _) = self.counts(orig.0, orig.1, orig.2, orig.3);
        let nx = self.xs.len();
        let ny = self.ys.len();
        let mut best: Option<((usize, usize, usize, usize), f64)> = None;
        for i1 in 0..=nx {
            for i2 in i1..=nx {
                for j1 in 0..=ny {
                    for j2 in j1..=ny {
                        let b = (i1, i2, j1, j2);
                        if self.disparity_box(b) > epsilon {
                            continue;
                        }
                        // intersection box
                        let ii1 = i1.max(orig.0);
                        let ii2 = i2.min(orig.1);
                        let jj1 = j1.max(orig.2);
                        let jj2 = j2.min(orig.3);
                        let inter = if ii1 < ii2 && jj1 < jj2 {
                            self.counts(ii1, ii2, jj1, jj2).0
                        } else {
                            0
                        };
                        let (cand_count, _) = self.counts(i1, i2, j1, j2);
                        let union = orig_count + cand_count - inter;
                        let sim = if union == 0 {
                            1.0
                        } else {
                            inter as f64 / union as f64
                        };
                        if best.is_none_or(|(_, s)| sim > s) {
                            best = Some((b, sim));
                        }
                    }
                }
            }
        }
        // With ε ≥ 0 the empty box is always feasible; the fallback fires
        // only for a negative ε — degrade to the empty box, not a panic.
        let empty_sim = if orig_count == 0 { 1.0 } else { 0.0 };
        let ((i1, i2, j1, j2), sim) = best.unwrap_or(((0, 0, 0, 0), empty_sim));
        let (selected, a) = self.counts(i1, i2, j1, j2);
        let bound = |endpoints: &[f64], lo_idx: usize, hi_idx: usize| -> (f64, f64) {
            if lo_idx >= hi_idx {
                (f64::INFINITY, f64::NEG_INFINITY)
            } else {
                (
                    endpoints[lo_idx],
                    endpoints.get(hi_idx).copied().unwrap_or(f64::INFINITY),
                )
            }
        };
        let (bx_lo, bx_hi) = bound(&self.xs, i1, i2);
        let (by_lo, by_hi) = bound(&self.ys, j1, j2);
        FairBox {
            x_lo: bx_lo,
            x_hi: bx_hi,
            y_lo: by_lo,
            y_hi: by_hi,
            disparity: (2 * a - selected).abs(),
            similarity: sim,
            selected: selected as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// group A fills the left half plane, B the right; y uniform.
    fn split_cloud() -> Vec<(f64, f64, bool)> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..10 {
                let x = i as f64;
                let y = j as f64;
                pts.push((x, y, i < 10));
            }
        }
        pts
    }

    #[test]
    fn disparity_of_unbalanced_box() {
        let e = RangeQuery2d::from_points(&split_cloud(), 30);
        // box covering only the left (A) half
        assert_eq!(e.disparity(0.0, 9.0, 0.0, 9.0), 100);
        // the full plane is balanced
        assert_eq!(e.disparity(0.0, 19.0, 0.0, 9.0), 0);
    }

    #[test]
    fn fair_box_straddles_the_boundary() {
        let e = RangeQuery2d::from_points(&split_cloud(), 30);
        // user asks for the A-heavy left; ε=0 forces a balanced box
        let fb = e.fair_box(0.0, 12.0, 0.0, 9.0, 0);
        assert_eq!(fb.disparity, 0);
        assert!(fb.similarity > 0.5, "sim={}", fb.similarity);
        assert!(fb.x_lo < 10.0 && fb.x_hi >= 10.0, "{fb:?}");
    }

    #[test]
    fn already_fair_box_is_kept() {
        let e = RangeQuery2d::from_points(&split_cloud(), 30);
        let fb = e.fair_box(5.0, 14.0, 2.0, 7.0, 0);
        assert_eq!(fb.disparity, 0);
        assert_eq!(fb.similarity, 1.0);
    }

    #[test]
    fn epsilon_relaxes_the_constraint_monotonically() {
        let e = RangeQuery2d::from_points(&split_cloud(), 30);
        let mut last = 0.0;
        for eps in [0, 20, 60, 200] {
            let fb = e.fair_box(0.0, 12.0, 0.0, 9.0, eps);
            assert!(fb.disparity <= eps);
            assert!(fb.similarity >= last - 1e-12, "eps={eps}");
            last = fb.similarity;
        }
        assert_eq!(last, 1.0); // ε=200 admits the original box
    }

    #[test]
    fn quantization_caps_grid_size() {
        let pts: Vec<(f64, f64, bool)> = (0..5_000)
            .map(|i| (i as f64 * 0.01, (i % 97) as f64, i % 2 == 0))
            .collect();
        let e = RangeQuery2d::from_points(&pts, 8);
        assert!(e.xs.len() <= 8);
        assert!(e.ys.len() <= 8);
        let fb = e.fair_box(0.0, 25.0, 0.0, 50.0, 10);
        assert!(fb.disparity <= 10);
    }

    #[test]
    fn build_from_table_validates_groups() {
        use rdi_table::{DataType, Field, Role, Schema, Value};
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (g, x, y) in [("a", 1.0, 1.0), ("b", 2.0, 2.0), ("a", 3.0, 0.0)] {
            t.push_row(vec![Value::str(g), Value::Float(x), Value::Float(y)])
                .unwrap();
        }
        let spec = GroupSpec::new(vec!["g"]);
        let e = RangeQuery2d::build(&t, "x", "y", &spec, 8).unwrap();
        assert!(e.disparity(0.0, 3.0, 0.0, 2.0) >= 1);
    }
}
