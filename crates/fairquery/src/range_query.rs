//! The 1-D fairness-aware range query engine.

use rdi_table::{GroupKey, GroupSpec, Table, TableError};
use serde::{Deserialize, Serialize};

/// A proposed fair range with its quality measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairRange {
    /// Proposed lower bound (inclusive, an actual data value).
    pub lo: f64,
    /// Proposed upper bound (inclusive).
    pub hi: f64,
    /// |count(group A) − count(group B)| in the proposed output.
    pub disparity: i64,
    /// Jaccard similarity between the original and proposed outputs.
    pub similarity: f64,
    /// Rows selected by the proposed range.
    pub selected: usize,
}

/// Engine over one numeric attribute and a *binary* group attribute:
/// points are sorted once; per-group prefix sums answer disparity and
/// similarity for any candidate index range in O(1).
#[derive(Debug, Clone)]
pub struct RangeQueryEngine {
    /// Sorted attribute values.
    xs: Vec<f64>,
    /// prefix_a[i] = #group-A points among the first i sorted points.
    prefix_a: Vec<usize>,
}

impl RangeQueryEngine {
    /// Build from a table: numeric `attribute`, and exactly two groups
    /// under `spec` (the first sorted group key is "A"). Rows with null
    /// attribute are ignored.
    pub fn build(table: &Table, attribute: &str, spec: &GroupSpec) -> rdi_table::Result<Self> {
        let keys = spec.keys(table)?;
        if keys.len() != 2 {
            return Err(TableError::SchemaMismatch(format!(
                "fairness-aware range queries need exactly 2 groups, found {}",
                keys.len()
            )));
        }
        let col = table.column(attribute)?;
        let mut pts: Vec<(f64, bool)> = Vec::new();
        for i in 0..table.num_rows() {
            if let Some(x) = col.value(i).as_f64() {
                let key = spec.key_of(table, i)?;
                pts.push((x, key == keys[0]));
            }
        }
        if pts.is_empty() {
            return Err(TableError::SchemaMismatch("no numeric points".into()));
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
        let mut prefix_a = Vec::with_capacity(pts.len() + 1);
        prefix_a.push(0);
        for (_, is_a) in &pts {
            // the vec starts with a pushed 0, so `last` is never None
            prefix_a.push(prefix_a.last().copied().unwrap_or(0) + *is_a as usize);
        }
        Ok(RangeQueryEngine { xs, prefix_a })
    }

    /// Construct directly from `(value, is_group_a)` points.
    pub fn from_points(mut pts: Vec<(f64, bool)>) -> Self {
        assert!(!pts.is_empty());
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
        let mut prefix_a = Vec::with_capacity(pts.len() + 1);
        prefix_a.push(0);
        for (_, is_a) in &pts {
            // the vec starts with a pushed 0, so `last` is never None
            prefix_a.push(prefix_a.last().copied().unwrap_or(0) + *is_a as usize);
        }
        RangeQueryEngine { xs, prefix_a }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True iff no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Index range `[i, j)` of points with `lo ≤ x ≤ hi`.
    fn index_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let i = self.xs.partition_point(|&x| x < lo);
        let j = self.xs.partition_point(|&x| x <= hi);
        (i, j)
    }

    /// |#A − #B| within a sorted index range `[i, j)`.
    fn disparity_idx(&self, i: usize, j: usize) -> i64 {
        let a = (self.prefix_a[j] - self.prefix_a[i]) as i64;
        let total = (j - i) as i64;
        (a - (total - a)).abs()
    }

    /// Jaccard similarity of two index ranges (selected sets are
    /// contiguous runs of the sorted order, so overlap is interval
    /// intersection).
    fn similarity_idx(&self, (i1, j1): (usize, usize), (i2, j2): (usize, usize)) -> f64 {
        let inter = j1.min(j2).saturating_sub(i1.max(i2));
        let union = (j1 - i1) + (j2 - i2) - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Disparity of the user's original range.
    pub fn disparity(&self, lo: f64, hi: f64) -> i64 {
        let (i, j) = self.index_range(lo, hi);
        self.disparity_idx(i, j)
    }

    /// **Exact** fairest-similar range: among all candidate index ranges
    /// with disparity ≤ `epsilon`, return the one maximizing Jaccard
    /// similarity to the original range. O(n²) candidates with O(1)
    /// scoring; exact counterpart for the heuristic and the benchmarks.
    pub fn fair_range_exact(&self, lo: f64, hi: f64, epsilon: i64) -> FairRange {
        let orig = self.index_range(lo, hi);
        let n = self.xs.len();
        let mut best: Option<((usize, usize), f64)> = None;
        for i in 0..=n {
            // ranges [i, j): j ≥ i
            for j in i..=n {
                if self.disparity_idx(i, j) > epsilon {
                    continue;
                }
                let sim = self.similarity_idx(orig, (i, j));
                if best.is_none_or(|(_, s)| sim > s) {
                    best = Some(((i, j), sim));
                }
            }
        }
        // With ε ≥ 0 the empty range [0, 0) is always feasible, so the
        // fallback only fires for a (nonsensical) negative ε — degrade to
        // the empty range rather than panic.
        let ((i, j), sim) = best.unwrap_or(((0, 0), self.similarity_idx(orig, (0, 0))));
        self.materialize(i, j, sim)
    }

    /// The `k` most similar fair ranges (disparity ≤ `epsilon`), best
    /// first, with *meaningfully different* outputs: candidates whose
    /// selected-set Jaccard with an already-returned range exceeds 0.95
    /// are skipped. This powers the "explore different choices" loop the
    /// paper describes: if the top proposal doesn't satisfy the user, the
    /// next alternatives are genuinely different trade-offs.
    pub fn fair_range_top_k(&self, lo: f64, hi: f64, epsilon: i64, k: usize) -> Vec<FairRange> {
        let orig = self.index_range(lo, hi);
        let n = self.xs.len();
        let mut feasible: Vec<((usize, usize), f64)> = Vec::new();
        for i in 0..=n {
            for j in i..=n {
                if self.disparity_idx(i, j) <= epsilon {
                    feasible.push(((i, j), self.similarity_idx(orig, (i, j))));
                }
            }
        }
        feasible.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out: Vec<((usize, usize), f64)> = Vec::new();
        for (cand, sim) in feasible {
            if out.len() >= k {
                break;
            }
            let redundant = out
                .iter()
                .any(|(kept, _)| self.similarity_idx(*kept, cand) > 0.95);
            if !redundant {
                out.push((cand, sim));
            }
        }
        out.into_iter()
            .map(|((i, j), sim)| self.materialize(i, j, sim))
            .collect()
    }

    /// Greedy expand/contract heuristic: repeatedly move whichever
    /// endpoint most reduces disparity (shrinking from the majority-heavy
    /// end or growing toward minority points) until the bound holds.
    /// Much faster than exact; the benchmarks measure its similarity gap.
    pub fn fair_range_greedy(&self, lo: f64, hi: f64, epsilon: i64) -> FairRange {
        let orig = self.index_range(lo, hi);
        let (mut i, mut j) = orig;
        let n = self.xs.len();
        while self.disparity_idx(i, j) > epsilon {
            // four candidate moves: i+1 (shrink left), j-1 (shrink right),
            // i-1 (grow left), j+1 (grow right)
            let mut cands: Vec<(usize, usize)> = Vec::with_capacity(4);
            if i < j {
                cands.push((i + 1, j));
                cands.push((i, j - 1));
            }
            if i > 0 {
                cands.push((i - 1, j));
            }
            if j < n {
                cands.push((i, j + 1));
            }
            // pick the move with the lowest disparity, tie-broken by
            // similarity to the original
            // `cands` is empty only for an empty engine, which construction
            // forbids — but degrade to the empty-range bailout either way.
            let Some((ni, nj)) = cands.into_iter().min_by(|&a, &b| {
                self.disparity_idx(a.0, a.1)
                    .cmp(&self.disparity_idx(b.0, b.1))
                    .then(
                        self.similarity_idx(orig, b)
                            .total_cmp(&self.similarity_idx(orig, a)),
                    )
            }) else {
                let mid = (i + j) / 2;
                return self.materialize(mid, mid, self.similarity_idx(orig, (mid, mid)));
            };
            // no progress → bail to the empty range (always feasible)
            if self.disparity_idx(ni, nj) >= self.disparity_idx(i, j) {
                let mid = (i + j) / 2;
                return self.materialize(mid, mid, self.similarity_idx(orig, (mid, mid)));
            }
            i = ni;
            j = nj;
        }
        let sim = self.similarity_idx(orig, (i, j));
        self.materialize(i, j, sim)
    }

    fn materialize(&self, i: usize, j: usize, similarity: f64) -> FairRange {
        let (lo, hi) = if i < j {
            (self.xs[i], self.xs[j - 1])
        } else {
            // empty range: collapse to a point interval that selects nothing
            (f64::INFINITY, f64::NEG_INFINITY)
        };
        FairRange {
            lo,
            hi,
            disparity: self.disparity_idx(i, j),
            similarity,
            selected: j - i,
        }
    }

    /// The two group keys in engine order (A first), for reporting.
    pub fn group_keys(table: &Table, spec: &GroupSpec) -> rdi_table::Result<Vec<GroupKey>> {
        spec.keys(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// alternating groups → any even-length window is perfectly fair
    fn alternating(n: usize) -> RangeQueryEngine {
        RangeQueryEngine::from_points((0..n).map(|i| (i as f64, i % 2 == 0)).collect())
    }

    /// clustered: group A at 0..50, group B at 50..100
    fn clustered() -> RangeQueryEngine {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push((i as f64, true));
        }
        for i in 50..100 {
            pts.push((i as f64, false));
        }
        RangeQueryEngine::from_points(pts)
    }

    #[test]
    fn disparity_of_original_range() {
        let e = clustered();
        assert_eq!(e.disparity(0.0, 49.0), 50); // all group A
        assert_eq!(e.disparity(0.0, 99.0), 0); // balanced
        assert_eq!(e.disparity(40.0, 59.0), 0); // 10 A + 10 B
    }

    #[test]
    fn exact_returns_fair_and_similar() {
        let e = clustered();
        // original: [0, 59] → 50 A, 10 B → disparity 40
        let fr = e.fair_range_exact(0.0, 59.0, 5);
        assert!(fr.disparity <= 5);
        assert!(fr.similarity > 0.3, "sim={}", fr.similarity);
        // fair output must straddle the boundary at 50
        assert!(fr.lo < 50.0 && fr.hi >= 50.0);
    }

    #[test]
    fn already_fair_query_is_unchanged() {
        let e = alternating(100);
        let fr = e.fair_range_exact(10.0, 29.0, 0);
        assert_eq!(fr.similarity, 1.0);
        assert_eq!(fr.disparity, 0);
        assert_eq!(fr.selected, 20);
    }

    #[test]
    fn greedy_matches_exact_on_easy_cases() {
        let e = alternating(60);
        let exact = e.fair_range_exact(5.0, 20.0, 1);
        let greedy = e.fair_range_greedy(5.0, 20.0, 1);
        assert!(greedy.disparity <= 1);
        assert!(greedy.similarity <= exact.similarity + 1e-12);
        assert!(greedy.similarity > 0.8);
    }

    #[test]
    fn epsilon_zero_on_clustered_data() {
        let e = clustered();
        let fr = e.fair_range_exact(0.0, 49.0, 0);
        assert_eq!(fr.disparity, 0);
        // best balanced window overlapping [0,50) is centered at 50
        assert!(fr.selected > 0);
    }

    #[test]
    fn top_k_returns_distinct_fair_alternatives() {
        let e = clustered();
        let alts = e.fair_range_top_k(0.0, 59.0, 5, 3);
        assert_eq!(alts.len(), 3);
        // best first, all fair
        for w in alts.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
        for a in &alts {
            assert!(a.disparity <= 5);
        }
        // the top alternative matches the exact optimum
        let exact = e.fair_range_exact(0.0, 59.0, 5);
        assert_eq!(alts[0].similarity, exact.similarity);
        // alternatives differ meaningfully (selected sets not near-identical)
        assert!(alts[0].selected != alts[1].selected || alts[0].lo != alts[1].lo);
    }

    #[test]
    fn top_k_handles_small_feasible_sets() {
        let e = RangeQueryEngine::from_points(vec![(0.0, true), (1.0, false)]);
        // epsilon large → everything feasible; ask for more than exist
        let alts = e.fair_range_top_k(0.0, 1.0, 10, 50);
        assert!(!alts.is_empty());
        assert!(alts.len() <= 50);
    }

    #[test]
    fn greedy_always_terminates_and_satisfies() {
        let e = clustered();
        for eps in [0, 3, 10, 50] {
            let fr = e.fair_range_greedy(0.0, 49.0, eps);
            assert!(fr.disparity <= eps, "eps={eps} got {}", fr.disparity);
        }
    }

    #[test]
    fn build_from_table_requires_two_groups() {
        use rdi_table::{DataType, Field, Role, Schema, Value};
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str).with_role(Role::Sensitive),
            Field::new("x", DataType::Float),
        ]);
        let mut t = Table::new(schema);
        for (g, x) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            t.push_row(vec![Value::str(g), Value::Float(x)]).unwrap();
        }
        let spec = GroupSpec::new(vec!["g"]);
        assert!(RangeQueryEngine::build(&t, "x", &spec).is_err());
    }

    proptest! {
        #[test]
        fn exact_satisfies_constraint_and_dominates_greedy(
            pts in prop::collection::vec((0.0f64..100.0, prop::bool::ANY), 4..60),
            eps in 0i64..5)
        {
            let e = RangeQueryEngine::from_points(pts);
            let lo = 20.0;
            let hi = 70.0;
            let exact = e.fair_range_exact(lo, hi, eps);
            prop_assert!(exact.disparity <= eps);
            let greedy = e.fair_range_greedy(lo, hi, eps);
            prop_assert!(greedy.disparity <= eps);
            prop_assert!(exact.similarity >= greedy.similarity - 1e-9);
            prop_assert!((0.0..=1.0).contains(&exact.similarity));
        }
    }
}
