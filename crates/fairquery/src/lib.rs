//! # rdi-fairquery
//!
//! Fairness-aware query answering (tutorial §5, after Shetiya, Swift,
//! Asudeh, Das; ICDE 2022).
//!
//! A user's range filter (`WHERE 30 ≤ age ≤ 45`) can return a badly
//! group-imbalanced result even over balanced data. When the user is
//! flexible about the exact endpoints, the system can propose *the most
//! similar range whose output disparity is bounded*:
//!
//! * [`range_query`] — the 1-D engine: sorted projection + per-group
//!   prefix counts, disparity and similarity in O(1) per candidate range,
//!   exact search over all candidate endpoint pairs, and a fast
//!   expand/contract heuristic for ablation;
//! * [`range2d`] — the two-attribute generalization: quantile-quantized
//!   endpoint grids with 2-D prefix sums, exact over the quantized
//!   candidate boxes;
//! * [`relax`] — coverage-based query relaxation (Accinelli et al.):
//!   minimally widen a range until every group reaches a minimum count.
//!
//! ```
//! use rdi_fairquery::RangeQueryEngine;
//!
//! // group A clusters low, group B high — a low range is all-A
//! let pts: Vec<(f64, bool)> = (0..100).map(|i| (i as f64, i < 50)).collect();
//! let engine = RangeQueryEngine::from_points(pts);
//! assert_eq!(engine.disparity(0.0, 39.0), 40);
//! let fair = engine.fair_range_exact(0.0, 39.0, 0);
//! assert_eq!(fair.disparity, 0);
//! assert!(fair.hi >= 50.0); // the fair range must straddle the boundary
//! ```

#![warn(missing_docs)]

pub mod range2d;
pub mod range_query;
pub mod relax;

pub use range2d::{FairBox, RangeQuery2d};
pub use range_query::{FairRange, RangeQueryEngine};
pub use relax::{relax_for_coverage, relax_for_coverage_explained};
