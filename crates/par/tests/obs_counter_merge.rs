//! Counter merge across rdi-par workers.
//!
//! Increments issued from inside worker closures land on the global
//! [`rdi_obs`] registry's atomics, so the merged total must equal the
//! amount of work — bitwise — no matter how the items were scheduled.
//!
//! Deliberately a single `#[test]` in its own integration-test file:
//! the file gets its own process, so no other test's global-registry
//! traffic can race the delta measurements below.

use rdi_par::{par_map, par_run, Threads, THREADS_ENV};

#[test]
fn worker_counter_merge_is_thread_invariant() {
    let items: Vec<u64> = (0..1_000).collect();
    let c = rdi_obs::counter("test.par_merge");

    // explicit thread counts
    for t in [1usize, 2, 8] {
        let before = c.get();
        let out = par_map(Threads::fixed(t).min_len(2), &items, |x| {
            rdi_obs::counter("test.par_merge").inc();
            x + 1
        });
        assert_eq!(out.len(), items.len());
        assert_eq!(c.get() - before, items.len() as u64, "threads={t}");
    }

    // the same contract through the RDI_THREADS environment route
    for t in ["1", "2", "8"] {
        std::env::set_var(THREADS_ENV, t);
        let before = c.get();
        par_run(Threads::auto().min_len(2), 512, |i| {
            rdi_obs::counter("test.par_merge").add(1);
            i
        });
        assert_eq!(c.get() - before, 512, "RDI_THREADS={t}");
    }
    std::env::remove_var(THREADS_ENV);
}
