//! Property tests: parallel combinators are bitwise identical to
//! serial execution across thread counts.

use proptest::prelude::*;
use rdi_par::{par_map, par_map_indexed, par_reduce, par_run, stream_seed, Threads};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// par_map output equals the serial map, bit for bit, at 1/2/8
    /// threads.
    #[test]
    fn par_map_identical_across_thread_counts(
        items in prop::collection::vec(0u64..1_000_000, 0..300),
        salt in 0u64..1000)
    {
        let serial: Vec<u64> = items
            .iter()
            .map(|x| stream_seed(*x, salt))
            .collect();
        for t in [1usize, 2, 8] {
            let par = par_map(Threads::fixed(t), &items, |x| stream_seed(*x, salt));
            prop_assert_eq!(&par, &serial, "thread count {}", t);
        }
    }

    /// Indexed mapping stays aligned with global positions regardless
    /// of chunking.
    #[test]
    fn par_map_indexed_alignment(len in 0usize..400, t in 1usize..9) {
        let items: Vec<u64> = (0..len as u64).collect();
        let out = par_map_indexed(Threads::fixed(t), &items, |i, x| (i as u64, *x));
        for (i, (idx, val)) in out.iter().enumerate() {
            prop_assert_eq!(*idx, i as u64);
            prop_assert_eq!(*val, i as u64);
        }
    }

    /// Integer reductions agree with the serial fold for every thread
    /// count, and repeated runs are bitwise stable.
    #[test]
    fn par_reduce_matches_serial(
        items in prop::collection::vec(0u64..1_000_000, 0..300))
    {
        let serial: u64 = items.iter().fold(0, |a, x| a ^ x.wrapping_mul(31));
        for t in [1usize, 2, 8] {
            let r = par_reduce(
                Threads::fixed(t),
                &items,
                || 0u64,
                |a, x| a ^ x.wrapping_mul(31),
                |a, b| a ^ b,
            );
            prop_assert_eq!(r, serial, "thread count {}", t);
        }
    }

    /// par_run is a pure function of (n, f) — chunking never reorders
    /// or drops jobs.
    #[test]
    fn par_run_is_ordered(n in 0usize..300, t in 1usize..9) {
        let out = par_run(Threads::fixed(t), n, |i| stream_seed(7, i as u64));
        let serial: Vec<u64> = (0..n).map(|i| stream_seed(7, i as u64)).collect();
        prop_assert_eq!(out, serial);
    }

    /// Stream seeds form distinct streams per block index.
    #[test]
    fn stream_seed_no_collisions_in_window(
        master in any::<u64>(),
        base in 0u64..1_000_000)
    {
        let window: Vec<u64> = (base..base + 64).map(|i| stream_seed(master, i)).collect();
        let mut dedup = window.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), window.len());
    }
}
