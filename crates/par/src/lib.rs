//! `rdi-par`: a zero-dependency parallel execution layer for RDI kernels.
//!
//! Built entirely on [`std::thread::scope`] — no external crates — this
//! module gives the workspace's hot paths (column sketching, lake-wide
//! candidate scoring, MUP lattice search, join-sampling trials, data
//! generation) a single, deterministic way to fan work out across
//! cores.
//!
//! # Determinism contract
//!
//! Every combinator here preserves *bitwise-identical* results with
//! respect to the serial execution:
//!
//! * [`par_map`] / [`par_map_indexed`] split the input into contiguous
//!   chunks, map each chunk on its own thread, and splice the per-chunk
//!   outputs back **in input order**. The result is always exactly
//!   `items.iter().map(f).collect()`, independent of thread count or
//!   scheduling.
//! * [`par_reduce`] folds each chunk serially, then combines the
//!   per-chunk accumulators **left to right** in chunk order. With the
//!   chunk count fixed (see [`Threads::chunks_of`]) the combination
//!   tree is a function of the input alone, so associative-but-not-
//!   commutative combines (e.g. float sums) stay reproducible.
//! * Randomized kernels should derive one RNG stream per *fixed-size
//!   block of work* via [`stream_seed`], never per thread: block
//!   boundaries depend only on the input size, so estimates are
//!   bitwise identical whether the blocks run on 1 thread or 8.
//!
//! # Thread-count resolution
//!
//! [`Threads`] resolves, in order: an explicit
//! [`Threads::fixed`] value, the `RDI_THREADS` environment variable,
//! then [`std::thread::available_parallelism`]. Any resolution `<= 1`
//! (or an input below the parallel cutoff) degrades to a plain serial
//! loop with no thread spawns at all.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::{Arc, OnceLock};
use std::thread;

/// Cached handles onto the global [`rdi_obs`] registry for the hot
/// dispatch paths ([`rdi_obs::MetricsRegistry::reset`] zeroes values
/// but keeps entries alive, so the `Arc`s stay valid forever).
///
/// These dispatch counters describe the *schedule* — how work was run,
/// not how much there was — so unlike the per-layer work counters they
/// legitimately differ across `RDI_THREADS` settings (a 1-thread run is
/// all serial fallbacks) and are excluded from the thread-invariance
/// contract.
struct DispatchCounters {
    serial_runs: Arc<rdi_obs::Counter>,
    parallel_runs: Arc<rdi_obs::Counter>,
    tasks_dispatched: Arc<rdi_obs::Counter>,
}

fn dispatch_counters() -> &'static DispatchCounters {
    static COUNTERS: OnceLock<DispatchCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| DispatchCounters {
        serial_runs: rdi_obs::counter("par.serial_runs"),
        parallel_runs: rdi_obs::counter("par.parallel_runs"),
        tasks_dispatched: rdi_obs::counter("par.tasks_dispatched"),
    })
}

/// Environment variable consulted by [`Threads::auto`].
pub const THREADS_ENV: &str = "RDI_THREADS";

/// Default serial cutoff: inputs smaller than this run serially even
/// when threads are available — for cheap per-item work, spawn
/// overhead dominates below it. Call sites doing heavy per-item work
/// (e.g. sketching a whole column per item) lower it via
/// [`Threads::min_len`].
const DEFAULT_MIN_PARALLEL_LEN: usize = 32;

/// Thread-count configuration for the parallel combinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads {
    count: usize,
    min_len: usize,
}

impl Threads {
    /// Exactly `n` threads (`0` is treated as `1`).
    pub fn fixed(n: usize) -> Self {
        Threads {
            count: n.max(1),
            min_len: DEFAULT_MIN_PARALLEL_LEN,
        }
    }

    /// Override the serial cutoff: inputs shorter than `n` items run
    /// serially. Use a small cutoff when each item is expensive (a
    /// whole column scan, a lattice-level batch), keep the default for
    /// cheap per-item work.
    pub fn min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(2);
        self
    }

    /// Serial execution (one thread).
    pub fn serial() -> Self {
        Threads::fixed(1)
    }

    /// Resolve from the environment: `RDI_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`],
    /// otherwise 1.
    pub fn auto() -> Self {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Threads::fixed(n);
                }
            }
        }
        Threads::fixed(
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The resolved thread count (always `>= 1`).
    pub fn get(self) -> usize {
        self.count
    }

    /// Whether this configuration can run anything in parallel.
    pub fn is_parallel(self) -> bool {
        self.count > 1
    }

    /// Number of contiguous chunks to split `len` items into: enough
    /// for every thread, but never more chunks than items.
    fn chunk_count(self, len: usize) -> usize {
        self.count.min(len).max(1)
    }

    /// Deterministic chunk boundaries for `len` items: `count` chunks
    /// whose sizes differ by at most one, in input order. The split
    /// depends only on `len` and the thread count, never on timing.
    pub fn chunks_of(self, len: usize) -> Vec<std::ops::Range<usize>> {
        let chunks = self.chunk_count(len);
        let base = len / chunks;
        let extra = len % chunks;
        let mut out = Vec::with_capacity(chunks);
        let mut start = 0;
        for i in 0..chunks {
            let size = base + usize::from(i < extra);
            out.push(start..start + size);
            start += size;
        }
        out
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

/// Map `f` over `items` in parallel, returning outputs in input order.
///
/// Bitwise identical to `items.iter().map(f).collect()` for any thread
/// count; runs serially when `threads.get() <= 1` or the input is
/// small.
pub fn par_map<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// [`par_map`] variant whose mapper also receives the item's index in
/// `items`.
pub fn par_map_indexed<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if !threads.is_parallel() || items.len() < threads.min_len {
        dispatch_counters().serial_runs.inc();
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let ranges = threads.chunks_of(items.len());
    let c = dispatch_counters();
    c.parallel_runs.inc();
    c.tasks_dispatched.add(ranges.len() as u64);
    let mut per_chunk: Vec<Vec<U>> = thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let f = &f;
                let chunk = &items[range.clone()];
                let start = range.start;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, x)| f(start + i, x))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            // join errs only when the worker panicked — re-raise that
            // panic on the caller instead of a fresh unwrap panic.
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk.iter_mut() {
        out.append(chunk);
    }
    out
}

/// Fold `items` in parallel: each chunk is folded serially with `fold`
/// from a fresh `init()`, then the per-chunk accumulators are combined
/// **left to right** in chunk order with `combine`.
///
/// For a fixed thread count the result is a pure function of the
/// input. It equals the serial fold whenever `combine` is associative
/// and `init()` is its identity (e.g. sums, maxima, set unions); exact
/// floating-point results may differ across *different* thread counts
/// because the chunk boundaries move.
pub fn par_reduce<T, A, I, F, C>(threads: Threads, items: &[T], init: I, fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    if !threads.is_parallel() || items.len() < threads.min_len {
        dispatch_counters().serial_runs.inc();
        return items.iter().fold(init(), fold);
    }
    let ranges = threads.chunks_of(items.len());
    let c = dispatch_counters();
    c.parallel_runs.inc();
    c.tasks_dispatched.add(ranges.len() as u64);
    let per_chunk: Vec<A> = thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let init = &init;
                let fold = &fold;
                let chunk = &items[range.clone()];
                scope.spawn(move || chunk.iter().fold(init(), fold))
            })
            .collect();
        handles
            .into_iter()
            // join errs only when the worker panicked — re-raise that
            // panic on the caller instead of a fresh unwrap panic.
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut acc = per_chunk.into_iter();
    // chunks_of yields at least one range, so the fallback (the fold
    // identity, matching the serial fold of zero items) is unreachable.
    let first = acc.next().unwrap_or_else(&init);
    acc.fold(first, combine)
}

/// Run `n` independent jobs (`f(0) .. f(n-1)`) in parallel and return
/// their results in index order. Convenience wrapper over
/// [`par_map_indexed`] for index-driven work with no input slice.
pub fn par_run<U, F>(threads: Threads, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // A unit slice of length `n` drives the index range.
    let units = vec![(); n];
    par_map_indexed(threads, &units, |i, ()| f(i))
}

/// Derive the seed for work-block `index` from a master seed.
///
/// splitmix64 finalization over `master + golden_gamma * (index + 1)`:
/// cheap, stateless, and well-distributed, so randomized kernels can
/// give every fixed-size block of trials its own independent stream.
/// Block seeds depend only on `(master, index)` — never on which
/// thread runs the block — which is what keeps sampled estimates
/// bitwise identical across thread counts.
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution_and_clamping() {
        assert_eq!(Threads::fixed(0).get(), 1);
        assert_eq!(Threads::fixed(8).get(), 8);
        assert!(!Threads::serial().is_parallel());
        assert!(Threads::auto().get() >= 1);
    }

    #[test]
    fn chunks_cover_input_in_order() {
        for len in [0usize, 1, 5, 31, 32, 100, 101] {
            for t in [1usize, 2, 3, 8, 200] {
                let ranges = Threads::fixed(t).chunks_of(len);
                assert!(ranges.len() <= t.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
                if len > 0 {
                    assert!(hi.unwrap() - lo.unwrap() <= 1, "uneven split: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_matches_serial_for_all_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1usize, 2, 3, 4, 8, 64] {
            let par = par_map(Threads::fixed(t), &items, |x| x * x + 1);
            assert_eq!(par, serial, "mismatch at {t} threads");
        }
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let items: Vec<u8> = vec![0; 500];
        let idx = par_map_indexed(Threads::fixed(4), &items, |i, _| i);
        assert_eq!(idx, (0..500).collect::<Vec<usize>>());
    }

    #[test]
    fn par_reduce_is_deterministic_and_exact_for_ints() {
        let items: Vec<u64> = (1..=10_000).collect();
        let serial: u64 = items.iter().sum();
        for t in [1usize, 2, 5, 16] {
            let sum = par_reduce(
                Threads::fixed(t),
                &items,
                || 0u64,
                |a, x| a + x,
                |a, b| a + b,
            );
            assert_eq!(sum, serial);
        }
        // Same thread count twice => identical even for floats.
        let f: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let r1 = par_reduce(Threads::fixed(3), &f, || 0.0, |a, x| a + x, |a, b| a + b);
        let r2 = par_reduce(Threads::fixed(3), &f, || 0.0, |a, x| a + x, |a, b| a + b);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn par_run_orders_results() {
        let out = par_run(Threads::fixed(4), 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<usize>>());
    }

    #[test]
    fn small_inputs_stay_serial() {
        // Under the cutoff we must not spawn; detectable only
        // indirectly — just assert correctness on tiny inputs.
        let out = par_map(Threads::fixed(8), &[1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = par_map(Threads::fixed(8), &[] as &[i32], |x| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(42, 0);
        assert_eq!(a, stream_seed(42, 0));
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        assert_ne!(stream_seed(42, 7), stream_seed(43, 7));
    }
}
