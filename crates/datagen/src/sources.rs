//! Splitting a population into skewed, cost-annotated sources.
//!
//! Distribution-tailoring experiments (§4.2) need a federation of sources,
//! "each of which has its own skew" (tutorial Example 1). [`skewed_sources`]
//! generates per-source group marginals by perturbing the population
//! marginal with a Dirichlet draw whose concentration controls how skewed
//! sources are.

use rand::Rng;
use rdi_fairness::Categorical;
use rdi_table::Table;

use crate::population::PopulationSpec;
use crate::rng::dirichlet;

/// Configuration for source generation.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Number of sources.
    pub num_sources: usize,
    /// Rows per source.
    pub rows_per_source: usize,
    /// Dirichlet concentration multiplier: higher = sources closer to the
    /// population marginal; lower = more skew. Must be positive.
    pub concentration: f64,
    /// Per-query cost of each source (cycled if shorter than
    /// `num_sources`); defaults to 1.0 each when empty.
    pub costs: Vec<f64>,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            num_sources: 5,
            rows_per_source: 10_000,
            concentration: 2.0,
            costs: Vec::new(),
        }
    }
}

/// A generated source: its table, its true group marginal over the first
/// sensitive attribute, and its per-sample cost.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// The source's rows.
    pub table: Table,
    /// True marginal over the first sensitive attribute's categories.
    pub marginal: Categorical,
    /// Cost per sample drawn from this source.
    pub cost: f64,
}

/// Generate `config.num_sources` sources from `spec`, each with a
/// Dirichlet-perturbed marginal over the first sensitive attribute.
pub fn skewed_sources<R: Rng + ?Sized>(
    spec: &PopulationSpec,
    config: &SourceConfig,
    rng: &mut R,
) -> Vec<GeneratedSource> {
    assert!(config.num_sources > 0);
    assert!(config.concentration > 0.0);
    let base = &spec.sensitive[0].marginal;
    let alphas: Vec<f64> = base
        .probs()
        .iter()
        .map(|p| (p * base.len() as f64 * config.concentration).max(1e-3))
        .collect();
    (0..config.num_sources)
        .map(|s| {
            let probs = dirichlet(rng, &alphas);
            let marginal = Categorical::from_weights(&probs);
            let table = spec.generate_with_marginals(config.rows_per_source, rng, Some(&marginal));
            let cost = if config.costs.is_empty() {
                1.0
            } else {
                config.costs[s % config.costs.len()]
            };
            GeneratedSource {
                table,
                marginal,
                cost,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_fairness::total_variation;
    use rdi_table::{GroupSpec, Value};

    #[test]
    fn generates_requested_sources() {
        let spec = PopulationSpec::two_group(0.2);
        let cfg = SourceConfig {
            num_sources: 4,
            rows_per_source: 500,
            concentration: 2.0,
            costs: vec![1.0, 2.0],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let srcs = skewed_sources(&spec, &cfg, &mut rng);
        assert_eq!(srcs.len(), 4);
        assert!(srcs.iter().all(|s| s.table.num_rows() == 500));
        assert_eq!(srcs[0].cost, 1.0);
        assert_eq!(srcs[1].cost, 2.0);
        assert_eq!(srcs[2].cost, 1.0);
    }

    #[test]
    fn concentration_controls_skew() {
        let spec = PopulationSpec::two_group(0.3);
        let base = &spec.sensitive[0].marginal;
        let mut rng = StdRng::seed_from_u64(2);
        let avg_tv = |conc: f64, rng: &mut StdRng| -> f64 {
            let cfg = SourceConfig {
                num_sources: 30,
                rows_per_source: 10,
                concentration: conc,
                costs: vec![],
            };
            let srcs = skewed_sources(&spec, &cfg, rng);
            srcs.iter()
                .map(|s| total_variation(&s.marginal, base))
                .sum::<f64>()
                / 30.0
        };
        let tight = avg_tv(50.0, &mut rng);
        let loose = avg_tv(0.5, &mut rng);
        assert!(tight < loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn source_tables_reflect_their_marginal() {
        let spec = PopulationSpec::two_group(0.5);
        let cfg = SourceConfig {
            num_sources: 3,
            rows_per_source: 5_000,
            concentration: 1.0,
            costs: vec![],
        };
        let mut rng = StdRng::seed_from_u64(3);
        for s in skewed_sources(&spec, &cfg, &mut rng) {
            let fr = GroupSpec::new(vec!["group"]).fractions(&s.table).unwrap();
            let maj_frac = fr
                .iter()
                .find(|(k, _)| k.0[0] == Value::str("maj"))
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            assert!(
                (maj_frac - s.marginal.p(0)).abs() < 0.05,
                "emp={maj_frac} true={}",
                s.marginal.p(0)
            );
        }
    }
}
