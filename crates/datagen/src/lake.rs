//! Synthetic data lakes with planted ground truth.
//!
//! Dataset-discovery experiments (§3.1) need a corpus where we *know*
//! which candidate tables are joinable with the query table, what the key
//! containment is, and what the join-correlation between a candidate
//! feature and the query target is. Real lakes (open-data portals) don't
//! come with that ground truth; this generator plants it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdi_par::{par_map, stream_seed, Threads};
use rdi_table::{DataType, Field, Role, Schema, Table, Value};

use crate::rng::normal;

/// Configuration of the synthetic lake.
#[derive(Debug, Clone)]
pub struct LakeConfig {
    /// Number of candidate tables.
    pub num_candidates: usize,
    /// Keys in the query table.
    pub query_keys: usize,
    /// Rows per candidate table.
    pub candidate_rows: usize,
    /// Fraction of candidates that are joinable with the query at all.
    pub joinable_fraction: f64,
}

impl Default for LakeConfig {
    fn default() -> Self {
        LakeConfig {
            num_candidates: 50,
            query_keys: 1_000,
            candidate_rows: 1_000,
            joinable_fraction: 0.4,
        }
    }
}

/// One candidate table plus its planted ground truth.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Stable name, e.g. `"cand_007"`.
    pub name: String,
    /// The table: `key: Str`, `feat: Float`.
    pub table: Table,
    /// True containment of the query's key set in this candidate's key set
    /// (|Q ∩ C| / |Q|).
    pub containment: f64,
    /// Planted Pearson correlation between `feat` and the query's `target`
    /// over joined keys (0 for non-joinable candidates).
    pub correlation: f64,
}

/// A generated lake: one query table and many candidates.
#[derive(Debug, Clone)]
pub struct SyntheticLake {
    /// The query table: `key: Str` (unique), `target: Float`.
    pub query: Table,
    /// Per-key target values, aligned with the query rows.
    pub target_by_key: Vec<(String, f64)>,
    /// Candidate tables with ground truth.
    pub candidates: Vec<Candidate>,
}

impl SyntheticLake {
    /// Generate a lake.
    pub fn generate<R: Rng + ?Sized>(config: &LakeConfig, rng: &mut R) -> SyntheticLake {
        assert!(config.query_keys > 0 && config.num_candidates > 0);
        let query_schema = Schema::new(vec![
            Field::new("key", DataType::Str).with_role(Role::Id),
            Field::new("target", DataType::Float).with_role(Role::Target),
        ]);
        let mut query = Table::with_capacity(query_schema, config.query_keys);
        let mut target_by_key = Vec::with_capacity(config.query_keys);
        for i in 0..config.query_keys {
            let key = format!("q{i:06}");
            let t = normal(rng, 0.0, 1.0);
            query
                .push_row(vec![Value::str(key.clone()), Value::Float(t)])
                // rdi-lint: allow(R5): row literal matches the schema built above
                .expect("schema match");
            target_by_key.push((key, t));
        }

        let mut candidates = Vec::with_capacity(config.num_candidates);
        for c in 0..config.num_candidates {
            candidates.push(generate_candidate(config, &target_by_key, c, rng));
        }
        SyntheticLake {
            query,
            target_by_key,
            candidates,
        }
    }

    /// Generate a lake with candidate tables built in parallel.
    ///
    /// The query table is drawn from RNG stream 0 and candidate `c` from
    /// stream `c + 1` (both via [`stream_seed`]), so the output is a pure
    /// function of `(config, seed)` and bitwise identical for any thread
    /// count — including [`Threads::serial`]. The stream differs from
    /// [`Self::generate`] with a single shared RNG, but the planted
    /// ground truth (containment/correlation levels) is the same.
    pub fn generate_par(config: &LakeConfig, seed: u64, threads: Threads) -> SyntheticLake {
        assert!(config.query_keys > 0 && config.num_candidates > 0);
        let query_schema = Schema::new(vec![
            Field::new("key", DataType::Str).with_role(Role::Id),
            Field::new("target", DataType::Float).with_role(Role::Target),
        ]);
        let mut query = Table::with_capacity(query_schema, config.query_keys);
        let mut target_by_key = Vec::with_capacity(config.query_keys);
        let mut qrng = StdRng::seed_from_u64(stream_seed(seed, 0));
        for i in 0..config.query_keys {
            let key = format!("q{i:06}");
            let t = normal(&mut qrng, 0.0, 1.0);
            query
                .push_row(vec![Value::str(key.clone()), Value::Float(t)])
                // rdi-lint: allow(R5): row literal matches the schema built above
                .expect("schema match");
            target_by_key.push((key, t));
        }
        let cand_ids: Vec<usize> = (0..config.num_candidates).collect();
        let candidates = par_map(threads.min_len(2), &cand_ids, |&c| {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, c as u64 + 1));
            generate_candidate(config, &target_by_key, c, &mut rng)
        });
        SyntheticLake {
            query,
            target_by_key,
            candidates,
        }
    }

    /// Exact containment of the query key set in a candidate's key set,
    /// computed from the data (sanity reference for planted truth).
    pub fn exact_containment(&self, candidate: &Candidate) -> f64 {
        let qkeys: std::collections::HashSet<String> =
            self.target_by_key.iter().map(|(k, _)| k.clone()).collect();
        let ckeys: std::collections::HashSet<String> = candidate
            .table
            .column("key")
            // rdi-lint: allow(R5): every candidate is generated with a Str "key" column
            .expect("key column")
            .as_str_slice()
            // rdi-lint: allow(R5): every candidate is generated with a Str "key" column
            .expect("string column")
            .iter()
            .flatten()
            .cloned()
            .collect();
        qkeys.intersection(&ckeys).count() as f64 / qkeys.len() as f64
    }
}

/// Generate candidate `c` against the planted query targets. Planted
/// containment/correlation levels are a deterministic function of
/// `(config, c)`; only key selection and feature noise consume `rng`.
fn generate_candidate<R: Rng + ?Sized>(
    config: &LakeConfig,
    target_by_key: &[(String, f64)],
    c: usize,
    rng: &mut R,
) -> Candidate {
    let cand_schema = Schema::new(vec![
        Field::new("key", DataType::Str).with_role(Role::Id),
        Field::new("feat", DataType::Float),
    ]);
    let joinable = (c as f64 + 0.5) / (config.num_candidates as f64) < config.joinable_fraction;
    // Plant varied containment/correlation levels deterministically
    // spread over joinable candidates.
    let (containment, correlation) = if joinable {
        let u = (c as f64 + 1.0) / (config.num_candidates as f64 * config.joinable_fraction + 1.0);
        (0.2 + 0.8 * u, (2.0 * u - 1.0).clamp(-0.95, 0.95))
    } else {
        (0.0, 0.0)
    };

    let mut table = Table::with_capacity(cand_schema, config.candidate_rows);
    let overlap = (containment * config.query_keys as f64).round() as usize;
    // Overlapping keys: a random subset of query keys of size `overlap`.
    let mut qidx: Vec<usize> = (0..config.query_keys).collect();
    // partial Fisher–Yates for the first `overlap` positions
    for i in 0..overlap.min(config.query_keys) {
        let j = rng.gen_range(i..config.query_keys);
        qidx.swap(i, j);
    }
    for &qi in qidx.iter().take(overlap) {
        let (key, t) = &target_by_key[qi];
        let feat =
            correlation * t + (1.0 - correlation * correlation).sqrt() * normal(rng, 0.0, 1.0);
        table
            .push_row(vec![Value::str(key.clone()), Value::Float(feat)])
            // rdi-lint: allow(R5): row literal matches the schema built above
            .expect("schema match");
    }
    // Filler keys disjoint from the query.
    for i in table.num_rows()..config.candidate_rows {
        let key = format!("c{c:03}_{i:06}");
        table
            .push_row(vec![Value::str(key), Value::Float(normal(rng, 0.0, 1.0))])
            // rdi-lint: allow(R5): row literal matches the schema built above
            .expect("schema match");
    }
    Candidate {
        name: format!("cand_{c:03}"),
        table,
        containment,
        correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdi_fairness::pearson;
    use rdi_table::hash_join;

    fn small_lake() -> SyntheticLake {
        let cfg = LakeConfig {
            num_candidates: 10,
            query_keys: 400,
            candidate_rows: 500,
            joinable_fraction: 0.5,
        };
        SyntheticLake::generate(&cfg, &mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn planted_containment_matches_data() {
        let lake = small_lake();
        for c in &lake.candidates {
            let exact = lake.exact_containment(c);
            assert!(
                (exact - c.containment).abs() < 0.01,
                "{}: planted={} exact={}",
                c.name,
                c.containment,
                exact
            );
        }
    }

    #[test]
    fn joinable_fraction_respected() {
        let lake = small_lake();
        let joinable = lake
            .candidates
            .iter()
            .filter(|c| c.containment > 0.0)
            .count();
        assert_eq!(joinable, 5);
    }

    #[test]
    fn planted_correlation_holds_over_join() {
        let lake = small_lake();
        for c in lake.candidates.iter().filter(|c| c.containment > 0.3) {
            let joined = hash_join(&lake.query, &c.table, "key", "key").unwrap();
            let t: Vec<f64> = joined.column("target").unwrap().numeric_values();
            let f: Vec<f64> = joined.column("feat").unwrap().numeric_values();
            let r = pearson(&t, &f);
            assert!(
                (r - c.correlation).abs() < 0.15,
                "{}: planted={} measured={}",
                c.name,
                c.correlation,
                r
            );
        }
    }

    #[test]
    fn par_lake_identical_across_thread_counts() {
        let cfg = LakeConfig {
            num_candidates: 9,
            query_keys: 200,
            candidate_rows: 250,
            joinable_fraction: 0.5,
        };
        let base = SyntheticLake::generate_par(&cfg, 77, Threads::serial());
        for threads in [2, 3, 8] {
            let got = SyntheticLake::generate_par(&cfg, 77, Threads::fixed(threads));
            assert_eq!(got.query, base.query, "threads={threads}");
            assert_eq!(got.target_by_key, base.target_by_key, "threads={threads}");
            assert_eq!(got.candidates.len(), base.candidates.len());
            for (g, b) in got.candidates.iter().zip(&base.candidates) {
                assert_eq!(g.name, b.name, "threads={threads}");
                assert_eq!(g.table, b.table, "threads={threads}");
                assert_eq!(g.containment.to_bits(), b.containment.to_bits());
                assert_eq!(g.correlation.to_bits(), b.correlation.to_bits());
            }
        }
        // parallel generation plants the same ground truth
        for c in &base.candidates {
            let exact = base.exact_containment(c);
            assert!((exact - c.containment).abs() < 0.01, "{}", c.name);
        }
    }

    #[test]
    fn candidate_tables_have_requested_rows() {
        let lake = small_lake();
        for c in &lake.candidates {
            assert_eq!(c.table.num_rows(), 500);
        }
    }
}
